//! A replicated key-value store by state-machine replication over
//! Agreed delivery — the classic application of totally ordered
//! multicast the paper's introduction motivates.
//!
//! Three daemons each host one replica client. Replicas multicast
//! `SET`/`DEL` operations to the `kv` group and apply every delivered
//! operation in total order; because all replicas apply the same
//! operations in the same order, their states are identical even
//! though writers race.
//!
//! Run with: `cargo run --release --example replicated_kv`

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, DaemonClient};
use accelerated_ring::net::LoopbackNet;
use bytes::Bytes;

const N: u16 = 3;
const GROUP: &str = "kv";

/// One replica: a client plus its materialized state.
struct Replica {
    client: DaemonClient,
    state: BTreeMap<String, String>,
    applied: usize,
}

impl Replica {
    fn apply(&mut self, op: &str) {
        // Operations: "SET key value" | "DEL key".
        let mut parts = op.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("SET"), Some(k), Some(v)) => {
                self.state.insert(k.to_string(), v.to_string());
            }
            (Some("DEL"), Some(k), None) => {
                self.state.remove(k);
            }
            _ => eprintln!("ignoring malformed op: {op}"),
        }
        self.applied += 1;
    }

    fn pump(&mut self) {
        while let Some(ev) = self.client.recv(Duration::from_millis(5)) {
            if let ClientEvent::Message { payload, .. } = ev {
                let op = String::from_utf8_lossy(&payload).into_owned();
                self.apply(&op);
            }
        }
    }
}

fn main() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..N).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    let daemons: Vec<_> = members
        .iter()
        .map(|&pid| {
            let part =
                Participant::new(pid, ProtocolConfig::accelerated(), ring_id, members.clone())
                    .expect("valid ring");
            spawn_daemon(part, net.endpoint(pid))
        })
        .collect();

    let mut replicas: Vec<Replica> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let client = d.connect(&format!("replica-{i}")).expect("connect");
            client.join(GROUP).expect("join");
            Replica {
                client,
                state: BTreeMap::new(),
                applied: 0,
            }
        })
        .collect();

    // Wait for every replica to see the full group.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seen = vec![0usize; replicas.len()];
    while seen.iter().any(|&s| s < N as usize) && Instant::now() < deadline {
        for (i, r) in replicas.iter().enumerate() {
            while let Some(ev) = r.client.recv(Duration::from_millis(10)) {
                if let ClientEvent::Membership { members, .. } = ev {
                    seen[i] = members.len();
                }
            }
        }
    }
    assert!(seen.iter().all(|&s| s == N as usize), "group did not form");

    // Racing writers: every replica writes the same keys.
    let mut expected_ops = 0;
    for (i, r) in replicas.iter().enumerate() {
        for k in 0..5 {
            r.client
                .multicast(
                    &[GROUP],
                    ServiceType::Agreed,
                    Bytes::from(format!("SET key{k} writer{i}")),
                )
                .expect("multicast");
            expected_ops += 1;
        }
    }
    // One replica deletes a key — also ordered.
    replicas[0]
        .client
        .multicast(
            &[GROUP],
            ServiceType::Agreed,
            Bytes::from_static(b"DEL key4"),
        )
        .expect("multicast");
    expected_ops += 1;

    let deadline = Instant::now() + Duration::from_secs(20);
    while replicas.iter().any(|r| r.applied < expected_ops) && Instant::now() < deadline {
        for r in replicas.iter_mut() {
            r.pump();
        }
    }

    println!(
        "replica 0 state after {} ordered operations:",
        replicas[0].applied
    );
    for (k, v) in &replicas[0].state {
        println!("  {k} = {v}");
    }
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.applied, expected_ops, "replica {i} missed operations");
        assert_eq!(
            r.state, replicas[0].state,
            "replica {i} diverged from replica 0"
        );
    }
    println!(
        "\nall {N} replicas applied {expected_ops} operations and hold identical state \
         — despite concurrent writers, because every operation was totally ordered"
    );

    drop(replicas);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}
