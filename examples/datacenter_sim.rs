//! Simulate the paper's 8-server data-center cluster and compare the
//! original Ring protocol with the Accelerated Ring protocol on a
//! 1-gigabit network (Spread implementation profile, 1350-byte
//! messages) — a miniature of the paper's Figure 1 plus the maximum
//! throughput numbers.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use accelerated_ring::core::{ProtocolConfig, ServiceType, TimeoutConfig};
use accelerated_ring::sim::{
    run_ring, FaultPlan, ImplProfile, LoadMode, NetworkConfig, RingSimConfig, SimDuration,
};

fn base(protocol: ProtocolConfig, load: LoadMode) -> RingSimConfig {
    RingSimConfig {
        n_hosts: 8,
        protocol,
        timeouts: TimeoutConfig::default(),
        net: NetworkConfig::gigabit(),
        profile: ImplProfile::spread(),
        payload_bytes: 1350,
        service: ServiceType::Agreed,
        load,
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(120),
        seed: 42,
        faults: FaultPlan::none(),
        verify_order: false,
    }
}

fn main() {
    println!("8 hosts, 1-gigabit switch, Spread profile, 1350-byte Agreed messages\n");
    println!(
        "{:>12}  {:>22}  {:>22}",
        "offered", "original", "accelerated"
    );
    println!(
        "{:>12}  {:>22}  {:>22}",
        "(Mbps)", "achieved / latency", "achieved / latency"
    );
    println!("{}", "-".repeat(62));
    for mbps in [100u64, 300, 500, 700, 800, 900] {
        let load = LoadMode::OpenLoop {
            aggregate_bps: mbps * 1_000_000,
        };
        let orig = run_ring(&base(ProtocolConfig::original(), load));
        let acc = run_ring(&base(ProtocolConfig::accelerated(), load));
        println!(
            "{mbps:>12}  {:>10.0}M / {:>6.0}us  {:>10.0}M / {:>6.0}us",
            orig.achieved_mbps(),
            orig.mean_latency_us(),
            acc.achieved_mbps(),
            acc.mean_latency_us(),
        );
    }

    let orig_max = run_ring(&base(ProtocolConfig::original(), LoadMode::Saturating));
    let acc_max = run_ring(&base(ProtocolConfig::accelerated(), LoadMode::Saturating));
    println!(
        "\nmaximum throughput: original {:.0} Mbps, accelerated {:.0} Mbps ({:+.0}%)",
        orig_max.achieved_mbps(),
        acc_max.achieved_mbps(),
        100.0 * (acc_max.achieved_bps / orig_max.achieved_bps - 1.0),
    );
    println!(
        "token rotations in the measurement window: original {}, accelerated {}",
        orig_max.token_rotations, acc_max.token_rotations
    );
    println!(
        "\nthe accelerated protocol keeps latency flat while the original's climbs,\n\
         and practically saturates the 1-gigabit network — the paper's Figure 1."
    );
}
