//! Quickstart: a five-process Accelerated Ring ordering messages.
//!
//! Each process runs on its own thread over an in-process transport.
//! Three of them multicast concurrently; every process delivers exactly
//! the same totally ordered sequence.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use accelerated_ring::net::{spawn, AppEvent, LoopbackNet};
use bytes::Bytes;

const N: u16 = 5;
const PER_SENDER: usize = 4;

fn main() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..N).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);

    // Every participant gets the same member list; the representative
    // (P0) injects the first token when its node starts.
    let nodes: Vec<_> = members
        .iter()
        .map(|&pid| {
            let part =
                Participant::new(pid, ProtocolConfig::accelerated(), ring_id, members.clone())
                    .expect("valid ring");
            spawn(part, net.endpoint(pid))
        })
        .collect();

    // Three senders multicast concurrently; Safe for the last message
    // of each sender, Agreed for the rest.
    for (i, node) in nodes.iter().enumerate().take(3) {
        for k in 0..PER_SENDER {
            let service = if k == PER_SENDER - 1 {
                ServiceType::Safe
            } else {
                ServiceType::Agreed
            };
            node.submit(Bytes::from(format!("sender-{i} msg-{k}")), service)
                .expect("queue has room");
        }
    }

    // Collect deliveries at every process.
    let expected = 3 * PER_SENDER;
    let mut logs: Vec<Vec<(u64, String)>> = vec![Vec::new(); N as usize];
    let deadline = Instant::now() + Duration::from_secs(20);
    while logs.iter().any(|l| l.len() < expected) && Instant::now() < deadline {
        for (i, node) in nodes.iter().enumerate() {
            while let Some(ev) = node.recv_event(Duration::from_millis(10)) {
                if let AppEvent::Delivered(d) = ev {
                    logs[i].push((
                        d.seq.as_u64(),
                        String::from_utf8_lossy(&d.payload).into_owned(),
                    ));
                }
            }
        }
    }

    println!("total order as delivered by P0:");
    for (seq, text) in &logs[0] {
        println!("  #{seq:<3} {text}");
    }
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log, &logs[0], "P{i} delivered a different sequence than P0");
    }
    println!("\nall {N} processes delivered the identical sequence of {expected} messages");

    for node in nodes {
        node.shutdown().expect("clean shutdown");
    }
}
