//! Membership in action: crash a ring member and watch Extended
//! Virtual Synchrony deliver a transitional and a regular
//! configuration; messages in flight at the moment of the crash are
//! recovered and delivered consistently by the survivors.
//!
//! Run with: `cargo run --release --example membership_demo`

use std::time::{Duration, Instant};

use accelerated_ring::core::{
    ConfigChangeKind, Participant, ParticipantId, ProtocolConfig, RingId, ServiceType,
    TimeoutConfig,
};
use accelerated_ring::net::{spawn, AppEvent, LoopbackNet, NodeHandle};
use bytes::Bytes;

const N: u16 = 4;

fn main() {
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..N).map(ParticipantId::new).collect();
    let ring_id = RingId::new(members[0], 1);
    // Short timeouts so the demo converges quickly.
    let timeouts = TimeoutConfig {
        token_loss: 30_000_000,      // 30 ms
        token_retransmit: 5_000_000, // 5 ms
        join: 10_000_000,
        consensus: 60_000_000,
        commit: 40_000_000,
        token_retransmit_limit: 3,
    };
    let mut nodes: Vec<Option<NodeHandle>> = members
        .iter()
        .map(|&pid| {
            let mut part =
                Participant::new(pid, ProtocolConfig::accelerated(), ring_id, members.clone())
                    .expect("valid ring");
            part.set_timeouts(timeouts).expect("valid timeouts");
            Some(spawn(part, net.endpoint(pid)))
        })
        .collect();

    // Normal operation: a few ordered messages.
    for (i, node) in nodes.iter().enumerate() {
        node.as_ref()
            .unwrap()
            .submit(
                Bytes::from(format!("pre-crash from P{i}")),
                ServiceType::Agreed,
            )
            .unwrap();
    }
    let mut delivered = vec![0usize; N as usize];
    pump(&nodes, &mut delivered, N as usize, Duration::from_secs(10));
    println!("phase 1: all {N} members delivered {} messages each", N);

    // Crash P3 (drop its node; the loopback endpoint detaches).
    println!("\ncrashing P3...");
    nodes[3] = None;

    // The survivors detect token loss, gather, and install a 3-member
    // ring. Watch for the EVS configuration deliveries.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seen_regular = [false; 3];
    let mut seen_transitional = [false; 3];
    while seen_regular.iter().any(|&b| !b) && Instant::now() < deadline {
        for (i, slot) in nodes.iter().enumerate().take(3) {
            let node = slot.as_ref().unwrap();
            while let Some(ev) = node.recv_event(Duration::from_millis(10)) {
                if let AppEvent::ConfigChanged(c) = ev {
                    match c.kind {
                        ConfigChangeKind::Transitional => {
                            println!(
                                "P{i}: transitional configuration {:?}",
                                c.members.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                            );
                            seen_transitional[i] = true;
                        }
                        ConfigChangeKind::Regular => {
                            println!(
                                "P{i}: regular configuration      {:?}",
                                c.members.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                            );
                            assert_eq!(c.members.len(), 3, "survivor ring has 3 members");
                            seen_regular[i] = true;
                        }
                    }
                }
            }
        }
    }
    assert!(
        seen_regular.iter().all(|&b| b),
        "every survivor must install the new ring"
    );
    assert!(seen_transitional.iter().all(|&b| b));

    // The 3-member ring keeps ordering messages.
    for (i, slot) in nodes.iter().enumerate().take(3) {
        slot.as_ref()
            .unwrap()
            .submit(
                Bytes::from(format!("post-crash from P{i}")),
                ServiceType::Safe,
            )
            .unwrap();
    }
    let mut delivered = vec![0usize; 3];
    let survivors: Vec<Option<NodeHandle>> = Vec::new();
    let _ = survivors; // (survivor pumping below uses the original vec)
    let deadline = Instant::now() + Duration::from_secs(20);
    while delivered.iter().any(|&d| d < 3) && Instant::now() < deadline {
        for (i, slot) in nodes.iter().enumerate().take(3) {
            let node = slot.as_ref().unwrap();
            while let Some(ev) = node.recv_event(Duration::from_millis(10)) {
                if let AppEvent::Delivered(_) = ev {
                    delivered[i] += 1;
                }
            }
        }
    }
    assert!(
        delivered.iter().all(|&d| d == 3),
        "survivors keep delivering: {delivered:?}"
    );
    println!("\nphase 2: the 3-member ring delivered 3 Safe messages at every survivor");
    println!("membership change handled: crash detected, ring re-formed, ordering resumed");

    for slot in nodes.into_iter().flatten() {
        slot.shutdown().expect("clean shutdown");
    }
}

/// Pumps deliveries until every live node has `expect` of them.
fn pump(nodes: &[Option<NodeHandle>], delivered: &mut [usize], expect: usize, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while delivered.iter().any(|&d| d < expect) && Instant::now() < deadline {
        for (i, slot) in nodes.iter().enumerate() {
            let Some(node) = slot.as_ref() else { continue };
            while let Some(ev) = node.recv_event(Duration::from_millis(10)) {
                if let AppEvent::Delivered(_) = ev {
                    delivered[i] += 1;
                }
            }
        }
    }
    assert!(
        delivered.iter().all(|&d| d >= expect),
        "not all nodes delivered {expect}: {delivered:?}"
    );
}
