//! Chaos-harness walkthrough: script a fault plan, run it against a
//! virtual five-node ring, show the reproducibility digest, then
//! restart a live daemon under a TCP client and watch the client
//! reconnect.
//!
//! ```bash
//! cargo run --example nemesis_demo [seed]
//! ```

use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, ParticipantId, ProtocolConfig, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, ListenerHandle};
use accelerated_ring::net::{LoopbackNet, NemesisPlan, NemesisRunner};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // ---- part 1: a scripted chaos run on the virtual clock ---------------
    let plan = NemesisPlan::none()
        .crash(Duration::from_millis(25), 4)
        .partition(Duration::from_millis(60), vec![0, 0, 0, 1, 1])
        .heal(Duration::from_millis(300));
    println!("plan: crash host 4 @25ms, partition 0,1,2|3,4 @60ms, heal @300ms");

    let outcome = run_plan(&plan, seed);
    println!(
        "seed {seed}: converged={} survivors={:?} deliveries={} dropped={} \
         tokens={} evs_violations={} digest={:#018x}",
        outcome.converged,
        outcome.survivors,
        outcome.deliveries.iter().sum::<usize>(),
        outcome.dropped,
        outcome.tokens_seen,
        outcome.evs_violations.len(),
        outcome.digest,
    );
    let repeat = run_plan(&plan, seed);
    println!(
        "seed {seed} again: digest={:#018x} ({})",
        repeat.digest,
        if repeat.digest == outcome.digest {
            "bit-identical — replayable"
        } else {
            "MISMATCH"
        }
    );

    // ---- part 2: a live daemon restart under a TCP client ----------------
    println!("\nlive: 2 daemons, TCP client, restart daemon 0 mid-session");
    let net = LoopbackNet::new();
    let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
    let ring = accelerated_ring::core::RingId::new(members[0], 1);
    let mk = |p: ParticipantId| {
        Participant::new(p, ProtocolConfig::accelerated(), ring, members.clone()).unwrap()
    };
    let d0 = spawn_daemon(mk(members[0]), net.endpoint(members[0]));
    let d1 = spawn_daemon(mk(members[1]), net.endpoint(members[1]));
    let l0 = d0.listen("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr0 = l0.local_addr();

    let mut alice = accelerated_ring::daemon::RemoteClient::connect(addr0, "alice").unwrap();
    alice.join("room").unwrap();
    wait(|| {
        alice
            .drain()
            .iter()
            .any(|ev| matches!(ev, ClientEvent::Membership { members, .. } if members.len() == 1))
    });
    println!("  alice joined 'room' via {addr0}");

    drop(l0);
    d0.shutdown().unwrap();
    net.detach(members[0]);
    println!("  daemon 0 killed (listener dropped, socket shut)");

    let d0b = spawn_daemon(
        Participant::new_singleton(members[0], ProtocolConfig::accelerated()).unwrap(),
        net.endpoint(members[0]),
    );
    let _l0b: ListenerHandle = d0b.listen(addr0).unwrap();
    println!("  daemon 0 restarted on the same port as a fresh singleton");

    wait(|| {
        let _ = alice.multicast(
            &["room"],
            ServiceType::Agreed,
            bytes::Bytes::from_static(b"hi"),
        );
        alice
            .drain()
            .iter()
            .any(|ev| matches!(ev, ClientEvent::Membership { members, .. } if members.len() == 1))
    });
    println!(
        "  alice is back in 'room' after {} reconnect attempt(s)",
        alice.reconnects()
    );

    drop(alice);
    d0b.shutdown().unwrap();
    d1.shutdown().unwrap();
    println!("  clean shutdown");
}

fn run_plan(plan: &NemesisPlan, seed: u64) -> accelerated_ring::net::NemesisOutcome {
    let mut r = NemesisRunner::new(5, ProtocolConfig::accelerated(), plan.clone(), 0.05, seed);
    for i in 0..5 {
        for k in 0..3 {
            r.submit(i, format!("h{i}-m{k}").as_bytes(), ServiceType::Agreed);
        }
    }
    r.submit_at(
        Duration::from_millis(350),
        0,
        b"probe-a",
        ServiceType::Agreed,
    );
    r.submit_at(
        Duration::from_millis(350),
        3,
        b"probe-b",
        ServiceType::Agreed,
    );
    r.start();
    r.run(Duration::from_secs(30))
}

fn wait<F: FnMut() -> bool>(mut f: F) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("demo step timed out");
}
