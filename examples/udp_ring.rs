//! A real UDP deployment on localhost: three daemons with dual UDP
//! sockets each (token port + data port, per the paper's Section
//! III-D), remote clients over TCP, and a totally ordered group chat —
//! the full production stack in one process.
//!
//! Run with: `cargo run --release --example udp_ring`

use std::time::{Duration, Instant};

use accelerated_ring::core::{Participant, RingId, ServiceType};
use accelerated_ring::daemon::{spawn_daemon, ClientEvent, Deployment, RemoteClient};
use accelerated_ring::net::UdpTransport;
use bytes::Bytes;

const CONFIG: &str = "\
protocol accelerated
personal_window 30
accelerated_window 20

daemon 0 token=127.0.0.1:7610 data=127.0.0.1:7611 clients=127.0.0.1:0
daemon 1 token=127.0.0.1:7612 data=127.0.0.1:7613 clients=127.0.0.1:0
daemon 2 token=127.0.0.1:7614 data=127.0.0.1:7615 clients=127.0.0.1:0
";

fn main() {
    let deployment = Deployment::parse(CONFIG).expect("valid config");
    let members = deployment.members();
    let ring_id = RingId::new(members[0], 1);

    // Boot the three daemons (in the real world these are `ard`
    // processes on three machines).
    let mut daemons = Vec::new();
    let mut listeners = Vec::new();
    for entry in deployment.daemons() {
        let transport = UdpTransport::bind(entry.pid, deployment.peer_map())
            .expect("bind UDP sockets (ports 7610-7615 must be free)");
        let part = Participant::new(entry.pid, deployment.protocol, ring_id, members.clone())
            .expect("valid ring");
        let handle = spawn_daemon(part, transport);
        let listener = handle
            .listen(entry.client_addr.expect("configured"))
            .expect("listen for clients");
        println!(
            "daemon {} up: protocol on {}, clients on {}",
            entry.pid,
            entry.addrs.token,
            listener.local_addr()
        );
        daemons.push(handle);
        listeners.push(listener);
    }

    // Three chat clients, one per daemon, over TCP.
    let mut clients: Vec<RemoteClient> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| RemoteClient::connect(l.local_addr(), &format!("user{i}")).expect("connect"))
        .collect();
    for c in clients.iter_mut() {
        c.join("chat").expect("join");
    }

    // Wait for the group to form.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut sizes = vec![0usize; clients.len()];
    while sizes.iter().any(|&s| s < 3) && Instant::now() < deadline {
        for (i, c) in clients.iter().enumerate() {
            for ev in c.drain() {
                if let ClientEvent::Membership { members, .. } = ev {
                    sizes[i] = members.len();
                }
            }
        }
    }
    assert!(sizes.iter().all(|&s| s == 3), "group formed: {sizes:?}");
    println!("\ngroup 'chat' formed with 3 members across 3 daemons");

    // Everyone talks at once.
    for (i, c) in clients.iter_mut().enumerate() {
        for k in 0..3 {
            c.multicast(
                &["chat"],
                ServiceType::Agreed,
                Bytes::from(format!("user{i} says {k}")),
            )
            .expect("send");
        }
    }

    // Everyone must see the identical conversation.
    let mut logs: Vec<Vec<String>> = vec![Vec::new(); clients.len()];
    let deadline = Instant::now() + Duration::from_secs(15);
    while logs.iter().any(|l| l.len() < 9) && Instant::now() < deadline {
        for (i, c) in clients.iter().enumerate() {
            for ev in c.drain() {
                if let ClientEvent::Message {
                    sender, payload, ..
                } = ev
                {
                    logs[i].push(format!("{sender}: {}", String::from_utf8_lossy(&payload)));
                }
            }
        }
    }
    println!("\nthe conversation as user0 saw it:");
    for line in &logs[0] {
        println!("  {line}");
    }
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log.len(), 9, "user{i} saw the whole conversation");
        assert_eq!(log, &logs[0], "user{i} saw the identical order");
    }
    println!(
        "\nall 3 clients saw the identical 9-message conversation (total order over real UDP)"
    );

    drop(clients);
    for d in daemons {
        d.shutdown().expect("clean shutdown");
    }
}
