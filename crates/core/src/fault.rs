//! A shared fault model for every harness that injects failures.
//!
//! The discrete-event simulator (`ar-sim`), the chaos transport and the
//! nemesis runner (`ar-net`) all express faults with the same
//! vocabulary: [`FaultEvent`] names a single injected failure,
//! [`FaultSchedule`] orders events on a wall-clock-style timeline, and
//! [`Connectivity`] folds applied events into a reachability matrix.
//! Keeping the types here (rather than in one harness) means a fault
//! plan written for the simulator can be replayed against the real
//! network stack and vice versa.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A single injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Host `host` crashes (stops processing and sending until a
    /// [`FaultEvent::Restart`], if any).
    Crash {
        /// The host index to crash.
        host: usize,
    },
    /// A previously crashed host comes back. The host restarts with
    /// empty protocol state and must rejoin through membership.
    Restart {
        /// The host index to revive.
        host: usize,
    },
    /// The network splits into components; hosts can only reach hosts
    /// in their own component.
    Partition {
        /// Component id per host (hosts with equal ids can communicate).
        component_of: Vec<u8>,
    },
    /// All partitions heal; every (non-crashed) host can reach every
    /// other.
    Heal,
}

/// A time-ordered schedule of fault events, keyed by elapsed time since
/// the start of the run.
///
/// This is the harness-neutral form: the simulator converts it to its
/// `SimTime` axis, the nemesis runner interprets the offsets against
/// its virtual clock, and the live harness against the wall clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<(Duration, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds a crash of `host` at `at`.
    #[must_use]
    pub fn crash(mut self, at: Duration, host: usize) -> Self {
        self.events.push((at, FaultEvent::Crash { host }));
        self.sort();
        self
    }

    /// Adds a restart of `host` at `at`.
    #[must_use]
    pub fn restart(mut self, at: Duration, host: usize) -> Self {
        self.events.push((at, FaultEvent::Restart { host }));
        self.sort();
        self
    }

    /// Adds a partition at `at`; `component_of[i]` names host `i`'s
    /// side.
    #[must_use]
    pub fn partition(mut self, at: Duration, component_of: Vec<u8>) -> Self {
        self.events
            .push((at, FaultEvent::Partition { component_of }));
        self.sort();
        self
    }

    /// Heals all partitions at `at`.
    #[must_use]
    pub fn heal(mut self, at: Duration) -> Self {
        self.events.push((at, FaultEvent::Heal));
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|(t, _)| *t);
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[(Duration, FaultEvent)] {
        &self.events
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Live connectivity state derived from applied [`FaultEvent`]s.
#[derive(Debug, Clone)]
pub struct Connectivity {
    crashed: Vec<bool>,
    component_of: Vec<u8>,
}

impl Connectivity {
    /// Full connectivity over `n` hosts.
    pub fn full(n: usize) -> Connectivity {
        Connectivity {
            crashed: vec![false; n],
            component_of: vec![0; n],
        }
    }

    /// Applies one fault event.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::Crash { host } => self.crashed[*host] = true,
            FaultEvent::Restart { host } => self.crashed[*host] = false,
            FaultEvent::Partition { component_of } => {
                assert_eq!(
                    component_of.len(),
                    self.component_of.len(),
                    "partition vector must cover every host"
                );
                self.component_of.clone_from(component_of);
            }
            FaultEvent::Heal => self.component_of.iter_mut().for_each(|c| *c = 0),
        }
    }

    /// True if host `i` has crashed (and not restarted since).
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// True if a frame from `from` can reach `to`.
    pub fn can_reach(&self, from: usize, to: usize) -> bool {
        !self.crashed[from] && !self.crashed[to] && self.component_of[from] == self.component_of[to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_time_sorted() {
        let plan = FaultSchedule::none()
            .heal(Duration::from_nanos(30))
            .crash(Duration::from_nanos(10), 2)
            .partition(Duration::from_nanos(20), vec![0, 0, 1, 1]);
        let times: Vec<u128> = plan.events().iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn connectivity_tracks_crashes_and_partitions() {
        let mut c = Connectivity::full(4);
        assert!(c.can_reach(0, 3));
        c.apply(&FaultEvent::Crash { host: 3 });
        assert!(!c.can_reach(0, 3));
        assert!(c.is_crashed(3));
        c.apply(&FaultEvent::Partition {
            component_of: vec![0, 0, 1, 1],
        });
        assert!(c.can_reach(0, 1));
        assert!(!c.can_reach(1, 2));
        c.apply(&FaultEvent::Heal);
        assert!(c.can_reach(1, 2));
        assert!(!c.can_reach(0, 3), "crash persists through heal");
        c.apply(&FaultEvent::Restart { host: 3 });
        assert!(c.can_reach(0, 3), "restart revives the host");
    }

    #[test]
    #[should_panic(expected = "cover every host")]
    fn partition_vector_must_match() {
        let mut c = Connectivity::full(2);
        c.apply(&FaultEvent::Partition {
            component_of: vec![0],
        });
    }
}
