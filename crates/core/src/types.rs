//! Fundamental identifier and counter types used throughout the protocol.
//!
//! Every protocol-level quantity gets its own newtype so that sequence
//! numbers, rounds, and participant identifiers cannot be confused with
//! one another (or with plain integers) at compile time.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a protocol participant (a daemon in the Spread
/// architecture, or a process in the library architecture).
///
/// Participant identifiers are assigned by the deployment (they play the
/// role of the IP address + port pair in the paper's implementations) and
/// must be unique within a configuration. The ordering of identifiers is
/// used by the membership algorithm to pick a deterministic ring
/// representative (the smallest identifier in the ring).
///
/// ```
/// use ar_core::ParticipantId;
/// let a = ParticipantId::new(1);
/// let b = ParticipantId::new(2);
/// assert!(a < b);
/// assert_eq!(a.as_u16(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ParticipantId(u16);

impl ParticipantId {
    /// Creates a participant identifier from a raw integer.
    pub const fn new(id: u16) -> Self {
        ParticipantId(id)
    }

    /// Returns the raw integer value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for ParticipantId {
    fn from(v: u16) -> Self {
        ParticipantId(v)
    }
}

/// A global total-order sequence number.
///
/// Sequence numbers are assigned to data messages by the token holder and
/// define the message's position in the total order. `Seq(0)` is the
/// "nothing yet" sentinel: the first message of a configuration carries
/// `Seq(1)`.
///
/// The paper's C implementations use 32-bit sequence numbers with
/// wrap-around handling; we use 64 bits, which cannot wrap in practice
/// (at 10 Gbps and 1350-byte messages, a 64-bit counter lasts ~60,000
/// years), trading a few header bytes for simpler invariants.
///
/// ```
/// use ar_core::Seq;
/// let s = Seq::ZERO;
/// assert_eq!(s.next(), Seq::new(1));
/// assert_eq!(Seq::new(5) - Seq::new(2), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Seq(u64);

impl Seq {
    /// The sentinel "no messages yet" sequence number.
    pub const ZERO: Seq = Seq(0);

    /// Creates a sequence number from a raw integer.
    pub const fn new(v: u64) -> Self {
        Seq(v)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow (unreachable in practice).
    #[must_use]
    pub const fn next(self) -> Seq {
        Seq(self.0 + 1)
    }

    /// Returns this sequence number advanced by `n`.
    #[must_use]
    pub const fn advance(self, n: u64) -> Seq {
        Seq(self.0 + n)
    }

    /// Saturating predecessor (`Seq::ZERO` stays `Seq::ZERO`).
    #[must_use]
    pub const fn prev(self) -> Seq {
        Seq(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl core::ops::Sub for Seq {
    type Output = u64;

    /// Distance between two sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub(self, rhs: Seq) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("sequence number subtraction underflow")
    }
}

/// A token round counter.
///
/// The round is incremented every time the token is passed from one
/// participant to the next (one *hop*), so `Round` increases by the ring
/// size over one full rotation. Data messages are stamped with the round
/// in which they were initiated; the priority-switching logic
/// (Section III-C of the paper) compares message rounds against token
/// rounds to decide when the token becomes high-priority again.
///
/// ```
/// use ar_core::Round;
/// let r = Round::new(7);
/// assert_eq!(r.next(), Round::new(8));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Round(u64);

impl Round {
    /// The initial round of a fresh configuration.
    pub const ZERO: Round = Round(0);

    /// Creates a round from a raw integer.
    pub const fn new(v: u64) -> Self {
        Round(v)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next round (one token hop later).
    #[must_use]
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns this round advanced by `n` hops.
    #[must_use]
    pub const fn advance(self, n: u64) -> Round {
        Round(self.0 + n)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a ring configuration.
///
/// Following Totem, a ring identifier is the pair of the representative's
/// participant identifier and a monotonically increasing ring sequence
/// number, so identifiers from successive configurations formed by the
/// same representative are distinct, and identifiers formed by different
/// representatives are distinct.
///
/// ```
/// use ar_core::{ParticipantId, RingId};
/// let r1 = RingId::new(ParticipantId::new(0), 4);
/// let r2 = RingId::new(ParticipantId::new(0), 8);
/// assert_ne!(r1, r2);
/// assert!(r1.ring_seq() < r2.ring_seq());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RingId {
    rep: ParticipantId,
    ring_seq: u64,
}

impl RingId {
    /// Creates a ring identifier from the representative and the ring
    /// sequence number.
    pub const fn new(rep: ParticipantId, ring_seq: u64) -> Self {
        RingId { rep, ring_seq }
    }

    /// The representative (smallest member) that formed this ring.
    pub const fn representative(self) -> ParticipantId {
        self.rep
    }

    /// The monotonically increasing ring sequence number.
    pub const fn ring_seq(self) -> u64 {
        self.ring_seq
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring({}, {})", self.rep, self.ring_seq)
    }
}

/// The delivery service requested for a message.
///
/// The Accelerated Ring protocol provides the Extended Virtual Synchrony
/// service spectrum. `Agreed` and `Safe` are the interesting ones for the
/// paper's evaluation; `Reliable`, `Fifo` and `Causal` are provided at
/// the same cost as `Agreed` (their guarantees are subsumed by the total
/// order, exactly as noted in Section II of the paper).
///
/// ```
/// use ar_core::ServiceType;
/// assert!(ServiceType::Safe.requires_stability());
/// assert!(!ServiceType::Agreed.requires_stability());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum ServiceType {
    /// Reliable delivery: the message is delivered by all connected
    /// members, with no ordering guarantee beyond the sender's.
    Reliable,
    /// FIFO delivery: messages from the same sender are delivered in the
    /// order they were sent.
    Fifo,
    /// Causal delivery: delivery order respects potential causality.
    Causal,
    /// Agreed delivery (total order): all members of a configuration
    /// deliver messages in the same total order, respecting causality.
    #[default]
    Agreed,
    /// Safe delivery (total order + stability): a message is delivered
    /// only once every member of the configuration is known to have
    /// received it.
    Safe,
}

impl ServiceType {
    /// Whether delivery must wait for stability (all members have
    /// received the message), i.e. whether this is `Safe` service.
    pub const fn requires_stability(self) -> bool {
        matches!(self, ServiceType::Safe)
    }

    /// Stable wire encoding of the service type.
    pub const fn as_u8(self) -> u8 {
        match self {
            ServiceType::Reliable => 0,
            ServiceType::Fifo => 1,
            ServiceType::Causal => 2,
            ServiceType::Agreed => 3,
            ServiceType::Safe => 4,
        }
    }

    /// Decodes a service type from its wire encoding.
    pub const fn from_u8(v: u8) -> Option<ServiceType> {
        match v {
            0 => Some(ServiceType::Reliable),
            1 => Some(ServiceType::Fifo),
            2 => Some(ServiceType::Causal),
            3 => Some(ServiceType::Agreed),
            4 => Some(ServiceType::Safe),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceType::Reliable => "reliable",
            ServiceType::Fifo => "fifo",
            ServiceType::Causal => "causal",
            ServiceType::Agreed => "agreed",
            ServiceType::Safe => "safe",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participant_id_roundtrip_and_ordering() {
        let a = ParticipantId::new(3);
        assert_eq!(a.as_u16(), 3);
        assert_eq!(ParticipantId::from(3u16), a);
        assert!(ParticipantId::new(1) < ParticipantId::new(2));
        assert_eq!(a.to_string(), "P3");
    }

    #[test]
    fn seq_arithmetic() {
        assert_eq!(Seq::ZERO.next(), Seq::new(1));
        assert_eq!(Seq::new(10).advance(5), Seq::new(15));
        assert_eq!(Seq::new(10) - Seq::new(4), 6);
        assert_eq!(Seq::new(1).prev(), Seq::ZERO);
        assert_eq!(Seq::ZERO.prev(), Seq::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn seq_subtraction_underflow_panics() {
        let _ = Seq::new(1) - Seq::new(2);
    }

    #[test]
    fn round_advances_per_hop() {
        let r = Round::ZERO;
        assert_eq!(r.next().as_u64(), 1);
        assert_eq!(r.advance(8).as_u64(), 8);
    }

    #[test]
    fn ring_id_identity() {
        let r1 = RingId::new(ParticipantId::new(0), 4);
        let r2 = RingId::new(ParticipantId::new(1), 4);
        let r3 = RingId::new(ParticipantId::new(0), 8);
        assert_ne!(r1, r2);
        assert_ne!(r1, r3);
        assert_eq!(r1.representative(), ParticipantId::new(0));
        assert_eq!(r3.ring_seq(), 8);
    }

    #[test]
    fn service_type_wire_roundtrip() {
        for s in [
            ServiceType::Reliable,
            ServiceType::Fifo,
            ServiceType::Causal,
            ServiceType::Agreed,
            ServiceType::Safe,
        ] {
            assert_eq!(ServiceType::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(ServiceType::from_u8(200), None);
    }

    #[test]
    fn only_safe_requires_stability() {
        assert!(ServiceType::Safe.requires_stability());
        for s in [
            ServiceType::Reliable,
            ServiceType::Fifo,
            ServiceType::Causal,
            ServiceType::Agreed,
        ] {
            assert!(!s.requires_stability());
        }
    }
}
