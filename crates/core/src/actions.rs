//! The outputs of the sans-io protocol state machine.
//!
//! The protocol core never performs I/O. Handling an input (a received
//! message, an application submission, a timer expiry) produces a list
//! of [`Action`]s that the embedding environment — the discrete-event
//! simulator, the UDP runtime, or a test harness — executes **in
//! order**. The ordering is semantically meaningful: the acceleration of
//! the protocol is precisely that [`Action::SendToken`] appears *before*
//! the post-token [`Action::Multicast`]s in the action list.

use crate::message::{CommitToken, DataMessage, Delivery, JoinMessage, Token};
use crate::types::{ParticipantId, RingId};

/// Logical timers the protocol asks its environment to run.
///
/// The core names the timer; the environment supplies the duration (see
/// [`crate::participant::TimeoutConfig`]) and calls back with
/// [`crate::participant::Participant::handle_timer`] on expiry. Setting
/// a timer that is already armed re-arms it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKind {
    /// No token seen for too long: the ring has failed; shift to Gather.
    TokenLoss,
    /// The token we forwarded may have been lost; retransmit it.
    TokenRetransmit,
    /// Periodic re-multicast of our join message while gathering.
    Join,
    /// Consensus not reached in time; declare unresponsive participants
    /// failed and restart the gather.
    ConsensusTimeout,
    /// The commit token did not complete its rotations; restart the
    /// gather.
    CommitTimeout,
}

/// Whether a configuration-change delivery is transitional or regular
/// (Extended Virtual Synchrony).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigChangeKind {
    /// The transitional configuration: the members of the old ring that
    /// continue together into the new ring. Messages that could not be
    /// delivered with full old-ring guarantees are delivered in this
    /// configuration.
    Transitional,
    /// The regular configuration: the new ring is installed and normal
    /// operation resumes.
    Regular,
}

/// A configuration change delivered to the application (a "view change"
/// in virtual-synchrony terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigChange {
    /// Transitional or regular.
    pub kind: ConfigChangeKind,
    /// The identifier of the configuration being delivered.
    pub ring_id: RingId,
    /// Its members, in ring order.
    pub members: Vec<ParticipantId>,
}

/// An output of the protocol state machine, to be executed by the
/// embedding environment in list order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Unicast the regular token to the successor.
    SendToken {
        /// The successor to send to.
        to: ParticipantId,
        /// The updated token.
        token: Token,
    },
    /// Multicast a data message to all ring members.
    Multicast(DataMessage),
    /// Deliver an ordered message to the application.
    Deliver(Delivery),
    /// Deliver a configuration change to the application.
    DeliverConfigChange(ConfigChange),
    /// Multicast a membership join message.
    MulticastJoin(JoinMessage),
    /// Unicast the membership commit token to the successor on the
    /// forming ring.
    SendCommit {
        /// The successor on the new ring.
        to: ParticipantId,
        /// The commit token.
        token: CommitToken,
    },
    /// Arm (or re-arm) a logical timer.
    SetTimer(TimerKind),
    /// Disarm a logical timer.
    CancelTimer(TimerKind),
}

impl Action {
    /// Short name of the action variant, for logs and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            Action::SendToken { .. } => "send-token",
            Action::Multicast(_) => "multicast",
            Action::Deliver(_) => "deliver",
            Action::DeliverConfigChange(_) => "config-change",
            Action::MulticastJoin(_) => "join",
            Action::SendCommit { .. } => "send-commit",
            Action::SetTimer(_) => "set-timer",
            Action::CancelTimer(_) => "cancel-timer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RingId, Seq};

    #[test]
    fn action_names() {
        let t = Token::initial(RingId::default(), Seq::ZERO);
        let a = Action::SendToken {
            to: ParticipantId::new(1),
            token: t,
        };
        assert_eq!(a.name(), "send-token");
        assert_eq!(Action::SetTimer(TimerKind::TokenLoss).name(), "set-timer");
    }
}
