//! Protocol message definitions.
//!
//! The ordering protocol exchanges two message kinds during normal
//! operation: [`Token`] messages (unicast from each participant to its
//! successor on the ring) and [`DataMessage`]s (multicast to all
//! participants). The membership algorithm additionally uses
//! [`JoinMessage`]s and [`CommitToken`]s (see [`crate::membership`]).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::types::{ParticipantId, RingId, Round, Seq, ServiceType};

/// The regular token that circulates the ring during normal operation.
///
/// The token carries everything a participant needs to (a) assign
/// sequence numbers to new messages, (b) learn global stability, (c)
/// perform flow control, and (d) request retransmissions — the paper's
/// Section III-A fields, plus a `round` hop counter and the `aru_setter`
/// bookkeeping participant required by the aru update rules of Totem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Configuration the token belongs to; tokens from old rings are
    /// discarded.
    pub ring_id: RingId,
    /// Hop counter: incremented once per token pass. Used to discard
    /// duplicate tokens (retransmitted after a suspected loss) and by the
    /// priority-switching logic.
    pub round: Round,
    /// The last sequence number claimed by any participant. The receiver
    /// may initiate messages starting at `seq + 1`.
    pub seq: Seq,
    /// All-received-up-to: the protocol's global stability estimate.
    /// Every participant has received all messages with sequence numbers
    /// `<= aru` once the token completes a rotation without the aru being
    /// lowered.
    pub aru: Seq,
    /// The participant that last lowered `aru`, if any. Totem's aru
    /// update rules use this to decide when the setter may raise the aru
    /// again.
    pub aru_setter: Option<ParticipantId>,
    /// Flow-control count: the total number of multicasts (new messages
    /// and retransmissions) sent during the last rotation.
    pub fcc: u32,
    /// Retransmission requests: sequence numbers some participant is
    /// missing. Sorted, deduplicated.
    pub rtr: Vec<Seq>,
}

impl Token {
    /// Creates the first regular token of a fresh configuration.
    ///
    /// `seq`/`aru` start at the given watermark (zero for a brand-new
    /// ring; the recovered watermark after a membership change).
    pub fn initial(ring_id: RingId, start: Seq) -> Token {
        Token {
            ring_id,
            round: Round::ZERO,
            seq: start,
            aru: start,
            aru_setter: None,
            fcc: 0,
            rtr: Vec::new(),
        }
    }

    /// Returns true if `s` is requested for retransmission by this token.
    pub fn requests_retransmission(&self, s: Seq) -> bool {
        self.rtr.binary_search(&s).is_ok()
    }
}

/// A multicast data message carrying application payload.
///
/// Fields mirror Section III-B of the paper: the global sequence number,
/// the initiating participant, the round in which the message was
/// initiated, and the opaque payload. We add the requested
/// [`ServiceType`] and an `after_token` flag marking messages multicast
/// during the post-token phase, which implements the paper's second
/// priority-switching method ("a data message that its immediate
/// predecessor sent in the next round *after* having sent the token").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataMessage {
    /// Configuration in which this message was initiated.
    pub ring_id: RingId,
    /// Position of the message in the global total order.
    pub seq: Seq,
    /// The participant that initiated the message.
    pub pid: ParticipantId,
    /// Token round (hop count) in which the message was initiated.
    pub round: Round,
    /// Delivery service requested by the application.
    pub service: ServiceType,
    /// True if the initiator multicast this message after passing the
    /// token (the accelerated, post-token phase); false for pre-token
    /// multicasts and retransmissions.
    pub after_token: bool,
    /// Opaque application payload. Never inspected by the protocol.
    pub payload: Bytes,
}

impl DataMessage {
    /// Total wire size of this message when encoded, in bytes.
    ///
    /// Useful for flow-control and throughput accounting without
    /// actually encoding the message.
    pub fn wire_len(&self) -> usize {
        crate::wire::DATA_HEADER_LEN + self.payload.len()
    }
}

/// A membership join message, multicast while the membership algorithm
/// is gathering a new configuration.
///
/// Join messages carry the sender's current view of which participants
/// are reachable (`proc_set`) and which have been declared failed
/// (`fail_set`). The gather phase reaches consensus when every reachable,
/// non-failed participant advertises identical sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinMessage {
    /// The participant sending this join message.
    pub sender: ParticipantId,
    /// Participants the sender currently considers part of the next ring.
    pub proc_set: Vec<ParticipantId>,
    /// Participants the sender has declared failed this attempt.
    pub fail_set: Vec<ParticipantId>,
    /// The largest ring sequence number the sender has participated in;
    /// the new ring's sequence number must exceed every member's value.
    pub ring_seq: u64,
}

/// Per-member recovery information carried on the [`CommitToken`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberInfo {
    /// The member this entry describes.
    pub pid: ParticipantId,
    /// The ring the member was operating in before this membership
    /// change.
    pub old_ring_id: RingId,
    /// The member's local all-received-up-to in its old ring.
    pub my_aru: Seq,
    /// The highest sequence number the member received in its old ring.
    pub high_seq: Seq,
    /// The old-ring stability watermark (`Safe` delivery threshold) the
    /// member had established before the configuration change.
    pub safe_seq: Seq,
    /// Whether the member has filled in its entry (set during the first
    /// rotation of the commit token).
    pub filled: bool,
}

impl MemberInfo {
    /// Creates an unfilled placeholder entry for `pid`.
    pub fn placeholder(pid: ParticipantId) -> MemberInfo {
        MemberInfo {
            pid,
            old_ring_id: RingId::default(),
            my_aru: Seq::ZERO,
            high_seq: Seq::ZERO,
            safe_seq: Seq::ZERO,
            filled: false,
        }
    }
}

/// The commit token that circulates the *new* ring (twice) to commit a
/// membership change before recovery begins.
///
/// On the first rotation each member fills in its [`MemberInfo`]
/// (old-ring identifier, aru, highest received sequence number). On the
/// second rotation every member observes the complete set, learns what
/// must be recovered from each old ring, and shifts to the Recovery
/// state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitToken {
    /// The identifier of the new ring being formed.
    pub ring_id: RingId,
    /// The ordered member list of the new ring (ring order).
    pub memb: Vec<MemberInfo>,
    /// Hop counter, used to detect when the token has completed its
    /// first and second rotations.
    pub hop: u32,
}

impl CommitToken {
    /// Creates a fresh commit token for a new ring over `members`
    /// (already in ring order, representative first).
    pub fn new(ring_id: RingId, members: &[ParticipantId]) -> CommitToken {
        CommitToken {
            ring_id,
            memb: members
                .iter()
                .map(|&p| MemberInfo::placeholder(p))
                .collect(),
            hop: 0,
        }
    }

    /// The ordered list of member identifiers.
    pub fn member_ids(&self) -> Vec<ParticipantId> {
        self.memb.iter().map(|m| m.pid).collect()
    }

    /// True once every member has filled in its recovery information.
    pub fn all_filled(&self) -> bool {
        self.memb.iter().all(|m| m.filled)
    }
}

/// A message as delivered to the application, together with its delivery
/// metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The configuration the message is delivered in.
    pub ring_id: RingId,
    /// Total-order position.
    pub seq: Seq,
    /// Initiating participant.
    pub pid: ParticipantId,
    /// Service the message was sent with.
    pub service: ServiceType,
    /// Application payload.
    pub payload: Bytes,
}

impl Delivery {
    /// Builds the delivery record for a received data message.
    pub fn from_data(msg: &DataMessage) -> Delivery {
        Delivery {
            ring_id: msg.ring_id,
            seq: msg.seq,
            pid: msg.pid,
            service: msg.service,
            payload: msg.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingId {
        RingId::new(ParticipantId::new(0), 1)
    }

    #[test]
    fn initial_token_is_empty() {
        let t = Token::initial(ring(), Seq::ZERO);
        assert_eq!(t.seq, Seq::ZERO);
        assert_eq!(t.aru, Seq::ZERO);
        assert_eq!(t.fcc, 0);
        assert!(t.rtr.is_empty());
        assert_eq!(t.aru_setter, None);
        assert_eq!(t.round, Round::ZERO);
    }

    #[test]
    fn initial_token_inherits_recovery_watermark() {
        let t = Token::initial(ring(), Seq::new(42));
        assert_eq!(t.seq, Seq::new(42));
        assert_eq!(t.aru, Seq::new(42));
    }

    #[test]
    fn rtr_lookup_uses_sorted_order() {
        let mut t = Token::initial(ring(), Seq::ZERO);
        t.rtr = vec![Seq::new(3), Seq::new(7), Seq::new(9)];
        assert!(t.requests_retransmission(Seq::new(7)));
        assert!(!t.requests_retransmission(Seq::new(8)));
    }

    #[test]
    fn data_message_wire_len_includes_header() {
        let m = DataMessage {
            ring_id: ring(),
            seq: Seq::new(1),
            pid: ParticipantId::new(2),
            round: Round::new(5),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::from_static(b"hello"),
        };
        assert_eq!(m.wire_len(), crate::wire::DATA_HEADER_LEN + 5);
    }

    #[test]
    fn delivery_copies_message_metadata() {
        let m = DataMessage {
            ring_id: ring(),
            seq: Seq::new(9),
            pid: ParticipantId::new(4),
            round: Round::new(2),
            service: ServiceType::Safe,
            after_token: true,
            payload: Bytes::from_static(b"xyz"),
        };
        let d = Delivery::from_data(&m);
        assert_eq!(d.seq, m.seq);
        assert_eq!(d.pid, m.pid);
        assert_eq!(d.service, m.service);
        assert_eq!(d.payload, m.payload);
    }
}
