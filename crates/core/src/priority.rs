//! Token-versus-data processing priority (Section III-C of the paper).
//!
//! When both a token and data messages are queued for processing, the
//! protocol must decide which to handle first. Processing the token too
//! early requests spurious retransmissions (the predecessor's messages
//! were sent, just not yet processed) and lets unprocessed data pile up;
//! processing it too late squanders the acceleration. The
//! [`PriorityTracker`] implements the paper's two switching methods:
//!
//! * after a token is processed, data messages get high priority;
//! * the token regains high priority when the participant processes a
//!   data message that its immediate ring predecessor initiated in the
//!   *next* round — any such message under
//!   [`PriorityMethod::Aggressive`] (method 1), or only one the
//!   predecessor multicast after passing the token (its post-token
//!   phase) under [`PriorityMethod::Conservative`] (method 2).
//!
//! Priority is a *preference*, not an exclusion: a host with an empty
//! high-priority queue processes the other kind immediately. The choice
//! affects performance only, never correctness.

use crate::config::PriorityMethod;
use crate::message::DataMessage;
use crate::types::{ParticipantId, Round};

/// Which message kind is currently preferred for processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityMode {
    /// Prefer token messages.
    TokenHigh,
    /// Prefer data messages.
    DataHigh,
}

/// Tracks the current processing priority for one participant.
#[derive(Debug, Clone)]
pub struct PriorityTracker {
    method: PriorityMethod,
    mode: PriorityMode,
    predecessor: ParticipantId,
    ring_size: u64,
    last_token_round: Round,
}

impl PriorityTracker {
    /// Creates a tracker for a participant whose immediate ring
    /// predecessor is `predecessor` on a ring of `ring_size` members.
    ///
    /// The tracker starts in [`PriorityMode::TokenHigh`] so the first
    /// token of a configuration is handled immediately.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size` is zero.
    pub fn new(method: PriorityMethod, predecessor: ParticipantId, ring_size: usize) -> Self {
        assert!(ring_size > 0, "ring cannot be empty");
        PriorityTracker {
            method,
            mode: PriorityMode::TokenHigh,
            predecessor,
            ring_size: ring_size as u64,
            last_token_round: Round::ZERO,
        }
    }

    /// Current preference.
    pub fn mode(&self) -> PriorityMode {
        self.mode
    }

    /// The switching method in force.
    pub fn method(&self) -> PriorityMethod {
        self.method
    }

    /// Records that the token for `round` was processed: data messages
    /// become high-priority.
    pub fn on_token_processed(&mut self, round: Round) {
        self.last_token_round = round;
        self.mode = PriorityMode::DataHigh;
    }

    /// Records that a ring configuration change installed a new
    /// predecessor and ring size; resets to token-high for the first
    /// token of the new ring.
    pub fn reconfigure(&mut self, predecessor: ParticipantId, ring_size: usize) {
        assert!(ring_size > 0, "ring cannot be empty");
        self.predecessor = predecessor;
        self.ring_size = ring_size as u64;
        self.mode = PriorityMode::TokenHigh;
        self.last_token_round = Round::ZERO;
    }

    /// Records that a data message was processed, possibly raising the
    /// token's priority.
    ///
    /// With the token round incrementing once per hop, the predecessor
    /// initiates its next-round messages with round
    /// `last_token_round + ring_size - 1`.
    pub fn on_data_processed(&mut self, msg: &DataMessage) {
        if self.mode == PriorityMode::TokenHigh {
            return;
        }
        if msg.pid != self.predecessor {
            return;
        }
        let next_round_of_pred = self.last_token_round.advance(self.ring_size - 1);
        if msg.round < next_round_of_pred {
            return;
        }
        match self.method {
            PriorityMethod::Aggressive => self.mode = PriorityMode::TokenHigh,
            PriorityMethod::Conservative => {
                if msg.after_token {
                    self.mode = PriorityMode::TokenHigh;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RingId, Seq, ServiceType};
    use bytes::Bytes;

    const PRED: ParticipantId = ParticipantId::new(7);
    const OTHER: ParticipantId = ParticipantId::new(3);
    const RING_SIZE: usize = 8;

    fn data(pid: ParticipantId, round: u64, after_token: bool) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(1),
            pid,
            round: Round::new(round),
            service: ServiceType::Agreed,
            after_token,
            payload: Bytes::new(),
        }
    }

    fn tracker(method: PriorityMethod) -> PriorityTracker {
        let mut t = PriorityTracker::new(method, PRED, RING_SIZE);
        // Simulate having processed the token for round 10.
        t.on_token_processed(Round::new(10));
        t
    }

    #[test]
    fn starts_token_high() {
        let t = PriorityTracker::new(PriorityMethod::Aggressive, PRED, RING_SIZE);
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    fn token_processing_lowers_token_priority() {
        let t = tracker(PriorityMethod::Aggressive);
        assert_eq!(t.mode(), PriorityMode::DataHigh);
    }

    #[test]
    fn aggressive_raises_on_any_next_round_predecessor_message() {
        let mut t = tracker(PriorityMethod::Aggressive);
        // Predecessor's next round = 10 + 8 - 1 = 17.
        t.on_data_processed(&data(PRED, 16, false));
        assert_eq!(t.mode(), PriorityMode::DataHigh, "old round ignored");
        t.on_data_processed(&data(PRED, 17, false));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    fn aggressive_ignores_non_predecessor() {
        let mut t = tracker(PriorityMethod::Aggressive);
        t.on_data_processed(&data(OTHER, 17, true));
        assert_eq!(t.mode(), PriorityMode::DataHigh);
    }

    #[test]
    fn conservative_waits_for_post_token_message() {
        let mut t = tracker(PriorityMethod::Conservative);
        t.on_data_processed(&data(PRED, 17, false));
        assert_eq!(
            t.mode(),
            PriorityMode::DataHigh,
            "pre-token message does not switch method 2"
        );
        t.on_data_processed(&data(PRED, 17, true));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    fn later_rounds_also_trigger() {
        let mut t = tracker(PriorityMethod::Aggressive);
        t.on_data_processed(&data(PRED, 30, false));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    fn already_token_high_is_stable() {
        let mut t = tracker(PriorityMethod::Aggressive);
        t.on_data_processed(&data(PRED, 17, false));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
        // Further data does not flip it back.
        t.on_data_processed(&data(PRED, 17, false));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    fn reconfigure_resets_state() {
        let mut t = tracker(PriorityMethod::Aggressive);
        t.reconfigure(OTHER, 3);
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
        t.on_token_processed(Round::new(5));
        // New predecessor's next round = 5 + 3 - 1 = 7.
        t.on_data_processed(&data(OTHER, 7, false));
        assert_eq!(t.mode(), PriorityMode::TokenHigh);
    }

    #[test]
    #[should_panic(expected = "ring cannot be empty")]
    fn empty_ring_rejected() {
        let _ = PriorityTracker::new(PriorityMethod::Aggressive, PRED, 0);
    }
}
