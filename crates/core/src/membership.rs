//! The membership algorithm: gather, commit, and recovery.
//!
//! The Accelerated Ring protocol uses the membership algorithm of the
//! Totem single-ring protocol (as implemented in Spread), which the
//! paper inherits unchanged (Section II). This module implements that
//! algorithm's structure:
//!
//! * **Gather** — on token loss (or on hearing a foreign participant), a
//!   participant multicasts *join* messages carrying its view of the
//!   reachable set (`proc_set`) and the failed set (`fail_set`). Views
//!   are merged monotonically; consensus is reached when every
//!   reachable, non-failed participant advertises identical sets.
//! * **Commit** — the representative (smallest identifier) of the agreed
//!   membership circulates a *commit token* around the new ring. On the
//!   first rotation each member records its old-ring state (ring id,
//!   local aru, highest received sequence number); subsequent rotations
//!   drive recovery.
//! * **Recovery** — members of each old ring re-multicast the messages
//!   other continuing members of that ring are missing, until every
//!   member holds every message of its old ring up to the group's
//!   highest received sequence number. The commit token keeps rotating,
//!   with each member refreshing its progress entry, until all groups
//!   are complete. Each member then delivers the Extended Virtual
//!   Synchrony sequence — the **transitional configuration** (the old
//!   ring members that continue together), the remaining old-ring
//!   messages (Safe messages that never became stable in the old ring
//!   are delivered here, with guarantees relative to the transitional
//!   membership), and finally the **regular configuration** — and
//!   resumes normal operation on the new ring. The new ring's
//!   representative injects the first regular token.
//!
//! Two deliberate simplifications relative to Totem's full recovery are
//! documented in `DESIGN.md`: recovery re-multicasts old-ring messages
//! with their original (old-ring) identifiers rather than encapsulating
//! them in new-ring sequence space, and every continuing member of a
//! group (not a single elected member) answers its group's gaps, with
//! duplicates suppressed by the receive buffer. Both preserve the
//! delivered sequences and the EVS guarantees; they trade some recovery
//! bandwidth for a substantially simpler state machine.

use std::collections::{BTreeMap, BTreeSet};

use crate::actions::{Action, ConfigChange, ConfigChangeKind, TimerKind};
use crate::message::{CommitToken, DataMessage, JoinMessage, Token};
use crate::participant::{Mode, OrderingState, Participant, TimeoutConfig, TimeoutConfigError};
use crate::recvbuf::{InsertOutcome, RecvBuffer};
use crate::ring::RingInfo;
use crate::types::{ParticipantId, RingId, Seq};

/// How many past ring identifiers to remember for stale-traffic
/// filtering.
const PREV_RING_MEMORY: usize = 8;

/// Flap-damping bookkeeping for one (possibly departed) member.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MemberPenalty {
    /// Accumulated penalty score; decays by halving every
    /// `half_life_rounds` handled tokens.
    pub(crate) score: u32,
    /// Whether the member is currently excluded from memberships.
    pub(crate) quarantined: bool,
}

/// Recovery bookkeeping, alive from the first fully-filled commit token
/// until the participant resumes normal operation.
#[derive(Debug, Clone)]
pub(crate) struct RecoveryState {
    /// The ring being formed.
    pub(crate) new_ring: RingInfo,
    /// Latest view of the commit token (entries refresh as it rotates).
    pub(crate) commit: CommitToken,
    /// Highest sequence number any continuing member of *my* old ring
    /// received; recovery for my group completes when every continuing
    /// member's aru reaches it.
    pub(crate) my_group_high: Seq,
    /// Members of my old ring that continue into the new ring (the
    /// transitional configuration).
    pub(crate) transitional_members: Vec<ParticipantId>,
}

/// Membership-related state owned by every [`Participant`].
#[derive(Debug, Clone)]
pub struct MembershipState {
    /// Timer durations and retry limits (the environment arms the
    /// timers; the protocol supplies the policy).
    pub(crate) timeouts: TimeoutConfig,
    pub(crate) proc_set: BTreeSet<ParticipantId>,
    pub(crate) fail_set: BTreeSet<ParticipantId>,
    pub(crate) joins: BTreeMap<ParticipantId, JoinMessage>,
    pub(crate) max_ring_seq: u64,
    /// Highest ring seq of a commit token *we created* and later
    /// abandoned. A commit for (us, seq) may have escaped and still
    /// install at another member, so our next proposal as
    /// representative must skip past it — one ring id must never name
    /// two member sets. Tracked creator-locally (only `live[0]` ever
    /// creates a token, so only the creator can collide with itself)
    /// and deliberately *not* folded into `max_ring_seq`: burning the
    /// shared counter on every abandoned attempt makes regathered
    /// joins look newer to peers mid-commit, aborting their attempts
    /// and ratcheting the whole component into livelock under churn.
    pub(crate) my_abandoned_high: u64,
    pub(crate) commit_ring: Option<RingId>,
    pub(crate) last_commit_hop: u32,
    pub(crate) rec: Option<RecoveryState>,
    pub(crate) pending_new_ring_data: Vec<DataMessage>,
    pub(crate) prev_rings: Vec<RingId>,
    /// Whether forming a singleton ring is permitted. Set only after a
    /// consensus timeout: a gather must wait to hear peers before
    /// concluding it is alone, or merges would never happen.
    pub(crate) alone_ok: bool,
    /// Flap-damping penalty scores, keyed by member. Entries decay
    /// round-by-round (handled tokens, never wall clock) and vanish at
    /// zero, so the map stays bounded by the set of recent flappers.
    pub(crate) penalties: BTreeMap<ParticipantId, MemberPenalty>,
    /// Handled tokens since the last penalty half-life decay.
    pub(crate) rounds_since_decay: u64,
}

impl MembershipState {
    pub(crate) fn new() -> MembershipState {
        MembershipState {
            timeouts: TimeoutConfig::default(),
            proc_set: BTreeSet::new(),
            fail_set: BTreeSet::new(),
            joins: BTreeMap::new(),
            max_ring_seq: 0,
            my_abandoned_high: 0,
            commit_ring: None,
            last_commit_hop: 0,
            rec: None,
            pending_new_ring_data: Vec::new(),
            prev_rings: Vec::new(),
            alone_ok: false,
            penalties: BTreeMap::new(),
            rounds_since_decay: 0,
        }
    }
}

impl Participant {
    /// Replaces the timeout policy (durations are interpreted by the
    /// environment; the retransmit limit is used by the protocol).
    ///
    /// The policy is validated first: zero durations or a retransmit
    /// interval at or above the loss timeout are rejected, leaving the
    /// previous policy in force.
    pub fn set_timeouts(&mut self, timeouts: TimeoutConfig) -> Result<(), TimeoutConfigError> {
        timeouts.validate()?;
        self.memb.timeouts = timeouts;
        Ok(())
    }

    /// Installs a timeout policy derived by the adaptive controller.
    ///
    /// Like [`Participant::set_timeouts`] but counted and observable:
    /// when the policy actually changes, `timeouts_adapted` is bumped
    /// and a [`ProtoEvent::TimeoutsAdapted`] is emitted. Returns
    /// whether anything changed.
    ///
    /// [`ProtoEvent::TimeoutsAdapted`]: crate::observer::ProtoEvent::TimeoutsAdapted
    pub fn adapt_timeouts(&mut self, timeouts: TimeoutConfig) -> Result<bool, TimeoutConfigError> {
        timeouts.validate()?;
        if self.memb.timeouts == timeouts {
            return Ok(false);
        }
        self.memb.timeouts = timeouts;
        self.stats.timeouts_adapted += 1;
        self.obs
            .emit(|| crate::observer::ProtoEvent::TimeoutsAdapted {
                token_loss_ns: timeouts.token_loss,
                token_retransmit_ns: timeouts.token_retransmit,
                consensus_ns: timeouts.consensus,
            });
        Ok(true)
    }

    /// The timeout policy in force.
    pub fn timeouts(&self) -> &TimeoutConfig {
        &self.memb.timeouts
    }

    // ----- flap damping ---------------------------------------------------

    /// Whether `p` is currently quarantined by flap damping.
    pub fn is_quarantined(&self, p: ParticipantId) -> bool {
        self.cfg.flap_damping.enabled && self.memb.penalties.get(&p).is_some_and(|m| m.quarantined)
    }

    /// Number of members currently quarantined by flap damping.
    pub fn quarantined_count(&self) -> usize {
        self.memb
            .penalties
            .values()
            .filter(|m| m.quarantined)
            .count()
    }

    /// The current flap penalty score of `p` (zero if unknown).
    pub fn flap_penalty(&self, p: ParticipantId) -> u32 {
        self.memb.penalties.get(&p).map_or(0, |m| m.score)
    }

    /// Charges `p` one flap penalty, quarantining it when the score
    /// crosses the suppress threshold.
    ///
    /// Public so property tests and the state-space explorer can drive
    /// the damping machinery directly; production code paths call this
    /// from membership-change handling only.
    pub fn penalize(&mut self, p: ParticipantId) {
        let dcfg = self.cfg.flap_damping;
        let entry = self.memb.penalties.entry(p).or_default();
        entry.score = entry
            .score
            .saturating_add(dcfg.penalty_per_flap)
            .min(dcfg.max_penalty);
        let score = entry.score;
        let newly_quarantined = !entry.quarantined && score >= dcfg.suppress_threshold;
        if newly_quarantined {
            entry.quarantined = true;
        }
        self.obs
            .emit(|| crate::observer::ProtoEvent::MemberPenalized {
                member: p.as_u16(),
                penalty: score,
            });
        if newly_quarantined {
            self.stats.members_quarantined += 1;
            self.obs
                .emit(|| crate::observer::ProtoEvent::MemberQuarantined {
                    member: p.as_u16(),
                    penalty: score,
                });
        }
    }

    /// Advances the round-based penalty decay. Called once per handled
    /// token, so the half-life is measured in token rotations and stays
    /// deterministic under the nemesis virtual clock.
    ///
    /// Public for the same reason as [`Participant::penalize`]: the
    /// flap-damping property tests step quiet rounds explicitly.
    pub fn decay_penalties(&mut self) {
        if self.memb.penalties.is_empty() {
            self.memb.rounds_since_decay = 0;
            return;
        }
        self.memb.rounds_since_decay += 1;
        if self.memb.rounds_since_decay < self.cfg.flap_damping.half_life_rounds {
            return;
        }
        self.memb.rounds_since_decay = 0;
        let reuse = self.cfg.flap_damping.reuse_threshold;
        let mut reinstated: Vec<u16> = Vec::new();
        self.memb.penalties.retain(|p, m| {
            m.score /= 2;
            if m.quarantined && m.score < reuse {
                m.quarantined = false;
                reinstated.push(p.as_u16());
            }
            m.score > 0 || m.quarantined
        });
        for member in reinstated {
            self.stats.members_reinstated += 1;
            self.obs
                .emit(|| crate::observer::ProtoEvent::MemberReinstated { member });
        }
    }

    /// Moves every quarantined member into the fail set so consensus
    /// forms without it. Quarantined members stay in `proc_set`: the
    /// fail-set entry rides our join messages, so peers that merge our
    /// view also exclude the flapper (damping is deliberately
    /// contagious, as in Spread's route damping).
    fn apply_quarantine(&mut self) {
        if !self.cfg.flap_damping.enabled {
            return;
        }
        let quarantined: Vec<ParticipantId> = self
            .memb
            .penalties
            .iter()
            .filter(|(_, m)| m.quarantined)
            .map(|(&p, _)| p)
            .collect();
        for p in quarantined {
            if p != self.pid {
                self.memb.fail_set.insert(p);
            }
        }
    }

    // ----- gather ---------------------------------------------------------

    /// Environment-driven membership trigger: a freshly booted node (or
    /// one told out-of-band that other rings exist) abandons normal
    /// operation and seeks a configuration by multicasting its join
    /// message. Equivalent to the token-loss escalation path, but
    /// initiated by the embedding environment — deterministic test
    /// worlds use it to model the "node join" transition without
    /// waiting for foreign traffic.
    pub fn initiate_gather(&mut self) -> Vec<Action> {
        self.start_gather(Vec::new())
    }

    /// Abandons normal operation and starts (or restarts) the gather
    /// phase, optionally merging a join message that triggered it.
    pub(crate) fn start_gather(&mut self, merge: Vec<JoinMessage>) -> Vec<Action> {
        self.stats.gathers_started += 1;
        self.obs
            .emit(|| crate::observer::ProtoEvent::GatherStarted {
                ring_seq: self.ring.id().ring_seq(),
            });
        self.mode = Mode::Gather;
        self.memb.max_ring_seq = self.memb.max_ring_seq.max(self.ring.id().ring_seq());
        // Abandoning a commit token we created burns its ring seq (see
        // `my_abandoned_high`): the token may already have escaped and
        // install at another member, and our next proposal must not
        // name a different member set under the same ring id.
        if let Some(attempt) = self.memb.commit_ring {
            if attempt.representative() == self.pid {
                self.memb.my_abandoned_high = self.memb.my_abandoned_high.max(attempt.ring_seq());
            }
        }
        self.memb.proc_set = self.ring.members().iter().copied().collect();
        self.memb.proc_set.insert(self.pid);
        self.memb.fail_set.clear();
        self.memb.joins.clear();
        self.memb.commit_ring = None;
        self.memb.last_commit_hop = 0;
        self.memb.rec = None;
        self.memb.pending_new_ring_data.clear();
        self.memb.alone_ok = false;
        for j in merge {
            self.merge_join(j);
        }
        self.apply_quarantine();
        let my_join = self.build_join();
        self.memb.joins.insert(self.pid, my_join.clone());
        let mut actions = vec![
            Action::CancelTimer(TimerKind::TokenLoss),
            Action::CancelTimer(TimerKind::TokenRetransmit),
            Action::MulticastJoin(my_join),
            Action::SetTimer(TimerKind::Join),
            Action::SetTimer(TimerKind::ConsensusTimeout),
        ];
        actions.extend(self.check_consensus());
        actions
    }

    fn build_join(&self) -> JoinMessage {
        JoinMessage {
            sender: self.pid,
            proc_set: self.memb.proc_set.iter().copied().collect(),
            fail_set: self.memb.fail_set.iter().copied().collect(),
            ring_seq: self.memb.max_ring_seq,
        }
    }

    /// Merges a join message into the local view; returns true if the
    /// view changed.
    fn merge_join(&mut self, j: JoinMessage) -> bool {
        if j.fail_set.contains(&self.pid) {
            // A view that has failed *us* cannot be merged; the sender
            // will form its ring without us and we ours without it.
            return false;
        }
        let mut changed = false;
        if self.memb.proc_set.insert(j.sender) {
            changed = true;
        }
        for &p in &j.proc_set {
            if self.memb.proc_set.insert(p) {
                changed = true;
            }
        }
        for &p in &j.fail_set {
            if p != self.pid && self.memb.fail_set.insert(p) {
                changed = true;
            }
        }
        if j.ring_seq > self.memb.max_ring_seq {
            self.memb.max_ring_seq = j.ring_seq;
            changed = true;
        }
        let stale = self
            .memb
            .joins
            .get(&j.sender)
            .is_some_and(|prev| prev == &j);
        if !stale {
            self.memb.joins.insert(j.sender, j);
            changed = true;
        }
        changed
    }

    pub(crate) fn handle_join(&mut self, j: JoinMessage) -> Vec<Action> {
        if j.sender == self.pid {
            return Vec::new(); // our own multicast looped back
        }
        if self.is_quarantined(j.sender) {
            // A quarantined flapper keeps asking to join; damping means
            // ignoring it until its penalty decays.
            self.stats.joins_suppressed += 1;
            return Vec::new();
        }
        match self.mode {
            Mode::Operational => {
                let stale = self.ring.contains(j.sender) && j.ring_seq < self.ring.id().ring_seq();
                if stale {
                    return Vec::new();
                }
                self.start_gather(vec![j])
            }
            Mode::Gather => {
                if !self.merge_join(j) {
                    return Vec::new();
                }
                self.apply_quarantine();
                let my_join = self.build_join();
                self.memb.joins.insert(self.pid, my_join.clone());
                let mut actions = vec![Action::MulticastJoin(my_join)];
                actions.extend(self.check_consensus());
                actions
            }
            Mode::Commit | Mode::Recovery => {
                // A disturbance during commit/recovery: restart the
                // gather only for genuinely new information.
                let attempt_members: Vec<ParticipantId> = self
                    .memb
                    .rec
                    .as_ref()
                    .map(|r| r.new_ring.members().to_vec())
                    .or_else(|| {
                        self.memb
                            .commit_ring
                            .map(|_| self.memb.proc_set.iter().copied().collect())
                    })
                    .unwrap_or_default();
                let known = attempt_members.contains(&j.sender);
                let newer = j.ring_seq > self.memb.max_ring_seq;
                if known && !newer {
                    return Vec::new();
                }
                if known {
                    // The sender proposes a live set; compare it with
                    // our attempt's.
                    let join_live: Vec<ParticipantId> = j
                        .proc_set
                        .iter()
                        .copied()
                        .filter(|p| !j.fail_set.contains(p))
                        .collect();
                    let attempt_live: Vec<ParticipantId> = attempt_members
                        .iter()
                        .copied()
                        .filter(|p| !self.memb.fail_set.contains(p))
                        .collect();
                    if join_live == attempt_live {
                        // Same live set, only a higher ring seq: the
                        // echo of an abandoned attempt, not news. Every
                        // consensus evaluation burns a ring seq, so in
                        // a merge the members' regathered joins always
                        // outnumber any single attempt; aborting on
                        // each echo regathers, burns higher, and
                        // ratchets every attempt in the component into
                        // a livelock where no ring ever installs.
                        // Absorb the seq (so a later gather starts
                        // beyond the echo) and let our commit token
                        // recapture the sender; if the sender really
                        // moved on, the commit timeout regathers us.
                        self.memb.max_ring_seq = self.memb.max_ring_seq.max(j.ring_seq);
                        return Vec::new();
                    }
                }
                self.start_gather(vec![j])
            }
        }
    }

    /// Checks whether every reachable, non-failed participant agrees on
    /// the membership; if so, advances to the commit phase.
    fn check_consensus(&mut self) -> Vec<Action> {
        if self.mode != Mode::Gather {
            return Vec::new();
        }
        let live: Vec<ParticipantId> = self
            .memb
            .proc_set
            .iter()
            .copied()
            .filter(|p| !self.memb.fail_set.contains(p))
            .collect();
        if live.is_empty() || !live.contains(&self.pid) {
            return Vec::new();
        }
        if live.len() == 1 && !self.memb.alone_ok {
            // Don't conclude we are alone until a consensus timeout
            // says so; otherwise merges could never begin.
            return Vec::new();
        }
        let my_proc: Vec<ParticipantId> = self.memb.proc_set.iter().copied().collect();
        let my_fail: Vec<ParticipantId> = self.memb.fail_set.iter().copied().collect();
        for &p in &live {
            if p == self.pid {
                continue;
            }
            match self.memb.joins.get(&p) {
                Some(j) if j.proc_set == my_proc && j.fail_set == my_fail => {}
                _ => return Vec::new(),
            }
        }
        // Consensus. The smallest live identifier is the representative.
        // When that is us, the proposed seq additionally skips past any
        // commit token we created and abandoned (see
        // `my_abandoned_high`): an escaped copy of it may still install
        // elsewhere, and one ring id must never name two member sets.
        let mut next_seq = self.memb.max_ring_seq + 1;
        if live[0] == self.pid {
            next_seq = next_seq.max(self.memb.my_abandoned_high + 1);
        }
        let ring_id = RingId::new(live[0], next_seq);
        if live.len() == 1 {
            // We are alone: commit and recover synchronously, without
            // circulating anything.
            let mut ct = CommitToken::new(ring_id, &live);
            self.fill_my_entry(&mut ct);
            self.mode = Mode::Commit;
            self.memb.commit_ring = Some(ring_id);
            let mut actions = vec![
                Action::CancelTimer(TimerKind::Join),
                Action::CancelTimer(TimerKind::ConsensusTimeout),
            ];
            actions.extend(self.handle_commit_filled(ct));
            return actions;
        }
        if live[0] == self.pid {
            let mut ct = CommitToken::new(ring_id, &live);
            self.fill_my_entry(&mut ct);
            ct.hop = 1;
            self.mode = Mode::Commit;
            self.memb.commit_ring = Some(ring_id);
            self.memb.last_commit_hop = 0;
            vec![
                Action::CancelTimer(TimerKind::Join),
                Action::CancelTimer(TimerKind::ConsensusTimeout),
                Action::SendCommit {
                    to: live[1],
                    token: ct,
                },
                Action::SetTimer(TimerKind::CommitTimeout),
            ]
        } else {
            // Wait for the representative's commit token.
            vec![Action::SetTimer(TimerKind::CommitTimeout)]
        }
    }

    fn fill_my_entry(&mut self, ct: &mut CommitToken) {
        let entry = ct
            .memb
            .iter_mut()
            .find(|m| m.pid == self.pid)
            .expect("commit token must contain us");
        entry.old_ring_id = self.ring.id();
        entry.my_aru = self.recvbuf.local_aru();
        entry.high_seq = self.recvbuf.highest_received();
        entry.safe_seq = self.ord.global_aru();
        entry.filled = true;
    }

    // ----- commit -----------------------------------------------------------

    pub(crate) fn handle_commit(&mut self, c: CommitToken) -> Vec<Action> {
        if self.mode == Mode::Operational {
            return Vec::new(); // stale: the ring is already installed
        }
        if !c.memb.iter().any(|m| m.pid == self.pid) {
            return Vec::new(); // not for us
        }
        if self.memb.commit_ring == Some(c.ring_id) && c.hop <= self.memb.last_commit_hop {
            return Vec::new(); // duplicate
        }
        if self.memb.commit_ring != Some(c.ring_id) {
            // A commit for a different attempt than the one we are on:
            // only accept it if it matches exactly the membership we
            // currently believe in, so commit tokens from abandoned
            // attempts die out instead of installing stale rings.
            let live: Vec<ParticipantId> = self
                .memb
                .proc_set
                .iter()
                .copied()
                .filter(|p| !self.memb.fail_set.contains(p))
                .collect();
            if c.member_ids() != live {
                return Vec::new();
            }
            // Even with matching membership, a token whose entry for us
            // was filled against a ring we no longer hold is from an
            // abandoned attempt that predates our current ring; merging
            // it would compute an empty transitional group.
            let stale_self = c
                .memb
                .iter()
                .find(|m| m.pid == self.pid)
                .is_some_and(|m| m.filled && m.old_ring_id != self.ring.id());
            if stale_self {
                return Vec::new();
            }
            // Freshness: the attempt must postdate our current ring.
            // Any attempt that gathered *our* join saw a ring seq at
            // least ours and proposed strictly above it; an equal-or-
            // lower seq means the attempt predates a ring we have since
            // installed (e.g. we concluded alone in between), and
            // accepting it would move us onto a ring its own
            // representative may never install.
            if c.ring_id.ring_seq() <= self.ring.id().ring_seq() {
                return Vec::new();
            }
        }
        self.memb.commit_ring = Some(c.ring_id);
        self.memb.last_commit_hop = c.hop;
        let mut c = c;
        let mut actions = Vec::new();
        if self.mode == Mode::Gather {
            self.mode = Mode::Commit;
            actions.push(Action::CancelTimer(TimerKind::Join));
            actions.push(Action::CancelTimer(TimerKind::ConsensusTimeout));
        }
        let filled = c
            .memb
            .iter()
            .find(|m| m.pid == self.pid)
            .expect("checked above")
            .filled;
        if !filled {
            self.fill_my_entry(&mut c);
        }
        if !c.all_filled() {
            // First rotation: forward.
            c.hop += 1;
            let to = self.commit_successor(&c);
            actions.push(Action::SendCommit { to, token: c });
            actions.push(Action::SetTimer(TimerKind::CommitTimeout));
            return actions;
        }
        actions.extend(self.handle_commit_filled(c));
        actions
    }

    /// Processes a fully-filled commit token: recovery rotations.
    fn handle_commit_filled(&mut self, mut c: CommitToken) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.mode != Mode::Recovery {
            actions.extend(self.enter_recovery(&c));
        }
        // Refresh my progress entry.
        let local = self.recvbuf.local_aru();
        if let Some(entry) = c.memb.iter_mut().find(|m| m.pid == self.pid) {
            entry.my_aru = local;
        }
        if let Some(rec) = self.memb.rec.as_mut() {
            rec.commit = c.clone();
        }
        // Re-answer my group's gaps.
        actions.extend(self.recovery_burst(&c));
        if recovery_complete(&c) {
            actions.extend(self.finalize_membership());
            if self.ring.size() > 1 {
                // Propagate the completed token once around so laggards
                // finalize too (operational members drop it as stale).
                c.hop += 1;
                let to = self.commit_successor(&c);
                actions.push(Action::SendCommit { to, token: c });
            }
        } else if c.memb.len() == 1 {
            // Alone and incomplete cannot happen: our own buffer is our
            // group's high. Defensive: finalize anyway.
            actions.extend(self.finalize_membership());
        } else {
            c.hop += 1;
            let to = self.commit_successor(&c);
            actions.push(Action::SendCommit { to, token: c });
            actions.push(Action::SetTimer(TimerKind::CommitTimeout));
        }
        actions
    }

    fn commit_successor(&self, c: &CommitToken) -> ParticipantId {
        let ids = c.member_ids();
        let idx = ids
            .iter()
            .position(|&p| p == self.pid)
            .expect("we are a member");
        ids[(idx + 1) % ids.len()]
    }

    // ----- recovery ---------------------------------------------------------

    fn enter_recovery(&mut self, c: &CommitToken) -> Vec<Action> {
        let new_ring =
            RingInfo::new(c.ring_id, c.member_ids(), self.pid).expect("commit membership is valid");
        let my_old = self.ring.id();
        let group: Vec<_> = c.memb.iter().filter(|m| m.old_ring_id == my_old).collect();
        let my_group_high = group
            .iter()
            .map(|m| m.high_seq)
            .max()
            .unwrap_or(Seq::ZERO)
            .max(self.recvbuf.highest_received());
        let transitional_members: Vec<ParticipantId> = group.iter().map(|m| m.pid).collect();
        self.memb.rec = Some(RecoveryState {
            new_ring,
            commit: c.clone(),
            my_group_high,
            transitional_members,
        });
        self.mode = Mode::Recovery;
        Vec::new()
    }

    /// Multicasts old-ring messages that continuing members of my group
    /// are still missing (bounded per token visit).
    fn recovery_burst(&mut self, c: &CommitToken) -> Vec<Action> {
        let my_old = self.ring.id();
        let group: Vec<_> = c.memb.iter().filter(|m| m.old_ring_id == my_old).collect();
        if group.len() <= 1 {
            return Vec::new();
        }
        let group_low = group.iter().map(|m| m.my_aru).min().unwrap_or(Seq::ZERO);
        let group_high = self
            .memb
            .rec
            .as_ref()
            .map(|r| r.my_group_high)
            .unwrap_or(Seq::ZERO);
        if group_low >= group_high {
            return Vec::new();
        }
        let limit = self.cfg.recovery_burst_limit as usize;
        let mut actions = Vec::new();
        let mut truncated = false;
        for msg in self.recvbuf.iter() {
            if msg.seq > group_low && msg.seq <= group_high {
                if actions.len() >= limit {
                    truncated = true;
                    break;
                }
                let mut copy = msg.clone();
                copy.after_token = false;
                actions.push(Action::Multicast(copy));
            }
        }
        if truncated {
            // The remainder goes out on a later commit-token visit;
            // surface the truncation instead of dropping it silently.
            self.stats.recovery_burst_truncated += 1;
            let sent = actions.len() as u32;
            self.obs
                .emit(|| crate::observer::ProtoEvent::RecoveryBurstTruncated { sent });
        }
        actions
    }

    /// Regular token for the forming ring received while still in
    /// recovery: global completion is proven; finalize, then process it.
    pub(crate) fn handle_recovery_token(&mut self, tok: Token) -> Vec<Action> {
        let forming = self
            .memb
            .rec
            .as_ref()
            .map(|r| r.new_ring.id() == tok.ring_id)
            .unwrap_or(false);
        if !forming {
            self.stats.tokens_dropped += 1;
            return Vec::new();
        }
        let mut actions = self.finalize_membership();
        actions.extend(self.process_token(tok));
        actions
    }

    /// New-ring data received while still recovering is buffered and
    /// replayed after the configuration change; other foreign data is
    /// dropped.
    pub(crate) fn handle_recovery_data(&mut self, msg: DataMessage) -> Vec<Action> {
        let forming = self
            .memb
            .rec
            .as_ref()
            .map(|r| r.new_ring.id() == msg.ring_id)
            .unwrap_or(false);
        if forming {
            if self.memb.pending_new_ring_data.len() < self.cfg.pending_data_limit as usize {
                self.memb.pending_new_ring_data.push(msg);
            } else {
                self.stats.recovery_pending_dropped += 1;
                let dropped = self.stats.recovery_pending_dropped;
                self.obs
                    .emit(|| crate::observer::ProtoEvent::RecoveryPendingDropped { dropped });
            }
        } else {
            self.stats.foreign_dropped += 1;
        }
        Vec::new()
    }

    /// Delivers the EVS sequence (transitional configuration, remaining
    /// old-ring messages, regular configuration) and installs the new
    /// ring.
    fn finalize_membership(&mut self) -> Vec<Action> {
        let rec = self
            .memb
            .rec
            .take()
            .expect("finalize requires recovery state");
        let mut actions = Vec::new();

        // 1. Transitional configuration: old-ring members that continue.
        let trans_rep = rec
            .transitional_members
            .first()
            .copied()
            .unwrap_or(self.pid);
        actions.push(Action::DeliverConfigChange(ConfigChange {
            kind: ConfigChangeKind::Transitional,
            ring_id: RingId::new(trans_rep, rec.new_ring.id().ring_seq()),
            members: rec.transitional_members.clone(),
        }));

        // 2. Remaining old-ring messages, now with transitional
        // guarantees. Recovery completion makes the buffer contiguous up
        // to the group high at every continuing member.
        for d in self.recvbuf.deliver_all_up_to(rec.my_group_high) {
            self.stats.messages_delivered += 1;
            if d.service.requires_stability() {
                self.stats.safe_delivered += 1;
            }
            self.obs.emit(|| crate::observer::ProtoEvent::Delivered {
                seq: d.seq.as_u64(),
                origin: d.pid.as_u16(),
                safe: d.service.requires_stability(),
            });
            actions.push(Action::Deliver(d));
        }

        // 3. Regular configuration: the new ring.
        actions.push(Action::DeliverConfigChange(ConfigChange {
            kind: ConfigChangeKind::Regular,
            ring_id: rec.new_ring.id(),
            members: rec.new_ring.members().to_vec(),
        }));
        self.stats.config_changes += 1;
        self.obs
            .emit(|| crate::observer::ProtoEvent::ConfigInstalled {
                ring_seq: rec.new_ring.id().ring_seq(),
                members: rec.new_ring.members().len() as u16,
            });

        // Charge a flap penalty to every old-ring member that did not
        // make it into the new ring: each departure it causes costs the
        // whole group a gather→commit→recovery cycle. Only the side
        // retaining a majority of the old ring charges penalties — a
        // minority remnant is usually the flapper itself (or collateral
        // of the same fault), and letting it quarantine the stable side
        // would escalate one marginal link into a quarantine war that
        // permanently partitions live members.
        if self.cfg.flap_damping.enabled {
            let old = self.ring.members();
            let retained = old
                .iter()
                .filter(|p| rec.new_ring.members().contains(p))
                .count();
            if retained * 2 > old.len() {
                let departed: Vec<ParticipantId> = old
                    .iter()
                    .copied()
                    .filter(|p| *p != self.pid && !rec.new_ring.members().contains(p))
                    .collect();
                for p in departed {
                    self.penalize(p);
                }
            }
        }

        // 4. Install. Remember every merged member's previous ring so
        // stale in-flight traffic from any of them cannot re-trigger a
        // gather.
        self.memb.prev_rings.push(self.ring.id());
        for e in &rec.commit.memb {
            if !self.memb.prev_rings.contains(&e.old_ring_id) {
                self.memb.prev_rings.push(e.old_ring_id);
            }
        }
        while self.memb.prev_rings.len() > PREV_RING_MEMORY {
            self.memb.prev_rings.remove(0);
        }
        self.memb.max_ring_seq = self.memb.max_ring_seq.max(rec.new_ring.id().ring_seq());
        self.ring = rec.new_ring;
        self.recvbuf = RecvBuffer::new(Seq::ZERO);
        self.ord = OrderingState::new();
        self.priority
            .reconfigure(self.ring.predecessor(), self.ring.size());
        self.mode = Mode::Operational;
        self.memb.commit_ring = None;
        self.memb.last_commit_hop = 0;
        self.memb.joins.clear();
        actions.push(Action::CancelTimer(TimerKind::Join));
        actions.push(Action::CancelTimer(TimerKind::ConsensusTimeout));
        actions.push(Action::CancelTimer(TimerKind::CommitTimeout));
        actions.push(Action::SetTimer(TimerKind::TokenLoss));

        // 5. Replay buffered new-ring data.
        let pending = std::mem::take(&mut self.memb.pending_new_ring_data);
        for m in pending {
            if self.recvbuf.insert(m) == InsertOutcome::New {
                self.stats.messages_received += 1;
            } else {
                self.stats.duplicates_dropped += 1;
            }
        }
        self.emit_deliveries(self.ord.global_aru(), &mut actions);

        // 6. The representative of the new ring injects the first
        // regular token.
        if self.ring.i_am_representative() {
            let tok = Token::initial(self.ring.id(), Seq::ZERO);
            actions.extend(self.process_token(tok));
        }
        actions
    }

    // ----- membership timers -------------------------------------------------

    pub(crate) fn on_join_timeout(&mut self) -> Vec<Action> {
        if self.mode != Mode::Gather {
            return Vec::new();
        }
        vec![
            Action::MulticastJoin(self.build_join()),
            Action::SetTimer(TimerKind::Join),
        ]
    }

    pub(crate) fn on_consensus_timeout(&mut self) -> Vec<Action> {
        if self.mode != Mode::Gather {
            return Vec::new();
        }
        self.memb.alone_ok = true;
        // Declare every silent participant failed and try again.
        let silent: Vec<ParticipantId> = self
            .memb
            .proc_set
            .iter()
            .copied()
            .filter(|p| {
                *p != self.pid
                    && !self.memb.fail_set.contains(p)
                    && !self.memb.joins.contains_key(p)
            })
            .collect();
        let mut actions = Vec::new();
        if !silent.is_empty() {
            for p in silent {
                self.memb.fail_set.insert(p);
            }
            let my_join = self.build_join();
            self.memb.joins.insert(self.pid, my_join.clone());
            actions.push(Action::MulticastJoin(my_join));
        }
        actions.push(Action::SetTimer(TimerKind::ConsensusTimeout));
        actions.extend(self.check_consensus());
        actions
    }

    pub(crate) fn on_commit_timeout(&mut self) -> Vec<Action> {
        match self.mode {
            Mode::Gather | Mode::Commit | Mode::Recovery => self.start_gather(Vec::new()),
            Mode::Operational => Vec::new(),
        }
    }
}

/// True once every member's refreshed aru covers its own group's
/// highest received sequence number.
fn recovery_complete(c: &CommitToken) -> bool {
    c.memb.iter().all(|e| {
        let group_high = c
            .memb
            .iter()
            .filter(|o| o.old_ring_id == e.old_ring_id)
            .map(|o| o.high_seq)
            .max()
            .unwrap_or(Seq::ZERO);
        e.my_aru >= group_high
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::types::ServiceType;
    use crate::wire::Message;
    use bytes::Bytes;

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    /// A tiny in-order "network" that drives a set of participants,
    /// executing all actions. FIFO delivery; in-flight messages persist
    /// across calls (an idle ring's token keeps circulating, so runs
    /// are budgeted rather than run to quiescence).
    struct Net {
        parts: Vec<Participant>,
        deliveries: Vec<Vec<crate::message::Delivery>>,
        configs: Vec<Vec<ConfigChange>>,
        /// Multicasts reach every reachable participant except the
        /// sender; unicasts reach their target if both ends reachable.
        reachable: Vec<bool>,
        queue: std::collections::VecDeque<(usize, Message)>,
    }

    impl Net {
        fn new(parts: Vec<Participant>) -> Net {
            let n = parts.len();
            Net {
                parts,
                deliveries: vec![Vec::new(); n],
                configs: vec![Vec::new(); n],
                reachable: vec![true; n],
                queue: std::collections::VecDeque::new(),
            }
        }

        fn idx_of(&self, p: ParticipantId) -> Option<usize> {
            self.parts.iter().position(|x| x.pid() == p)
        }

        fn run_actions(&mut self, from: usize, actions: Vec<Action>) {
            for a in actions {
                match a {
                    Action::Multicast(m) => {
                        for i in 0..self.parts.len() {
                            if i != from && self.reachable[i] && self.reachable[from] {
                                self.queue.push_back((i, Message::Data(m.clone())));
                            }
                        }
                    }
                    Action::MulticastJoin(j) => {
                        for i in 0..self.parts.len() {
                            if i != from && self.reachable[i] && self.reachable[from] {
                                self.queue.push_back((i, Message::Join(j.clone())));
                            }
                        }
                    }
                    Action::SendToken { to, token } => {
                        if let Some(i) = self.idx_of(to) {
                            if self.reachable[i] && self.reachable[from] {
                                self.queue.push_back((i, Message::Token(token)));
                            }
                        }
                    }
                    Action::SendCommit { to, token } => {
                        if let Some(i) = self.idx_of(to) {
                            if self.reachable[i] && self.reachable[from] {
                                self.queue.push_back((i, Message::Commit(token)));
                            }
                        }
                    }
                    Action::Deliver(d) => self.deliveries[from].push(d),
                    Action::DeliverConfigChange(c) => self.configs[from].push(c),
                    Action::SetTimer(_) | Action::CancelTimer(_) => {}
                }
            }
        }

        /// Process queued messages, FIFO, up to `budget` handlings.
        fn run(&mut self, budget: usize) {
            let mut steps = 0;
            while let Some((i, msg)) = self.queue.pop_front() {
                if !self.reachable[i] {
                    continue;
                }
                let actions = self.parts[i].handle_message(msg);
                self.run_actions(i, actions);
                steps += 1;
                if steps > budget {
                    break;
                }
            }
        }

        /// Fire a timer at participant `i` and run for `budget` steps.
        fn fire(&mut self, i: usize, kind: TimerKind, budget: usize) {
            let actions = self.parts[i].handle_timer(kind);
            self.run_actions(i, actions);
            self.run(budget);
        }
    }

    fn operational_pair() -> Net {
        // Two singletons merge into a ring of two via gather.
        let cfg = ProtocolConfig::accelerated();
        let p0 = Participant::new_singleton(pid(0), cfg).unwrap();
        let p1 = Participant::new_singleton(pid(1), cfg).unwrap();
        let mut net = Net::new(vec![p0, p1]);
        let a0 = net.parts[0].start_gather(Vec::new());
        net.run_actions(0, a0);
        let a1 = net.parts[1].start_gather(Vec::new());
        net.run_actions(1, a1);
        net.run(10_000);
        net
    }

    #[test]
    fn two_singletons_merge_into_a_ring() {
        let net = operational_pair();
        assert!(net.parts[0].is_operational(), "{:?}", net.parts[0].mode());
        assert!(net.parts[1].is_operational());
        assert_eq!(net.parts[0].ring().members(), &[pid(0), pid(1)]);
        assert_eq!(net.parts[0].ring().id(), net.parts[1].ring().id());
        // Both delivered transitional (singleton) + regular configs.
        for i in 0..2 {
            let kinds: Vec<_> = net.configs[i].iter().map(|c| c.kind).collect();
            assert_eq!(
                kinds,
                vec![ConfigChangeKind::Transitional, ConfigChangeKind::Regular],
                "participant {i}"
            );
            assert_eq!(net.configs[i][1].members, vec![pid(0), pid(1)]);
        }
    }

    #[test]
    fn merged_ring_orders_messages() {
        let mut net = operational_pair();
        net.parts[0]
            .submit(Bytes::from_static(b"hello"), ServiceType::Agreed)
            .unwrap();
        net.parts[1]
            .submit(Bytes::from_static(b"world"), ServiceType::Agreed)
            .unwrap();
        // The representative injected the first token during finalize;
        // the token is still in flight in the queue. Let it circulate.
        net.run(10_000);
        assert_eq!(net.deliveries[0].len(), 2, "{:?}", net.deliveries[0]);
        assert_eq!(net.deliveries[0].len(), net.deliveries[1].len());
        let order0: Vec<_> = net.deliveries[0]
            .iter()
            .map(|d| d.payload.clone())
            .collect();
        let order1: Vec<_> = net.deliveries[1]
            .iter()
            .map(|d| d.payload.clone())
            .collect();
        assert_eq!(order0, order1, "identical total order");
    }

    #[test]
    fn crashed_member_is_excluded_after_consensus_timeout() {
        let cfg = ProtocolConfig::accelerated();
        let members: Vec<_> = (0..3).map(pid).collect();
        let ring_id = RingId::new(pid(0), 1);
        let parts: Vec<_> = members
            .iter()
            .map(|&p| Participant::new(p, cfg, ring_id, members.clone()).unwrap())
            .collect();
        let mut net = Net::new(parts);
        net.reachable[2] = false; // P2 crashes

        // P0 and P1 detect token loss.
        net.fire(0, TimerKind::TokenLoss, 10_000);
        net.fire(1, TimerKind::TokenLoss, 10_000);
        assert_eq!(net.parts[0].mode(), Mode::Gather);
        // Consensus cannot complete while P2 is expected; time out.
        net.fire(0, TimerKind::ConsensusTimeout, 10_000);
        net.fire(1, TimerKind::ConsensusTimeout, 10_000);
        assert!(net.parts[0].is_operational(), "{:?}", net.parts[0].mode());
        assert!(net.parts[1].is_operational(), "{:?}", net.parts[1].mode());
        assert_eq!(net.parts[0].ring().members(), &[pid(0), pid(1)]);
        assert_eq!(net.parts[0].ring().id(), net.parts[1].ring().id());
    }

    #[test]
    fn messages_survive_membership_change_with_transitional_delivery() {
        // P0,P1,P2 operational; P0 multicasts, P1 receives it but P2
        // crashes before stability; after the change P0 and P1 must
        // both deliver it (in the transitional configuration if it was
        // Safe).
        let cfg = ProtocolConfig::accelerated();
        let members: Vec<_> = (0..3).map(pid).collect();
        let ring_id = RingId::new(pid(0), 1);
        let parts: Vec<_> = members
            .iter()
            .map(|&p| Participant::new(p, cfg, ring_id, members.clone()).unwrap())
            .collect();
        let mut net = Net::new(parts);
        net.parts[0]
            .submit(Bytes::from_static(b"safe-msg"), ServiceType::Safe)
            .unwrap();
        // P0 starts; multicast reaches P1 only (P2 "crashes" now).
        net.reachable[2] = false;
        let a = net.parts[0].start();
        net.run_actions(0, a);
        net.run(100); // token goes to P1, dies at P2
        assert!(
            net.deliveries[0].is_empty() && net.deliveries[1].is_empty(),
            "safe message not yet stable"
        );
        // Membership change.
        net.fire(0, TimerKind::TokenLoss, 10_000);
        net.fire(1, TimerKind::TokenLoss, 10_000);
        net.fire(0, TimerKind::ConsensusTimeout, 10_000);
        net.fire(1, TimerKind::ConsensusTimeout, 10_000);
        assert!(net.parts[0].is_operational());
        assert!(net.parts[1].is_operational());
        // Both deliver the safe message (between transitional and
        // regular config changes).
        assert_eq!(net.deliveries[0].len(), 1, "{:?}", net.deliveries[0]);
        assert_eq!(net.deliveries[1].len(), 1);
        assert_eq!(
            net.deliveries[0][0].payload,
            Bytes::from_static(b"safe-msg")
        );
        for i in 0..2 {
            let kinds: Vec<_> = net.configs[i].iter().map(|c| c.kind).collect();
            assert_eq!(
                kinds,
                vec![ConfigChangeKind::Transitional, ConfigChangeKind::Regular]
            );
            assert_eq!(
                net.configs[i][0].members,
                [pid(0), pid(1), pid(2)]
                    .iter()
                    .filter(|p| net.configs[i][0].members.contains(p))
                    .copied()
                    .collect::<Vec<_>>()
            );
            assert_eq!(net.configs[i][1].members, vec![pid(0), pid(1)]);
        }
    }

    #[test]
    fn recovery_retransmits_messages_a_member_missed() {
        // P1 misses P0's message entirely; the membership change (after
        // P2 crashes) must recover it at P1 before the new ring forms.
        let cfg = ProtocolConfig::accelerated();
        let members: Vec<_> = (0..3).map(pid).collect();
        let ring_id = RingId::new(pid(0), 1);
        let parts: Vec<_> = members
            .iter()
            .map(|&p| Participant::new(p, cfg, ring_id, members.clone()).unwrap())
            .collect();
        let mut net = Net::new(parts);
        net.parts[0]
            .submit(Bytes::from_static(b"recover-me"), ServiceType::Agreed)
            .unwrap();
        // P0 handles the initial token, multicasting the message — but
        // we drop everything (P1 and P2 never see data or token).
        let actions = net.parts[0].start();
        // Deliberately do not run the actions: simulate total loss,
        // except P0 delivered its own message.
        let own: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::Deliver(_)))
            .collect();
        assert_eq!(own.len(), 1);
        net.reachable[2] = false;
        net.fire(0, TimerKind::TokenLoss, 10_000);
        net.fire(1, TimerKind::TokenLoss, 10_000);
        net.fire(0, TimerKind::ConsensusTimeout, 10_000);
        net.fire(1, TimerKind::ConsensusTimeout, 10_000);
        assert!(net.parts[0].is_operational(), "{:?}", net.parts[0].mode());
        assert!(net.parts[1].is_operational(), "{:?}", net.parts[1].mode());
        // P1 received the message via recovery retransmission and
        // delivered it before the regular configuration.
        assert_eq!(net.deliveries[1].len(), 1, "{:?}", net.deliveries[1]);
        assert_eq!(
            net.deliveries[1][0].payload,
            Bytes::from_static(b"recover-me")
        );
        // P0 does not deliver it twice.
        assert!(net.deliveries[0].is_empty());
    }

    #[test]
    fn operational_participant_joins_on_foreign_join() {
        let cfg = ProtocolConfig::accelerated();
        let mut p = Participant::new(pid(0), cfg, RingId::new(pid(0), 1), vec![pid(0)]).unwrap();
        assert!(p.is_operational());
        let j = JoinMessage {
            sender: pid(5),
            proc_set: vec![pid(5)],
            fail_set: vec![],
            ring_seq: 0,
        };
        let actions = p.handle_message(Message::Join(j));
        assert_eq!(p.mode(), Mode::Gather);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::MulticastJoin(_))));
    }

    #[test]
    fn stale_join_from_ring_member_is_ignored() {
        let cfg = ProtocolConfig::accelerated();
        let members = vec![pid(0), pid(1)];
        let mut p = Participant::new(pid(0), cfg, RingId::new(pid(0), 5), members.clone()).unwrap();
        let j = JoinMessage {
            sender: pid(1),
            proc_set: vec![pid(0), pid(1)],
            fail_set: vec![],
            ring_seq: 3, // older than our ring's sequence number 5
        };
        assert!(p.handle_message(Message::Join(j)).is_empty());
        assert!(p.is_operational());
    }

    #[test]
    fn join_listing_us_as_failed_is_ignored() {
        let cfg = ProtocolConfig::accelerated();
        let mut p = Participant::new_singleton(pid(0), cfg).unwrap();
        let _ = p.start_gather(Vec::new());
        let j = JoinMessage {
            sender: pid(1),
            proc_set: vec![pid(1)],
            fail_set: vec![pid(0)],
            ring_seq: 0,
        };
        let actions = p.handle_message(Message::Join(j));
        assert!(actions.is_empty());
        assert!(!p.memb.proc_set.contains(&pid(1)));
    }

    #[test]
    fn consensus_timeout_alone_forms_singleton_ring() {
        let cfg = ProtocolConfig::accelerated();
        let members = vec![pid(0), pid(1)];
        let mut p = Participant::new(pid(0), cfg, RingId::new(pid(0), 1), members).unwrap();
        let _ = p.handle_timer(TimerKind::TokenLoss);
        assert_eq!(p.mode(), Mode::Gather);
        // Nobody answers; the consensus timeout fails P1 and we form a
        // singleton ring immediately.
        let actions = p.handle_timer(TimerKind::ConsensusTimeout);
        assert!(p.is_operational(), "{:?}", p.mode());
        assert_eq!(p.ring().members(), &[pid(0)]);
        assert!(p.ring().id().ring_seq() > 1, "new ring sequence advances");
        // A token now circulates (to ourselves).
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendToken { .. })));
    }

    #[test]
    fn commit_timeout_restarts_gather() {
        let cfg = ProtocolConfig::accelerated();
        let members = vec![pid(0), pid(1)];
        let mut p = Participant::new(pid(0), cfg, RingId::new(pid(0), 1), members).unwrap();
        let _ = p.handle_timer(TimerKind::TokenLoss);
        let gathers_before = p.stats().gathers_started;
        let actions = p.handle_timer(TimerKind::CommitTimeout);
        assert_eq!(p.mode(), Mode::Gather);
        assert_eq!(p.stats().gathers_started, gathers_before + 1);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::MulticastJoin(_))));
    }

    #[test]
    fn duplicate_commit_token_is_dropped() {
        let cfg = ProtocolConfig::accelerated();
        let members = vec![pid(0), pid(1)];
        let mut p = Participant::new(pid(1), cfg, RingId::new(pid(0), 1), members.clone()).unwrap();
        let _ = p.handle_timer(TimerKind::TokenLoss); // gather
        let new_ring = RingId::new(pid(0), 2);
        let mut ct = CommitToken::new(new_ring, &members);
        ct.memb[0].old_ring_id = RingId::new(pid(0), 1);
        ct.memb[0].filled = true;
        ct.hop = 1;
        let first = p.handle_message(Message::Commit(ct.clone()));
        assert!(
            first.iter().any(|a| matches!(a, Action::SendCommit { .. })),
            "{first:?}"
        );
        let second = p.handle_message(Message::Commit(ct));
        assert!(second.is_empty(), "duplicate hop dropped: {second:?}");
    }

    #[test]
    fn partitioned_rings_merge_when_traffic_flows_again() {
        // Two established rings ({0,1} and {2,3}) that could not hear
        // each other merge once one side's multicast reaches the other.
        let cfg = ProtocolConfig::accelerated();
        let ring_a: Vec<ParticipantId> = vec![pid(0), pid(1)];
        let ring_b: Vec<ParticipantId> = vec![pid(2), pid(3)];
        let mut parts = Vec::new();
        for &p in &ring_a {
            parts.push(Participant::new(p, cfg, RingId::new(pid(0), 3), ring_a.clone()).unwrap());
        }
        for &p in &ring_b {
            parts.push(Participant::new(p, cfg, RingId::new(pid(2), 5), ring_b.clone()).unwrap());
        }
        let mut net = Net::new(parts);
        // Bring both rings up while "partitioned" — run each side's
        // token separately by making the other side unreachable.
        net.reachable = vec![true, true, false, false];
        let a = net.parts[0].start();
        net.run_actions(0, a);
        net.run(50);
        net.reachable = vec![false, false, true, true];
        let a = net.parts[2].start();
        net.run_actions(2, a);
        net.run(50);
        // Heal: everyone reachable. P0 multicasts a message; its data
        // reaches ring B, which treats it as a merge trigger.
        net.reachable = vec![true, true, true, true];
        net.parts[0]
            .submit(Bytes::from_static(b"cross"), ServiceType::Agreed)
            .unwrap();
        // Put the token back into circulation on ring A (it was parked
        // when the queue budget ran dry during the partitioned phase).
        net.fire(0, TimerKind::TokenRetransmit, 20_000);
        net.fire(1, TimerKind::TokenRetransmit, 20_000);
        // Drive timers until everyone lands in one 4-member ring.
        // Memberships may cascade (pairs can reach consensus before the
        // other side's joins arrive, exactly as in Totem), so fire the
        // full timer set for several rounds.
        for _ in 0..12 {
            if (0..4).all(|i| net.parts[i].is_operational() && net.parts[i].ring().size() == 4) {
                break;
            }
            for i in 0..4 {
                net.fire(i, TimerKind::Join, 20_000);
                net.fire(i, TimerKind::CommitTimeout, 20_000);
                net.fire(i, TimerKind::ConsensusTimeout, 20_000);
            }
            net.run(20_000);
        }
        for i in 0..4 {
            assert!(
                net.parts[i].is_operational() && net.parts[i].ring().size() == 4,
                "P{i}: {:?} ring {:?}",
                net.parts[i].mode(),
                net.parts[i].ring().members()
            );
        }
        assert_eq!(net.parts[0].ring().id(), net.parts[3].ring().id());
    }

    #[test]
    fn newcomer_joins_established_ring() {
        // A fresh singleton (P9) announces itself while a 3-ring is
        // operational; the ring members hear its join, gather, and a
        // 4-member ring forms — without losing any ordered messages.
        let cfg = ProtocolConfig::accelerated();
        let members: Vec<ParticipantId> = (0..3).map(pid).collect();
        let ring_id = RingId::new(pid(0), 1);
        let mut parts: Vec<Participant> = members
            .iter()
            .map(|&p| Participant::new(p, cfg, ring_id, members.clone()).unwrap())
            .collect();
        parts.push(Participant::new_singleton(pid(9), cfg).unwrap());
        let mut net = Net::new(parts);
        // Ring runs and orders one message first.
        net.parts[0]
            .submit(Bytes::from_static(b"before"), ServiceType::Agreed)
            .unwrap();
        let a = net.parts[0].start();
        net.run_actions(0, a);
        net.run(200);
        assert!(net.deliveries[1].len() == 1 || net.deliveries[2].len() == 1);
        // The newcomer starts gathering; its join reaches the ring.
        let a = net.parts[3].start_gather(Vec::new());
        net.run_actions(3, a);
        net.run(50_000);
        for _ in 0..8 {
            if (0..4).all(|i| net.parts[i].is_operational() && net.parts[i].ring().size() == 4) {
                break;
            }
            for i in 0..4 {
                net.fire(i, TimerKind::Join, 50_000);
                net.fire(i, TimerKind::CommitTimeout, 50_000);
                net.fire(i, TimerKind::ConsensusTimeout, 50_000);
            }
            net.run(50_000);
        }
        for i in 0..4 {
            assert!(
                net.parts[i].is_operational() && net.parts[i].ring().size() == 4,
                "P{i}: {:?} {:?}",
                net.parts[i].mode(),
                net.parts[i].ring().members()
            );
        }
        // The enlarged ring still orders messages.
        net.parts[3]
            .submit(Bytes::from_static(b"after"), ServiceType::Agreed)
            .unwrap();
        net.fire(0, TimerKind::TokenRetransmit, 50_000);
        net.fire(1, TimerKind::TokenRetransmit, 50_000);
        net.fire(2, TimerKind::TokenRetransmit, 50_000);
        net.fire(3, TimerKind::TokenRetransmit, 50_000);
        net.run(50_000);
        let delivered_after = net
            .deliveries
            .iter()
            .filter(|log| {
                log.iter()
                    .any(|d| d.payload == Bytes::from_static(b"after"))
            })
            .count();
        assert!(
            delivered_after >= 3,
            "newcomer's message delivered ring-wide"
        );
    }

    #[test]
    fn three_way_merge_forms_single_ring() {
        let cfg = ProtocolConfig::accelerated();
        let parts: Vec<_> = (0..3)
            .map(|i| Participant::new_singleton(pid(i), cfg).unwrap())
            .collect();
        let mut net = Net::new(parts);
        for i in 0..3 {
            let a = net.parts[i].start_gather(Vec::new());
            net.run_actions(i, a);
        }
        net.run(100_000);
        for i in 0..3 {
            assert!(
                net.parts[i].is_operational(),
                "P{i}: {:?}",
                net.parts[i].mode()
            );
            assert_eq!(net.parts[i].ring().members(), &[pid(0), pid(1), pid(2)]);
        }
        assert_eq!(net.parts[0].ring().id(), net.parts[1].ring().id());
        assert_eq!(net.parts[1].ring().id(), net.parts[2].ring().id());
    }

    // ----- adaptive timeouts / flap damping ------------------------------

    fn damped_cfg() -> ProtocolConfig {
        ProtocolConfig::accelerated().with_flap_damping(crate::config::FlapDampingConfig {
            enabled: true,
            penalty_per_flap: 1000,
            suppress_threshold: 2500,
            reuse_threshold: 1000,
            half_life_rounds: 4,
            max_penalty: 8000,
        })
    }

    #[test]
    fn set_timeouts_rejects_invalid_policy() {
        let cfg = ProtocolConfig::accelerated();
        let mut p = Participant::new_singleton(pid(0), cfg).unwrap();
        let good = *p.timeouts();
        let mut bad = good;
        bad.token_retransmit = bad.token_loss; // inverted relation
        assert!(p.set_timeouts(bad).is_err());
        assert_eq!(*p.timeouts(), good, "previous policy stays in force");
        let mut zero = good;
        zero.token_loss = 0;
        assert!(p.set_timeouts(zero).is_err());
        assert!(p.set_timeouts(good).is_ok());
    }

    #[test]
    fn adapt_timeouts_counts_only_real_changes() {
        let cfg = ProtocolConfig::accelerated();
        let mut p = Participant::new_singleton(pid(0), cfg).unwrap();
        let same = *p.timeouts();
        assert_eq!(p.adapt_timeouts(same), Ok(false));
        assert_eq!(p.stats().timeouts_adapted, 0);
        let mut changed = same;
        changed.token_loss *= 2;
        assert_eq!(p.adapt_timeouts(changed), Ok(true));
        assert_eq!(p.stats().timeouts_adapted, 1);
        assert_eq!(p.timeouts().token_loss, changed.token_loss);
    }

    #[test]
    fn repeated_flaps_quarantine_a_member() {
        let mut p = Participant::new_singleton(pid(0), damped_cfg()).unwrap();
        p.penalize(pid(7));
        p.penalize(pid(7));
        assert!(!p.is_quarantined(pid(7)), "two flaps stay below threshold");
        p.penalize(pid(7));
        assert!(p.is_quarantined(pid(7)));
        assert_eq!(p.quarantined_count(), 1);
        assert_eq!(p.stats().members_quarantined, 1);
        // Score saturates at max_penalty.
        for _ in 0..20 {
            p.penalize(pid(7));
        }
        assert_eq!(p.flap_penalty(pid(7)), 8000);
        assert_eq!(p.stats().members_quarantined, 1, "quarantined only once");
    }

    #[test]
    fn quarantined_join_is_suppressed() {
        let mut p = Participant::new_singleton(pid(0), damped_cfg()).unwrap();
        for _ in 0..3 {
            p.penalize(pid(7));
        }
        assert!(p.is_quarantined(pid(7)));
        let j = JoinMessage {
            sender: pid(7),
            proc_set: vec![pid(7)],
            fail_set: vec![],
            ring_seq: 0,
        };
        let actions = p.handle_message(Message::Join(j));
        assert!(actions.is_empty());
        assert!(p.is_operational(), "no gather triggered by the flapper");
        assert_eq!(p.stats().joins_suppressed, 1);
    }

    #[test]
    fn penalty_decay_reinstates_member() {
        let mut p = Participant::new_singleton(pid(0), damped_cfg()).unwrap();
        for _ in 0..3 {
            p.penalize(pid(7));
        }
        assert!(p.is_quarantined(pid(7)));
        // 3000 → 1500 (still quarantined) → 750 (reinstated, below the
        // reuse threshold of 1000). half_life_rounds = 4.
        for _ in 0..4 {
            p.decay_penalties();
        }
        assert!(p.is_quarantined(pid(7)), "1500 >= reuse threshold");
        for _ in 0..4 {
            p.decay_penalties();
        }
        assert!(!p.is_quarantined(pid(7)));
        assert_eq!(p.stats().members_reinstated, 1);
        // Score keeps decaying to zero and the entry is dropped.
        for _ in 0..40 {
            p.decay_penalties();
        }
        assert_eq!(p.flap_penalty(pid(7)), 0);
        assert!(p.memb.penalties.is_empty());
    }

    #[test]
    fn quarantine_excludes_flapper_from_gather() {
        let mut p = Participant::new_singleton(pid(0), damped_cfg()).unwrap();
        for _ in 0..3 {
            p.penalize(pid(7));
        }
        let _ = p.start_gather(Vec::new());
        // A join from a third party advertising the flapper still lands
        // the flapper in our fail set, not our live set.
        let j = JoinMessage {
            sender: pid(1),
            proc_set: vec![pid(1), pid(7)],
            fail_set: vec![],
            ring_seq: 0,
        };
        let _ = p.handle_message(Message::Join(j));
        assert!(p.memb.fail_set.contains(&pid(7)));
        let my_join = p.memb.joins.get(&pid(0)).unwrap();
        assert!(my_join.fail_set.contains(&pid(7)), "damping is gossiped");
    }

    #[test]
    fn damping_disabled_never_quarantines() {
        let cfg = ProtocolConfig::accelerated();
        let mut p = Participant::new_singleton(pid(0), cfg).unwrap();
        p.penalize(pid(7));
        assert!(!p.is_quarantined(pid(7)), "disabled damping never bites");
    }

    #[test]
    fn abandoned_commit_attempt_burns_its_ring_seq() {
        // P0 reaches consensus with P1 and sends a commit token for
        // ring seq 2, but the token is lost and P0 eventually concludes
        // it is alone. The singleton it installs must NOT reuse seq 2:
        // the escaped commit token may still install (P0, 2) = [P0, P1]
        // at P1, and one ring id must never name two member sets.
        let cfg = ProtocolConfig::accelerated();
        let ring = RingId::new(pid(0), 1);
        let members = vec![pid(0), pid(1)];
        let p0 = Participant::new(pid(0), cfg, ring, members.clone()).unwrap();
        let p1 = Participant::new(pid(1), cfg, ring, members).unwrap();
        let mut net = Net::new(vec![p0, p1]);
        // P1 suspects token loss and gathers; its join pulls P0 into
        // gather, and P0 (the representative) reaches consensus and
        // emits the commit token for (P0, 2).
        let a1 = net.parts[1].handle_timer(TimerKind::TokenLoss);
        net.run_actions(1, a1);
        while net.parts[0].mode() != Mode::Commit {
            let (i, msg) = net.queue.pop_front().expect("episode stalled");
            let actions = net.parts[i].handle_message(msg);
            net.run_actions(i, actions);
        }
        // ... but every message from here on is lost.
        net.queue.clear();
        let a0 = net.parts[0].handle_timer(TimerKind::CommitTimeout);
        net.run_actions(0, a0);
        net.queue.clear();
        let a0 = net.parts[0].handle_timer(TimerKind::ConsensusTimeout);
        net.run_actions(0, a0);
        net.queue.clear();
        let installed = net.parts[0].ring().id();
        assert_eq!(net.parts[0].ring().members(), &[pid(0)]);
        assert!(
            installed.ring_seq() >= 3,
            "singleton reused the abandoned attempt's ring seq: {installed:?}"
        );
    }

    #[test]
    fn stale_commit_at_or_below_current_ring_seq_is_rejected() {
        // P1 times out of the pair ring and installs singleton (P1, 2),
        // then starts merging with P0. A leftover commit token from
        // P0's abandoned attempt — ring (P0, 2), members [P0, P1],
        // matching P1's current membership belief, P1's entry unfilled —
        // must be rejected on freshness: its ring seq does not exceed
        // P1's current seq, so its representative may never install it.
        let cfg = ProtocolConfig::accelerated();
        let ring = RingId::new(pid(0), 1);
        let members = vec![pid(0), pid(1)];
        let mut p1 = Participant::new(pid(1), cfg, ring, members.clone()).unwrap();
        let _ = p1.handle_timer(TimerKind::TokenLoss);
        let _ = p1.handle_timer(TimerKind::ConsensusTimeout);
        assert_eq!(p1.mode(), Mode::Operational);
        let singleton = p1.ring().id();
        assert_eq!(singleton, RingId::new(pid(1), 2));
        // P0's join restarts gather with belief {P0, P1}.
        let j = JoinMessage {
            sender: pid(0),
            proc_set: vec![pid(0), pid(1)],
            fail_set: vec![],
            ring_seq: 1,
        };
        let _ = p1.handle_message(Message::Join(j));
        assert_eq!(p1.mode(), Mode::Gather);
        let mut stale = CommitToken::new(RingId::new(pid(0), 2), &members);
        stale.memb[0].old_ring_id = ring;
        stale.memb[0].filled = true;
        stale.hop = 1;
        let actions = p1.handle_message(Message::Commit(stale));
        assert!(actions.is_empty(), "stale commit accepted: {actions:?}");
        assert_eq!(p1.mode(), Mode::Gather, "must keep gathering");
        assert_eq!(p1.ring().id(), singleton);
    }

    #[test]
    fn recovery_pending_drops_are_counted() {
        let cfg = ProtocolConfig::accelerated().with_pending_data_limit(2);
        let members = vec![pid(0), pid(1)];
        let mut p = Participant::new(pid(1), cfg, RingId::new(pid(0), 1), members.clone()).unwrap();
        let _ = p.handle_timer(TimerKind::TokenLoss); // gather
        let new_ring = RingId::new(pid(0), 2);
        let mut ct = CommitToken::new(new_ring, &members);
        for e in ct.memb.iter_mut() {
            e.old_ring_id = RingId::new(pid(0), 1);
            e.filled = true;
            if e.pid == pid(0) {
                // P0 holds messages we have not seen: recovery stays
                // open while new-ring data arrives.
                e.high_seq = Seq::new(10);
            }
        }
        ct.hop = 1;
        let _ = p.handle_message(Message::Commit(ct));
        assert_eq!(p.mode(), Mode::Recovery);
        for seq in 1..=4u64 {
            let msg = DataMessage {
                ring_id: new_ring,
                pid: pid(0),
                seq: Seq::new(seq),
                round: crate::types::Round::new(1),
                service: ServiceType::Agreed,
                after_token: false,
                payload: Bytes::from_static(b"x"),
            };
            let _ = p.handle_recovery_data(msg);
        }
        assert_eq!(p.memb.pending_new_ring_data.len(), 2);
        assert_eq!(p.stats().recovery_pending_dropped, 2);
    }
}
