//! Runtime invariant checkers for Extended Virtual Synchrony and the
//! token retransmission rule.
//!
//! These checkers observe a run from the outside — deliveries,
//! configuration changes, submissions, and tokens on the wire — and
//! accumulate violations instead of panicking, so a harness can drive a
//! whole chaotic run to completion and then report every broken
//! invariant at once. They are used by the nemesis runner in `ar-net`,
//! by the lossy-network property tests, and are usable against the
//! simulator's outputs as well.

use std::collections::HashMap;

use crate::actions::{Action, ConfigChange, ConfigChangeKind};
use crate::message::{Delivery, Token};
use crate::types::{ParticipantId, RingId, Seq};

/// Checks Extended Virtual Synchrony delivery invariants across a set
/// of observed processes.
///
/// Feed it every delivery ([`EvsChecker::on_delivery`]), every
/// configuration change ([`EvsChecker::on_config`]), and every local
/// submission ([`EvsChecker::on_submit`]); then call
/// [`EvsChecker::check`] (plus [`EvsChecker::check_self_delivery`] for
/// liveness) at the end of the run.
///
/// Invariants checked:
///
/// 1. **Agreed order / prefix consistency** — within a ring, every
///    process delivers strictly increasing sequence numbers, and for
///    any two processes one ring-restricted delivery sequence is a
///    prefix of the other.
/// 2. **Agreement on content** — any two deliveries of `(ring, seq)`
///    carry the same payload and sender.
/// 3. **Same-view delivery** — a delivery's ring is the configuration
///    the process currently has installed (initial or the most recent
///    regular/transitional configuration change).
/// 4. **Transitional-configuration rules** — a transitional
///    configuration's members are a subset of the preceding regular
///    configuration's members, contain the local process, and a
///    transitional configuration never directly follows another
///    transitional configuration.
/// 5. **Self-delivery** (on demand) — every payload a surviving
///    process submitted appears in its own delivery log.
/// 6. **Transitional-configuration agreement** — any two processes
///    that deliver a transitional configuration with the same ring id
///    deliver it with the same member list (the processes continuing
///    together agree on who is continuing).
#[derive(Debug, Clone)]
pub struct EvsChecker {
    n: usize,
    /// Per-process ring-restricted delivery sequences.
    per_proc: Vec<ProcState>,
    /// Payload/sender agreed at each (ring, seq) and the first process
    /// that delivered it.
    content: HashMap<(RingId, u64), (Vec<u8>, ParticipantId, usize)>,
    /// Members of each transitional configuration and the first process
    /// that delivered it (for cross-process agreement).
    trans_views: HashMap<RingId, (Vec<ParticipantId>, usize)>,
    violations: Vec<String>,
}

#[derive(Debug, Default, Clone)]
struct ProcState {
    /// Deliveries per ring, in observation order.
    per_ring: HashMap<RingId, Vec<u64>>,
    /// Rings in the order this process first delivered in them.
    ring_order: Vec<RingId>,
    /// The currently installed configuration, if any change was seen.
    installed: Option<ConfigChange>,
    /// Ring installed before the current transitional configuration:
    /// its messages may still surface while the transitional view is
    /// up (EVS delivers leftover old-ring messages there).
    prev_ring: Option<RingId>,
    /// Kind of the last configuration change (for alternation checks).
    last_kind: Option<ConfigChangeKind>,
    /// Members of the last *regular* configuration.
    last_regular: Option<Vec<ParticipantId>>,
    /// Payloads submitted locally (for self-delivery).
    submitted: Vec<Vec<u8>>,
    /// Payloads delivered locally.
    delivered_payloads: Vec<Vec<u8>>,
}

impl EvsChecker {
    /// A checker over processes `0..n`, where process `i` is
    /// [`ParticipantId::new`]`(i)` and starts in a common initial ring.
    pub fn new(n: usize) -> EvsChecker {
        EvsChecker {
            n,
            per_proc: (0..n).map(|_| ProcState::default()).collect(),
            content: HashMap::new(),
            trans_views: HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Seeds process `i`'s installed view with the configuration it was
    /// bootstrapped into, *without* counting it as an observed
    /// configuration-change event.
    ///
    /// Statically bootstrapped rings never deliver a configuration
    /// change for their initial view, so without seeding the checker
    /// cannot judge same-view delivery before the first membership
    /// episode, and the first transitional configuration has no
    /// preceding regular view to be a subset of (and no `prev_ring` for
    /// the old-ring leftover exception). Harnesses that build
    /// participants via [`Participant::new`](crate::Participant::new)
    /// should seed each process with the ring it was constructed on.
    pub fn on_initial_config(&mut self, i: usize, ring_id: RingId, members: &[ParticipantId]) {
        let st = &mut self.per_proc[i];
        st.installed = Some(ConfigChange {
            kind: ConfigChangeKind::Regular,
            ring_id,
            members: members.to_vec(),
        });
        st.last_kind = Some(ConfigChangeKind::Regular);
        st.last_regular = Some(members.to_vec());
        st.prev_ring = None;
    }

    /// Records that process `i` submitted `payload` for ordering.
    pub fn on_submit(&mut self, i: usize, payload: &[u8]) {
        self.per_proc[i].submitted.push(payload.to_vec());
    }

    /// Records that process `i` restarted as a fresh incarnation: its
    /// installed-view history is reset (EVS treats a recovered process
    /// as a new process), while its delivery logs are kept for the
    /// cross-process safety checks.
    pub fn on_restart(&mut self, i: usize) {
        let st = &mut self.per_proc[i];
        st.installed = None;
        st.last_kind = None;
        st.last_regular = None;
        st.prev_ring = None;
    }

    /// Records a delivery observed at process `i`.
    pub fn on_delivery(&mut self, i: usize, d: &Delivery) {
        let seq = d.seq.as_u64();
        // 3. Same-view: the delivery's ring must be the installed one.
        // Exception: while a transitional configuration is installed,
        // messages ordered in the ring it replaced may still surface
        // (EVS delivers old-ring leftovers with transitional
        // guarantees, and they keep their original ring id).
        if let Some(installed) = &self.per_proc[i].installed {
            let old_in_transitional = installed.kind == ConfigChangeKind::Transitional
                && self.per_proc[i].prev_ring == Some(d.ring_id);
            if installed.ring_id != d.ring_id && !old_in_transitional {
                self.violations.push(format!(
                    "P{i}: delivery at seq {seq} in {:?} but installed view is {:?}",
                    d.ring_id, installed.ring_id
                ));
            }
        }
        // 2. Content agreement.
        match self.content.entry((d.ring_id, seq)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let (payload, pid, first) = e.get();
                if payload != &d.payload[..] || *pid != d.pid {
                    self.violations.push(format!(
                        "P{i}: content mismatch with P{first} at ({:?}, {seq})",
                        d.ring_id
                    ));
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((d.payload.to_vec(), d.pid, i));
            }
        }
        // 1. Strictly increasing within the ring.
        let st = &mut self.per_proc[i];
        let ring_log = st.per_ring.entry(d.ring_id).or_insert_with(|| {
            st.ring_order.push(d.ring_id);
            Vec::new()
        });
        if let Some(&prev) = ring_log.last() {
            if seq <= prev {
                self.violations.push(format!(
                    "P{i}: non-increasing seq {seq} after {prev} in {:?}",
                    d.ring_id
                ));
            }
        }
        ring_log.push(seq);
        st.delivered_payloads.push(d.payload.to_vec());
    }

    /// Records a configuration change observed at process `i`.
    pub fn on_config(&mut self, i: usize, c: &ConfigChange) {
        let me = ParticipantId::new(i as u16);
        let st = &mut self.per_proc[i];
        match c.kind {
            ConfigChangeKind::Transitional => {
                // 4. Subset of the preceding regular configuration.
                if let Some(reg) = &st.last_regular {
                    if let Some(p) = c.members.iter().find(|p| !reg.contains(p)) {
                        self.violations.push(format!(
                            "P{i}: transitional config {:?} contains {p} absent \
                             from the preceding regular configuration",
                            c.ring_id
                        ));
                    }
                }
                if !c.members.contains(&me) {
                    self.violations.push(format!(
                        "P{i}: transitional config {:?} does not contain the \
                         local process",
                        c.ring_id
                    ));
                }
                if st.last_kind == Some(ConfigChangeKind::Transitional) {
                    self.violations.push(format!(
                        "P{i}: two transitional configurations in a row at {:?}",
                        c.ring_id
                    ));
                }
                // 6. Cross-process agreement on who continues together.
                match self.trans_views.get(&c.ring_id) {
                    Some((members, first)) if members != &c.members => {
                        self.violations.push(format!(
                            "P{i}: transitional config {:?} members {:?} disagree \
                             with P{first}'s {:?}",
                            c.ring_id, c.members, members
                        ));
                    }
                    Some(_) => {}
                    None => {
                        self.trans_views.insert(c.ring_id, (c.members.clone(), i));
                    }
                }
            }
            ConfigChangeKind::Regular => {
                if !c.members.contains(&me) {
                    self.violations.push(format!(
                        "P{i}: regular config {:?} does not contain the local \
                         process",
                        c.ring_id
                    ));
                }
                st.last_regular = Some(c.members.clone());
            }
        }
        st.last_kind = Some(c.kind);
        st.prev_ring = match c.kind {
            // Old-ring leftovers may surface during the transitional
            // view; once the regular view installs, they may not.
            ConfigChangeKind::Transitional => st.installed.as_ref().map(|p| p.ring_id),
            ConfigChangeKind::Regular => None,
        };
        st.installed = Some(c.clone());
    }

    /// Checks cross-process prefix consistency and returns every
    /// violation accumulated so far.
    ///
    /// # Errors
    ///
    /// Returns the list of violation descriptions if any invariant was
    /// broken.
    pub fn check(&mut self) -> Result<(), Vec<String>> {
        // 1b. Prefix consistency per ring across process pairs.
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                let rings: Vec<RingId> = self.per_proc[a]
                    .ring_order
                    .iter()
                    .filter(|r| self.per_proc[b].per_ring.contains_key(r))
                    .copied()
                    .collect();
                for ring in rings {
                    let la = &self.per_proc[a].per_ring[&ring];
                    let lb = &self.per_proc[b].per_ring[&ring];
                    let common = la.len().min(lb.len());
                    if la[..common] != lb[..common] {
                        self.violations.push(format!(
                            "P{a}/P{b}: divergent delivery prefixes in {ring:?}"
                        ));
                    }
                }
            }
        }
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.violations))
        }
    }

    /// Checks that each process in `survivors` delivered everything it
    /// submitted.
    ///
    /// # Errors
    ///
    /// Returns one description per missing self-delivery.
    pub fn check_self_delivery(&self, survivors: &[usize]) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for &i in survivors {
            let st = &self.per_proc[i];
            for payload in &st.submitted {
                if !st.delivered_payloads.iter().any(|p| p == payload) {
                    violations.push(format!(
                        "P{i}: submitted payload {:?} never self-delivered",
                        String::from_utf8_lossy(payload)
                    ));
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Violations accumulated so far (without consuming them).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// Checks the durability contract of crash-safe Safe delivery against
/// logs recovered from disk after the run.
///
/// With a durable log gating Safe delivery, "Safe" strengthens from
/// *replicated everywhere* to *replicated and locally durable*: by the
/// time a Safe message reaches the application, its record must already
/// be on disk. This checker verifies that contract from the outside —
/// feed it every Safe delivery an application observed
/// ([`DurabilityChecker::on_safe_delivered`]) and, after the run (and
/// any number of `kill -9`s), each surviving process's recovered log
/// contents in log order ([`DurabilityChecker::on_log_record`]); then
/// call [`DurabilityChecker::check`].
///
/// Invariants checked:
///
/// 1. **No lost Safe delivery** — every Safe message surfaced at a
///    process appears in that process's recovered log (same ring, seq,
///    and payload), in the same relative order it was surfaced.
/// 2. **Log order** — within a log, ring-restricted sequence numbers
///    are strictly increasing (a torn-tail repair never reorders or
///    resurrects records).
/// 3. **Cross-log agreement** — any two logs agree on the payload and
///    sender stored at `(ring, seq)`.
#[derive(Debug, Default, Clone)]
pub struct DurabilityChecker {
    /// Safe deliveries surfaced to the application, per process.
    surfaced: HashMap<usize, Vec<Delivery>>,
    /// Recovered log contents, per process, in log order.
    logs: HashMap<usize, Vec<Delivery>>,
    violations: Vec<String>,
}

impl DurabilityChecker {
    /// A checker with no observations.
    pub fn new() -> DurabilityChecker {
        DurabilityChecker::default()
    }

    /// Records that process `i` surfaced a Safe delivery to its
    /// application. Deliveries with other service levels are ignored,
    /// so the full delivery stream can be fed unfiltered.
    pub fn on_safe_delivered(&mut self, i: usize, d: &Delivery) {
        if d.service == crate::types::ServiceType::Safe {
            self.surfaced.entry(i).or_default().push(d.clone());
        }
    }

    /// Records one delivery record recovered from process `i`'s log,
    /// in log order. Call once per record, scanning the log front to
    /// back (e.g. from `ar-log`'s recovery output).
    pub fn on_log_record(&mut self, i: usize, d: &Delivery) {
        self.logs.entry(i).or_default().push(d.clone());
    }

    /// Runs all checks and returns every violation found.
    ///
    /// Processes with surfaced Safe deliveries but no recovered log are
    /// skipped (non-survivors whose disk was lost are outside the
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns the list of violation descriptions if the durability
    /// contract was broken.
    pub fn check(&mut self) -> Result<(), Vec<String>> {
        // 2. Per-log ring-restricted order.
        for (&i, log) in &self.logs {
            let mut last: HashMap<RingId, u64> = HashMap::new();
            for d in log {
                let seq = d.seq.as_u64();
                if let Some(&prev) = last.get(&d.ring_id) {
                    if seq <= prev {
                        self.violations.push(format!(
                            "P{i} log: non-increasing seq {seq} after {prev} in {:?}",
                            d.ring_id
                        ));
                    }
                }
                last.insert(d.ring_id, seq);
            }
        }
        // 3. Cross-log content agreement.
        let mut content: HashMap<(RingId, u64), (&Delivery, usize)> = HashMap::new();
        for (&i, log) in &self.logs {
            for d in log {
                match content.entry((d.ring_id, d.seq.as_u64())) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (other, first) = e.get();
                        if other.payload != d.payload || other.pid != d.pid {
                            self.violations.push(format!(
                                "P{i} log disagrees with P{first} log at ({:?}, {})",
                                d.ring_id,
                                d.seq.as_u64()
                            ));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((d, i));
                    }
                }
            }
        }
        // 1. Surfaced Safe deliveries present and ordered in the
        // surviving local log (ordered-subsequence scan).
        for (&i, surfaced) in &self.surfaced {
            let Some(log) = self.logs.get(&i) else {
                continue;
            };
            let mut pos = 0;
            for d in surfaced {
                let found = log[pos..].iter().position(|r| {
                    r.ring_id == d.ring_id && r.seq == d.seq && r.payload == d.payload
                });
                match found {
                    Some(off) => pos += off + 1,
                    None => self.violations.push(format!(
                        "P{i}: Safe-delivered ({:?}, {}) missing from (or out of \
                         order in) the recovered log",
                        d.ring_id,
                        d.seq.as_u64()
                    )),
                }
            }
        }
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.violations))
        }
    }

    /// Violations accumulated so far (without consuming them).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// Checks the paper's retransmission-request bound on tokens in flight:
/// a token's `rtr` entries never exceed the `seq` of the previous token
/// on the same ring.
///
/// Messages ordered in the current round may still be travelling behind
/// the token (the Accelerated Ring innovation), so requesting them
/// would trigger useless retransmissions; the protocol therefore bounds
/// requests by the previous round's token `seq`. Feed every token
/// observed on the wire to [`TokenRuleMonitor::on_token`].
#[derive(Debug, Default, Clone)]
pub struct TokenRuleMonitor {
    /// Last (round, seq) seen per ring.
    last: HashMap<RingId, (u64, Seq)>,
    violations: Vec<String>,
    tokens_seen: u64,
}

impl TokenRuleMonitor {
    /// A monitor with no observed tokens.
    pub fn new() -> TokenRuleMonitor {
        TokenRuleMonitor::default()
    }

    /// Observes one token on the wire.
    pub fn on_token(&mut self, tok: &Token) {
        self.tokens_seen += 1;
        let round = tok.round.as_u64();
        match self.last.get(&tok.ring_id) {
            // Only judge strictly newer tokens: a retransmitted token
            // (same or older round) repeats already-checked state.
            Some(&(prev_round, prev_seq)) if round > prev_round => {
                if let Some(&bad) = tok.rtr.iter().find(|&&s| s > prev_seq) {
                    self.violations.push(format!(
                        "token round {round} on {:?} requests retransmission \
                         of {bad} beyond previous token seq {prev_seq}",
                        tok.ring_id
                    ));
                }
                self.last.insert(tok.ring_id, (round, tok.seq));
            }
            Some(_) => {}
            None => {
                self.last.insert(tok.ring_id, (round, tok.seq));
            }
        }
    }

    /// Total tokens observed.
    pub fn tokens_seen(&self) -> u64 {
        self.tokens_seen
    }

    /// Returns accumulated violations.
    ///
    /// # Errors
    ///
    /// Returns the list of violation descriptions if the bound was ever
    /// exceeded.
    pub fn check(&mut self) -> Result<(), Vec<String>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.violations))
        }
    }
}

/// Checks the pre/post-token send-split invariant on the action batches
/// a participant emits while holding the token.
///
/// The Accelerated Ring protocol's acceleration is structural: a token
/// holder multicasts part of its new messages *before* forwarding the
/// token and the rest (at most the accelerated window) *after*. The
/// emitted action list encodes this contract, and every embedding
/// environment executes the list in order — so the contract can be
/// checked syntactically on each batch:
///
/// 1. every new-message `Multicast` before the `SendToken` carries
///    `after_token == false`, and every one after it carries
///    `after_token == true`;
/// 2. at most one `SendToken` appears per batch;
/// 3. no post-token multicast carries a sequence number beyond the
///    `seq` written into the token that precedes it (the token must
///    already account for every message the holder will send this
///    round — otherwise the next holder could order messages the rest
///    of the ring can never request, violating the rtr bound);
/// 4. the number of post-token *new* multicasts never exceeds the
///    configured accelerated window.
///
/// Batches with no `SendToken` (pure delivery batches, membership
/// traffic, timer re-arms) are ignored: the split is a property of
/// token handoff only. Retransmissions are recognisable by
/// `after_token == false` on a sequence number at or below the
/// incoming token's `aru`/`rtr` range and are only checked against
/// rule 1's ordering, which they satisfy by construction.
#[derive(Debug, Default, Clone)]
pub struct SendSplitChecker {
    /// Maximum post-token new multicasts allowed per batch, if bounded.
    window: Option<u32>,
    violations: Vec<String>,
    batches_checked: u64,
}

impl SendSplitChecker {
    /// A checker enforcing `window` as the post-token send bound.
    ///
    /// Pass the configured `accelerated_window` (the AIMD-degraded
    /// effective window only ever shrinks below it). `None` skips the
    /// window-bound rule but keeps the structural rules.
    pub fn new(window: Option<u32>) -> SendSplitChecker {
        SendSplitChecker {
            window,
            violations: Vec::new(),
            batches_checked: 0,
        }
    }

    /// Observes one action batch emitted by participant `pid`.
    ///
    /// Call this with the full `Vec<Action>` returned by a single
    /// `handle_message`/`handle_timer`/`submit` call, before the
    /// environment executes it.
    pub fn on_actions(&mut self, pid: ParticipantId, actions: &[Action]) {
        let mut token_seq: Option<Seq> = None;
        let mut post_token_new = 0u32;
        let mut tokens_in_batch = 0u32;
        for a in actions {
            match a {
                Action::SendToken { token, .. } => {
                    tokens_in_batch += 1;
                    if tokens_in_batch > 1 {
                        self.violations.push(format!(
                            "{pid}: {tokens_in_batch} SendToken actions in one batch"
                        ));
                    }
                    token_seq = Some(token.seq);
                }
                Action::Multicast(d) => match token_seq {
                    None => {
                        if d.after_token {
                            self.violations.push(format!(
                                "{pid}: multicast of {} flagged after_token \
                                 before the token was sent",
                                d.seq
                            ));
                        }
                    }
                    Some(tseq) => {
                        if !d.after_token {
                            self.violations.push(format!(
                                "{pid}: multicast of {} after SendToken not \
                                 flagged after_token",
                                d.seq
                            ));
                        }
                        if d.seq > tseq {
                            self.violations.push(format!(
                                "{pid}: post-token multicast of {} beyond \
                                 token seq {tseq}",
                                d.seq
                            ));
                        }
                        if d.after_token {
                            post_token_new += 1;
                        }
                    }
                },
                _ => {}
            }
        }
        if tokens_in_batch > 0 {
            self.batches_checked += 1;
            if let Some(w) = self.window {
                if post_token_new > w {
                    self.violations.push(format!(
                        "{pid}: {post_token_new} post-token multicasts exceed \
                         the accelerated window {w}"
                    ));
                }
            }
        }
    }

    /// Number of token-bearing batches observed so far.
    pub fn batches_checked(&self) -> u64 {
        self.batches_checked
    }

    /// Violations accumulated so far (without consuming them).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Returns accumulated violations.
    ///
    /// # Errors
    ///
    /// Returns the list of violation descriptions if the split contract
    /// was ever broken.
    pub fn check(&mut self) -> Result<(), Vec<String>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.violations))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Round, ServiceType};
    use bytes::Bytes;

    fn ring(v: u64) -> RingId {
        RingId::new(ParticipantId::new(0), v)
    }

    fn delivery(r: RingId, seq: u64, pid: u16, payload: &'static [u8]) -> Delivery {
        Delivery {
            ring_id: r,
            seq: Seq::new(seq),
            pid: ParticipantId::new(pid),
            service: ServiceType::Agreed,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn clean_run_passes() {
        let mut ck = EvsChecker::new(2);
        for i in 0..2 {
            ck.on_submit(i, b"a");
            ck.on_delivery(i, &delivery(ring(1), 1, 0, b"a"));
            ck.on_delivery(i, &delivery(ring(1), 2, 1, b"b"));
        }
        ck.check().unwrap();
        ck.check_self_delivery(&[0]).unwrap();
    }

    #[test]
    fn content_mismatch_detected() {
        let mut ck = EvsChecker::new(2);
        ck.on_delivery(0, &delivery(ring(1), 1, 0, b"a"));
        ck.on_delivery(1, &delivery(ring(1), 1, 0, b"DIFFERENT"));
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("content mismatch")),
            "{errs:?}"
        );
    }

    #[test]
    fn non_increasing_seq_detected() {
        let mut ck = EvsChecker::new(1);
        ck.on_delivery(0, &delivery(ring(1), 5, 0, b"a"));
        ck.on_delivery(0, &delivery(ring(1), 5, 0, b"a"));
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("non-increasing")),
            "{errs:?}"
        );
    }

    #[test]
    fn divergent_prefix_detected() {
        let mut ck = EvsChecker::new(2);
        ck.on_delivery(0, &delivery(ring(1), 1, 0, b"a"));
        ck.on_delivery(1, &delivery(ring(1), 2, 1, b"b"));
        let errs = ck.check().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("divergent")), "{errs:?}");
    }

    #[test]
    fn transitional_must_shrink_regular() {
        let mut ck = EvsChecker::new(1);
        let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
        ck.on_config(
            0,
            &ConfigChange {
                kind: ConfigChangeKind::Regular,
                ring_id: ring(1),
                members: members[..1].to_vec(),
            },
        );
        ck.on_config(
            0,
            &ConfigChange {
                kind: ConfigChangeKind::Transitional,
                ring_id: ring(2),
                members: members.clone(),
            },
        );
        let errs = ck.check().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("transitional")), "{errs:?}");
    }

    #[test]
    fn old_ring_leftovers_allowed_only_in_transitional_view() {
        let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
        let regular = |r| ConfigChange {
            kind: ConfigChangeKind::Regular,
            ring_id: r,
            members: members.clone(),
        };
        let transitional = |r| ConfigChange {
            kind: ConfigChangeKind::Transitional,
            ring_id: r,
            members: members.clone(),
        };
        // A ring(1) message surfacing during the transitional view that
        // replaced ring(1) is the EVS leftover case: allowed.
        let mut ck = EvsChecker::new(1);
        ck.on_config(0, &regular(ring(1)));
        ck.on_config(0, &transitional(ring(2)));
        ck.on_delivery(0, &delivery(ring(1), 1, 0, b"leftover"));
        ck.check().unwrap();
        // The same delivery after the regular view installs is a
        // same-view violation.
        let mut ck = EvsChecker::new(1);
        ck.on_config(0, &regular(ring(1)));
        ck.on_config(0, &transitional(ring(2)));
        ck.on_config(0, &regular(ring(2)));
        ck.on_delivery(0, &delivery(ring(1), 1, 0, b"leftover"));
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("installed view")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_self_delivery_detected() {
        let mut ck = EvsChecker::new(1);
        ck.on_submit(0, b"lost");
        let errs = ck.check_self_delivery(&[0]).unwrap_err();
        assert!(errs[0].contains("never self-delivered"), "{errs:?}");
    }

    #[test]
    fn initial_config_seeding_enables_first_episode_checks() {
        let members: Vec<ParticipantId> = (0..2).map(ParticipantId::new).collect();
        // Without seeding, a first transitional view has no preceding
        // regular view and no prev_ring: an old-ring leftover delivered
        // during it is (wrongly) flagged.
        let mut unseeded = EvsChecker::new(1);
        unseeded.on_config(
            0,
            &ConfigChange {
                kind: ConfigChangeKind::Transitional,
                ring_id: ring(2),
                members: members.clone(),
            },
        );
        unseeded.on_delivery(0, &delivery(ring(1), 1, 0, b"leftover"));
        assert!(unseeded.check().is_err());
        // Seeded with the bootstrap ring, the same run is the
        // legitimate EVS leftover case.
        let mut seeded = EvsChecker::new(1);
        seeded.on_initial_config(0, ring(1), &members);
        seeded.on_config(
            0,
            &ConfigChange {
                kind: ConfigChangeKind::Transitional,
                ring_id: ring(2),
                members: members.clone(),
            },
        );
        seeded.on_delivery(0, &delivery(ring(1), 1, 0, b"leftover"));
        seeded.check().unwrap();
        // Seeding also arms the same-view check from step zero.
        let mut strict = EvsChecker::new(1);
        strict.on_initial_config(0, ring(1), &members);
        strict.on_delivery(0, &delivery(ring(9), 1, 0, b"foreign"));
        let errs = strict.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("installed view")),
            "{errs:?}"
        );
    }

    #[test]
    fn transitional_config_disagreement_detected() {
        let members: Vec<ParticipantId> = (0..3).map(ParticipantId::new).collect();
        let trans = |m: &[ParticipantId]| ConfigChange {
            kind: ConfigChangeKind::Transitional,
            ring_id: ring(2),
            members: m.to_vec(),
        };
        // Agreement: same transitional ring id, same members — green.
        let mut ok = EvsChecker::new(2);
        ok.on_initial_config(0, ring(1), &members);
        ok.on_initial_config(1, ring(1), &members);
        ok.on_config(0, &trans(&members[..2]));
        ok.on_config(1, &trans(&members[..2]));
        ok.check().unwrap();
        // Disagreement: same transitional ring id, different members.
        let mut bad = EvsChecker::new(2);
        bad.on_initial_config(0, ring(1), &members);
        bad.on_initial_config(1, ring(1), &members);
        bad.on_config(0, &trans(&members[..2]));
        bad.on_config(1, &trans(&members[1..]));
        let errs = bad.check().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("disagree")), "{errs:?}");
    }

    fn safe_delivery(r: RingId, seq: u64, pid: u16, payload: &'static [u8]) -> Delivery {
        Delivery {
            service: ServiceType::Safe,
            ..delivery(r, seq, pid, payload)
        }
    }

    #[test]
    fn durability_clean_run_passes() {
        let mut ck = DurabilityChecker::new();
        for i in 0..2 {
            ck.on_log_record(i, &delivery(ring(1), 1, 0, b"a"));
            ck.on_log_record(i, &safe_delivery(ring(1), 2, 1, b"s"));
            ck.on_safe_delivered(i, &safe_delivery(ring(1), 2, 1, b"s"));
            // Non-Safe deliveries are ignored even if absent from logs.
            ck.on_safe_delivered(i, &delivery(ring(1), 9, 0, b"agreed-only"));
        }
        ck.check().unwrap();
    }

    #[test]
    fn durability_lost_safe_delivery_detected() {
        let mut ck = DurabilityChecker::new();
        ck.on_safe_delivered(0, &safe_delivery(ring(1), 3, 1, b"gone"));
        ck.on_log_record(0, &delivery(ring(1), 1, 0, b"a"));
        let errs = ck.check().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing from")), "{errs:?}");
    }

    #[test]
    fn durability_skips_processes_without_logs() {
        let mut ck = DurabilityChecker::new();
        ck.on_safe_delivered(0, &safe_delivery(ring(1), 3, 1, b"no disk"));
        ck.check().unwrap();
    }

    #[test]
    fn durability_log_disorder_and_disagreement_detected() {
        let mut ck = DurabilityChecker::new();
        ck.on_log_record(0, &delivery(ring(1), 2, 0, b"x"));
        ck.on_log_record(0, &delivery(ring(1), 1, 0, b"y"));
        ck.on_log_record(1, &delivery(ring(1), 2, 0, b"DIFFERENT"));
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("non-increasing")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("disagrees")), "{errs:?}");
    }

    #[test]
    fn token_rule_monitor_bounds_rtr() {
        let mut mon = TokenRuleMonitor::new();
        let r = ring(1);
        let mut t1 = Token::initial(r, Seq::ZERO);
        t1.round = Round::new(1);
        t1.seq = Seq::new(4);
        mon.on_token(&t1);
        let mut t2 = Token::initial(r, Seq::ZERO);
        t2.round = Round::new(2);
        t2.seq = Seq::new(8);
        t2.rtr = vec![Seq::new(3)];
        mon.on_token(&t2);
        mon.check().unwrap();
        let mut t3 = Token::initial(r, Seq::ZERO);
        t3.round = Round::new(3);
        t3.seq = Seq::new(9);
        t3.rtr = vec![Seq::new(9)]; // beyond t2.seq = 8
        mon.on_token(&t3);
        let errs = mon.check().unwrap_err();
        assert!(errs[0].contains("beyond previous token seq"), "{errs:?}");
        assert_eq!(mon.tokens_seen(), 3);
    }

    fn data(seq: u64, after_token: bool) -> Action {
        Action::Multicast(crate::message::DataMessage {
            ring_id: ring(1),
            seq: Seq::new(seq),
            pid: ParticipantId::new(0),
            round: Round::new(1),
            service: ServiceType::Agreed,
            after_token,
            payload: Bytes::from_static(b"x"),
        })
    }

    fn send_token(seq: u64) -> Action {
        let mut t = Token::initial(ring(1), Seq::ZERO);
        t.seq = Seq::new(seq);
        Action::SendToken {
            to: ParticipantId::new(1),
            token: t,
        }
    }

    #[test]
    fn send_split_accepts_well_formed_batch() {
        let mut ck = SendSplitChecker::new(Some(2));
        ck.on_actions(
            ParticipantId::new(0),
            &[
                data(1, false),
                send_token(3),
                data(2, true),
                data(3, true),
                Action::SetTimer(crate::actions::TimerKind::TokenLoss),
            ],
        );
        assert_eq!(ck.batches_checked(), 1);
        ck.check().unwrap();
    }

    #[test]
    fn send_split_ignores_tokenless_batches() {
        let mut ck = SendSplitChecker::new(Some(0));
        ck.on_actions(ParticipantId::new(0), &[data(1, false)]);
        assert_eq!(ck.batches_checked(), 0);
        ck.check().unwrap();
    }

    #[test]
    fn send_split_flags_misflagged_multicasts() {
        let mut ck = SendSplitChecker::new(None);
        ck.on_actions(
            ParticipantId::new(0),
            &[data(1, true), send_token(2), data(2, false)],
        );
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("before the token was sent")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("not flagged after_token")),
            "{errs:?}"
        );
    }

    #[test]
    fn send_split_flags_seq_beyond_token_and_window() {
        let mut ck = SendSplitChecker::new(Some(1));
        ck.on_actions(
            ParticipantId::new(0),
            &[send_token(1), data(2, true), data(3, true)],
        );
        let errs = ck.check().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("beyond token seq")),
            "{errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("exceed the accelerated window")),
            "{errs:?}"
        );
    }
}
