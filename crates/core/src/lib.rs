//! # ar-core — the Accelerated Ring protocol
//!
//! A sans-io implementation of the **Accelerated Ring** total-ordering
//! protocol ("Fast Total Ordering for Modern Data Centers", Babay &
//! Amir, ICDCS 2016) together with the original Totem Ring protocol it
//! improves upon, and a Totem-style membership algorithm providing
//! Extended Virtual Synchrony semantics.
//!
//! The central type is [`Participant`]: a deterministic state machine
//! that consumes received messages, application submissions, and timer
//! expiries, and emits ordered [`Action`] lists for the environment to
//! execute. Because the core performs no I/O, the same protocol code
//! runs under the discrete-event simulator (`ar-sim`), the UDP runtime
//! (`ar-net`), and plain unit tests.
//!
//! ## The protocol in one paragraph
//!
//! Participants form a logical ring around which a *token* circulates.
//! A participant may multicast only while it holds (or has just held)
//! the token; the token carries the highest assigned sequence number
//! (`seq`), the global all-received-up-to (`aru`), flow-control state
//! (`fcc`), and retransmission requests (`rtr`). The Accelerated Ring
//! innovation: the token holder determines its *entire* send set for
//! the round up front, updates the token to reflect it, and passes the
//! token to its successor after multicasting only the portion beyond
//! the `accelerated_window` — the rest follows *behind* the token.
//! Retransmission requests are bounded by the previous round's token
//! `seq` so messages ordered-but-not-yet-sent are never requested.
//!
//! A phase-by-phase walkthrough of the implementation lives in
//! `docs/PROTOCOL.md` at the repository root.
//!
//! ## Quick example
//!
//! ```
//! use ar_core::{
//!     Action, ParticipantId, Participant, ProtocolConfig, RingId, ServiceType,
//! };
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let members: Vec<ParticipantId> = (0..4).map(ParticipantId::new).collect();
//! let ring_id = RingId::new(members[0], 1);
//! let mut p0 = Participant::new(members[0], ProtocolConfig::accelerated(),
//!                               ring_id, members.clone())?;
//! p0.submit(Bytes::from_static(b"hello, ring"), ServiceType::Agreed)?;
//! // The representative bootstraps the ring; its actions carry the
//! // pre-token multicasts, the token to its successor, and (because it
//! // has everything ordered so far) the delivery of its own message.
//! let actions = p0.start();
//! assert!(actions.iter().any(|a| matches!(a, Action::SendToken { .. })));
//! assert!(actions.iter().any(|a| matches!(a, Action::Deliver(_))));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actions;
pub mod adaptive;
pub mod backoff;
pub mod checker;
pub mod config;
pub mod fault;
pub mod flow;
pub mod membership;
pub mod message;
pub mod observer;
pub mod participant;
pub mod priority;
pub mod recvbuf;
pub mod ring;
pub mod sendq;
pub mod statehash;
pub mod stats;
pub mod types;
pub mod wire;

pub use actions::{Action, ConfigChange, ConfigChangeKind, TimerKind};
pub use adaptive::{
    derive_timeouts, AdaptiveConfig, AdaptiveConfigError, AdaptiveInitError, AdaptiveTimeouts,
};
pub use backoff::{Backoff, BackoffConfig, ExpShift};
pub use checker::{DurabilityChecker, EvsChecker, SendSplitChecker, TokenRuleMonitor};
pub use config::{
    AimdConfig, ConfigError, FlapDampingConfig, PriorityMethod, ProtocolConfig, ProtocolVariant,
};
pub use fault::{Connectivity, FaultEvent, FaultSchedule};
pub use message::{CommitToken, DataMessage, Delivery, JoinMessage, MemberInfo, Token};
pub use observer::{Observer, ProtoEvent};
pub use participant::{Mode, NewParticipantError, Participant, TimeoutConfig, TimeoutConfigError};
pub use priority::PriorityMode;
pub use recvbuf::RecvBuffer;
pub use ring::RingInfo;
pub use sendq::QueueFull;
pub use statehash::{StateHash, StateHasher};
pub use stats::ParticipantStats;
pub use types::{ParticipantId, RingId, Round, Seq, ServiceType};
pub use wire::Message;
