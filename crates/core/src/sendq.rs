//! Queue of application messages waiting to be ordered.
//!
//! Messages submitted by the application wait here until the participant
//! holds the token and flow control admits them. The queue enforces a
//! bounded capacity so that a slow ring pushes back on the application
//! (the paper's daemons block clients the same way) instead of growing
//! without bound.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::types::ServiceType;

/// Default capacity of the pending-send queue, in messages.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A payload waiting to be ordered, with its requested service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMessage {
    /// The application payload.
    pub payload: Bytes,
    /// The delivery service requested for this message.
    pub service: ServiceType,
}

/// Error returned when the pending queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue's capacity, for the caller's diagnostics.
    pub capacity: usize,
}

impl core::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "send queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Bounded FIFO of messages awaiting ordering.
#[derive(Debug, Clone)]
pub struct SendQueue {
    queue: VecDeque<PendingMessage>,
    capacity: usize,
    bytes_queued: usize,
}

impl SendQueue {
    /// Creates a queue with the default capacity.
    pub fn new() -> SendQueue {
        SendQueue::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a queue bounded at `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> SendQueue {
        assert!(capacity > 0, "send queue capacity must be positive");
        SendQueue {
            queue: VecDeque::new(),
            capacity,
            bytes_queued: 0,
        }
    }

    /// Enqueues a message for ordering.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue is at capacity; the caller
    /// should retry after deliveries drain the ring (backpressure).
    pub fn push(&mut self, payload: Bytes, service: ServiceType) -> Result<(), QueueFull> {
        if self.queue.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        self.bytes_queued += payload.len();
        self.queue.push_back(PendingMessage { payload, service });
        Ok(())
    }

    /// Dequeues the next message to order, if any.
    pub fn pop(&mut self) -> Option<PendingMessage> {
        let m = self.queue.pop_front()?;
        self.bytes_queued -= m.payload.len();
        Some(m)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total payload bytes queued.
    pub fn bytes_queued(&self) -> usize {
        self.bytes_queued
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining slots before the queue refuses submissions.
    pub fn remaining(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Iterates over the queued messages in FIFO order without
    /// consuming them (used by state hashing and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &PendingMessage> {
        self.queue.iter()
    }
}

impl Default for SendQueue {
    fn default() -> Self {
        SendQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = SendQueue::new();
        q.push(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        q.push(Bytes::from_static(b"b"), ServiceType::Safe).unwrap();
        assert_eq!(q.pop().unwrap().payload, Bytes::from_static(b"a"));
        assert_eq!(q.pop().unwrap().service, ServiceType::Safe);
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut q = SendQueue::with_capacity(2);
        q.push(Bytes::from_static(b"1"), ServiceType::Agreed)
            .unwrap();
        q.push(Bytes::from_static(b"2"), ServiceType::Agreed)
            .unwrap();
        let err = q
            .push(Bytes::from_static(b"3"), ServiceType::Agreed)
            .unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(q.remaining(), 0);
        // Popping frees a slot.
        q.pop();
        assert_eq!(q.remaining(), 1);
        q.push(Bytes::from_static(b"3"), ServiceType::Agreed)
            .unwrap();
    }

    #[test]
    fn byte_accounting() {
        let mut q = SendQueue::new();
        q.push(Bytes::from_static(b"abc"), ServiceType::Agreed)
            .unwrap();
        q.push(Bytes::from_static(b"de"), ServiceType::Agreed)
            .unwrap();
        assert_eq!(q.bytes_queued(), 5);
        q.pop();
        assert_eq!(q.bytes_queued(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SendQueue::with_capacity(0);
    }

    #[test]
    fn queue_full_error_displays_capacity() {
        assert!(QueueFull { capacity: 7 }.to_string().contains('7'));
    }
}
