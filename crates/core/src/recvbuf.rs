//! The received-message buffer: ordered storage of data messages,
//! local-aru tracking, delivery gating, and stability-driven discard.
//!
//! Every participant keeps one [`RecvBuffer`] per configuration. The
//! buffer owns the three watermarks the protocol reasons about:
//!
//! * `local_aru` — the highest sequence number such that this
//!   participant has received *every* message with a lower-or-equal
//!   sequence number;
//! * `delivered_up_to` — the prefix already handed to the application;
//! * `discarded_up_to` — the prefix removed after becoming stable
//!   (received by all members), i.e. the garbage-collection frontier.
//!
//! Invariant: `discarded_up_to <= delivered_up_to <= local_aru`.

use std::collections::BTreeMap;

use crate::message::{DataMessage, Delivery};
use crate::types::Seq;

/// Outcome of inserting a received data message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The message was new and has been stored.
    New,
    /// A message with this sequence number is already buffered (or was
    /// already delivered and discarded); the duplicate was dropped.
    Duplicate,
}

/// Ordered buffer of received data messages for one configuration.
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    msgs: BTreeMap<Seq, DataMessage>,
    local_aru: Seq,
    delivered_up_to: Seq,
    discarded_up_to: Seq,
    duplicates: u64,
}

impl RecvBuffer {
    /// Creates an empty buffer whose watermarks start at `start`
    /// (`Seq::ZERO` for a fresh configuration; the recovered watermark
    /// after a membership change).
    pub fn new(start: Seq) -> RecvBuffer {
        RecvBuffer {
            msgs: BTreeMap::new(),
            local_aru: start,
            delivered_up_to: start,
            discarded_up_to: start,
            duplicates: 0,
        }
    }

    /// The highest sequence number up to which this participant has
    /// received everything.
    pub fn local_aru(&self) -> Seq {
        self.local_aru
    }

    /// The delivery frontier: all messages with `seq <=` this value have
    /// been delivered to the application.
    pub fn delivered_up_to(&self) -> Seq {
        self.delivered_up_to
    }

    /// The garbage-collection frontier.
    pub fn discarded_up_to(&self) -> Seq {
        self.discarded_up_to
    }

    /// Number of duplicate receptions dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The highest sequence number received so far (not necessarily
    /// contiguously), or the discard frontier if the buffer is empty.
    pub fn highest_received(&self) -> Seq {
        self.msgs
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.discarded_up_to)
            .max(self.local_aru)
    }

    /// Inserts a received message, advancing `local_aru` over any gap it
    /// fills.
    pub fn insert(&mut self, msg: DataMessage) -> InsertOutcome {
        let seq = msg.seq;
        if seq <= self.discarded_up_to || seq <= self.local_aru || self.msgs.contains_key(&seq) {
            self.duplicates += 1;
            return InsertOutcome::Duplicate;
        }
        self.msgs.insert(seq, msg);
        while self.msgs.contains_key(&self.local_aru.next()) {
            self.local_aru = self.local_aru.next();
        }
        InsertOutcome::New
    }

    /// Returns the buffered message with sequence number `seq`, if it is
    /// still held (for answering retransmission requests).
    pub fn get(&self, seq: Seq) -> Option<&DataMessage> {
        self.msgs.get(&seq)
    }

    /// True if the message with sequence number `seq` has been received
    /// (whether still buffered or already discarded as stable).
    pub fn has(&self, seq: Seq) -> bool {
        seq <= self.local_aru || self.msgs.contains_key(&seq)
    }

    /// Sequence numbers missing between `local_aru` (exclusive) and
    /// `limit` (inclusive).
    ///
    /// The Accelerated Ring protocol calls this with the `seq` of the
    /// token received in the *previous* round, so that messages that
    /// were ordered but possibly not yet multicast (the predecessor's
    /// post-token phase) are never requested spuriously.
    pub fn missing_up_to(&self, limit: Seq) -> Vec<Seq> {
        let mut missing = Vec::new();
        let mut next = self.local_aru.next();
        if next > limit {
            return missing;
        }
        for (&have, _) in self.msgs.range(next..=limit) {
            while next < have {
                missing.push(next);
                next = next.next();
            }
            next = have.next();
        }
        while next <= limit {
            missing.push(next);
            next = next.next();
        }
        missing
    }

    /// Delivers every message that is now deliverable and returns the
    /// deliveries in total order.
    ///
    /// A message is deliverable once all messages with lower sequence
    /// numbers have been received and delivered, and — if it requires
    /// `Safe` service — once its sequence number is `<= safe_up_to`
    /// (stability). A non-deliverable `Safe` message blocks everything
    /// after it, preserving the total order.
    pub fn deliver_ready(&mut self, safe_up_to: Seq) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.delivered_up_to < self.local_aru {
            let next = self.delivered_up_to.next();
            let msg = self
                .msgs
                .get(&next)
                .expect("message below local_aru must be buffered");
            if msg.service.requires_stability() && next > safe_up_to {
                break;
            }
            out.push(Delivery::from_data(msg));
            self.delivered_up_to = next;
        }
        out
    }

    /// Discards every buffered message with `seq <= up_to` (they are
    /// stable: received by all members and no longer needed for
    /// retransmission).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if asked to discard past the delivery
    /// frontier — stability never outruns delivery in a correct run.
    pub fn discard_up_to(&mut self, up_to: Seq) {
        if up_to <= self.discarded_up_to {
            return;
        }
        debug_assert!(
            up_to <= self.delivered_up_to,
            "discarding undelivered messages ({up_to} > {})",
            self.delivered_up_to
        );
        self.msgs = self.msgs.split_off(&up_to.next());
        self.discarded_up_to = up_to;
    }

    /// Iterates over the buffered messages in sequence order (used by
    /// the recovery protocol to re-multicast old-ring messages).
    pub fn iter(&self) -> impl Iterator<Item = &DataMessage> {
        self.msgs.values()
    }

    /// Delivers every message up to `up_to` regardless of Safe-service
    /// stability, stopping early at a gap.
    ///
    /// Used at the end of membership recovery: once every continuing
    /// member of the old configuration holds the same message set, the
    /// remaining messages are delivered in the *transitional*
    /// configuration, where Safe semantics are relative to the
    /// transitional membership (Extended Virtual Synchrony).
    pub fn deliver_all_up_to(&mut self, up_to: Seq) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.delivered_up_to < up_to {
            let next = self.delivered_up_to.next();
            let Some(msg) = self.msgs.get(&next) else {
                break;
            };
            out.push(Delivery::from_data(msg));
            self.delivered_up_to = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ParticipantId, RingId, Round, ServiceType};
    use bytes::Bytes;

    fn msg(seq: u64, service: ServiceType) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(seq),
            pid: ParticipantId::new(1),
            round: Round::new(1),
            service,
            after_token: false,
            payload: Bytes::from_static(b"m"),
        }
    }

    #[test]
    fn aru_advances_contiguously() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert_eq!(b.insert(msg(1, ServiceType::Agreed)), InsertOutcome::New);
        assert_eq!(b.local_aru(), Seq::new(1));
        assert_eq!(b.insert(msg(3, ServiceType::Agreed)), InsertOutcome::New);
        assert_eq!(b.local_aru(), Seq::new(1), "gap at 2 blocks aru");
        assert_eq!(b.insert(msg(2, ServiceType::Agreed)), InsertOutcome::New);
        assert_eq!(b.local_aru(), Seq::new(3), "filling the gap jumps aru");
    }

    #[test]
    fn duplicates_are_counted_and_dropped() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, ServiceType::Agreed));
        assert_eq!(
            b.insert(msg(1, ServiceType::Agreed)),
            InsertOutcome::Duplicate
        );
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn delivery_of_agreed_prefix() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, ServiceType::Agreed));
        b.insert(msg(2, ServiceType::Agreed));
        b.insert(msg(4, ServiceType::Agreed));
        let d = b.deliver_ready(Seq::ZERO);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].seq, Seq::new(1));
        assert_eq!(d[1].seq, Seq::new(2));
        assert_eq!(b.delivered_up_to(), Seq::new(2));
        // Nothing more until the gap at 3 fills.
        assert!(b.deliver_ready(Seq::ZERO).is_empty());
    }

    #[test]
    fn safe_message_waits_for_stability_and_blocks_later_agreed() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, ServiceType::Safe));
        b.insert(msg(2, ServiceType::Agreed));
        // Not stable yet: nothing delivered, not even the Agreed at 2.
        assert!(b.deliver_ready(Seq::ZERO).is_empty());
        // Stability reaches 1: both flow out, in order.
        let d = b.deliver_ready(Seq::new(1));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].seq, Seq::new(1));
        assert_eq!(d[0].service, ServiceType::Safe);
        assert_eq!(d[1].seq, Seq::new(2));
    }

    #[test]
    fn missing_up_to_reports_gaps_only_below_limit() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(2, ServiceType::Agreed));
        b.insert(msg(5, ServiceType::Agreed));
        assert_eq!(
            b.missing_up_to(Seq::new(6)),
            vec![Seq::new(1), Seq::new(3), Seq::new(4), Seq::new(6)]
        );
        assert_eq!(b.missing_up_to(Seq::new(2)), vec![Seq::new(1)]);
        assert_eq!(b.missing_up_to(Seq::ZERO), Vec::<Seq>::new());
    }

    #[test]
    fn missing_up_to_empty_when_contiguous() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, ServiceType::Agreed));
        b.insert(msg(2, ServiceType::Agreed));
        assert!(b.missing_up_to(Seq::new(2)).is_empty());
    }

    #[test]
    fn discard_removes_stable_prefix_but_keeps_rest() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        for s in 1..=4 {
            b.insert(msg(s, ServiceType::Agreed));
        }
        b.deliver_ready(Seq::ZERO);
        b.discard_up_to(Seq::new(2));
        assert_eq!(b.discarded_up_to(), Seq::new(2));
        assert!(b.get(Seq::new(2)).is_none());
        assert!(b.get(Seq::new(3)).is_some());
        assert!(
            b.has(Seq::new(1)),
            "discarded messages still count as received"
        );
        // Re-inserting a discarded message is a duplicate.
        assert_eq!(
            b.insert(msg(1, ServiceType::Agreed)),
            InsertOutcome::Duplicate
        );
    }

    #[test]
    fn discard_is_idempotent_and_monotonic() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, ServiceType::Agreed));
        b.deliver_ready(Seq::ZERO);
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::ZERO);
        assert_eq!(b.discarded_up_to(), Seq::new(1));
    }

    #[test]
    fn highest_received_tracks_max() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert_eq!(b.highest_received(), Seq::ZERO);
        b.insert(msg(7, ServiceType::Agreed));
        assert_eq!(b.highest_received(), Seq::new(7));
        b.insert(msg(3, ServiceType::Agreed));
        assert_eq!(b.highest_received(), Seq::new(7));
    }

    #[test]
    fn starts_at_nonzero_watermark_after_recovery() {
        let mut b = RecvBuffer::new(Seq::new(10));
        assert_eq!(
            b.insert(msg(10, ServiceType::Agreed)),
            InsertOutcome::Duplicate,
            "messages at or below the start watermark are old"
        );
        assert_eq!(b.insert(msg(11, ServiceType::Agreed)), InsertOutcome::New);
        assert_eq!(b.local_aru(), Seq::new(11));
        let d = b.deliver_ready(Seq::ZERO);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].seq, Seq::new(11));
    }

    #[test]
    fn iter_yields_messages_in_sequence_order() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(3, ServiceType::Agreed));
        b.insert(msg(1, ServiceType::Agreed));
        b.insert(msg(2, ServiceType::Agreed));
        let seqs: Vec<u64> = b.iter().map(|m| m.seq.as_u64()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }
}
