//! Binary wire format for protocol messages.
//!
//! The format is a hand-rolled, fixed-layout big-endian encoding: one
//! kind byte followed by the message fields. It favors predictable
//! layout and cheap decoding over compactness — exactly the trade the
//! paper's C implementations make. The codec is fully symmetric:
//! [`encode`] and [`decode`] round-trip every well-formed message
//! (verified by property tests), and `decode` rejects malformed input
//! with a descriptive [`WireError`] rather than panicking.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::message::{CommitToken, DataMessage, JoinMessage, MemberInfo, Token};
use crate::types::{ParticipantId, RingId, Round, Seq, ServiceType};

/// Size in bytes of the encoded header of a data message (everything but
/// the payload).
///
/// kind(1) + ring_id(10) + seq(8) + pid(2) + round(8) + service(1) +
/// flags(1) + payload_len(4).
pub const DATA_HEADER_LEN: usize = 1 + RING_ID_LEN + 8 + 2 + 8 + 1 + 1 + 4;

/// Size in bytes of an encoded ring identifier.
const RING_ID_LEN: usize = 2 + 8;

/// Maximum admissible payload length (64 KiB datagram minus headers,
/// mirroring the largest UDP datagram the paper's large-message
/// experiments use).
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024 - DATA_HEADER_LEN;

/// Maximum number of retransmission requests carried on one token.
pub const MAX_RTR_ENTRIES: usize = 4096;

/// Maximum number of members in a ring (and so on a commit token).
pub const MAX_MEMBERS: usize = 1024;

/// Wire message kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Data = 1,
    Token = 2,
    Join = 3,
    Commit = 4,
}

/// Any protocol message, as it appears on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A multicast data message.
    Data(DataMessage),
    /// The regular ordering token.
    Token(Token),
    /// A membership join message.
    Join(JoinMessage),
    /// The membership commit token.
    Commit(CommitToken),
}

impl Message {
    /// A short human-readable name for the message kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Data(_) => "data",
            Message::Token(_) => "token",
            Message::Join(_) => "join",
            Message::Commit(_) => "commit",
        }
    }
}

impl From<DataMessage> for Message {
    fn from(m: DataMessage) -> Self {
        Message::Data(m)
    }
}

impl From<Token> for Message {
    fn from(t: Token) -> Self {
        Message::Token(t)
    }
}

impl From<JoinMessage> for Message {
    fn from(j: JoinMessage) -> Self {
        Message::Join(j)
    }
}

impl From<CommitToken> for Message {
    fn from(c: CommitToken) -> Self {
        Message::Commit(c)
    }
}

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message was complete.
    Truncated {
        /// How many more bytes were needed.
        needed: usize,
    },
    /// The kind byte did not name a known message kind.
    UnknownKind(u8),
    /// The service byte did not name a known service type.
    InvalidService(u8),
    /// A length field exceeded its protocol limit.
    LengthOutOfRange {
        /// Which field was out of range.
        field: &'static str,
        /// The decoded value.
        value: usize,
        /// The maximum admissible value.
        max: usize,
    },
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
    /// A flags byte contained bits the protocol does not define.
    InvalidFlags(u8),
    /// A field held bytes a conforming encoder can never produce (the
    /// value decodes unambiguously, but accepting it would make two
    /// distinct byte strings decode to the same message, breaking the
    /// decode-then-re-encode identity the fuzzer asserts).
    NonCanonical {
        /// Which field was non-canonically encoded.
        field: &'static str,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed } => {
                write!(f, "message truncated: {needed} more bytes needed")
            }
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::InvalidService(s) => write!(f, "invalid service type {s}"),
            WireError::LengthOutOfRange { field, value, max } => {
                write!(f, "{field} length {value} exceeds maximum {max}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::InvalidFlags(b) => write!(f, "invalid flags byte {b:#04x}"),
            WireError::NonCanonical { field } => {
                write!(f, "non-canonical encoding of {field}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message into a fresh buffer.
///
/// ```
/// use ar_core::wire::{decode, encode, Message};
/// use ar_core::{ParticipantId, RingId, Seq, Token};
///
/// let token = Token::initial(RingId::new(ParticipantId::new(0), 1), Seq::ZERO);
/// let bytes = encode(&Message::Token(token.clone()));
/// assert_eq!(decode(&bytes)?, Message::Token(token));
/// # Ok::<(), ar_core::wire::WireError>(())
/// ```
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    encode_into(msg, &mut buf);
    buf.freeze()
}

/// Returns the exact encoded length of `msg` in bytes.
pub fn encoded_len(msg: &Message) -> usize {
    match msg {
        Message::Data(d) => DATA_HEADER_LEN + d.payload.len(),
        Message::Token(t) => 1 + RING_ID_LEN + 8 + 8 + 8 + 3 + 4 + 4 + 8 * t.rtr.len(),
        Message::Join(j) => 1 + 2 + 8 + 4 + 2 * j.proc_set.len() + 4 + 2 * j.fail_set.len(),
        Message::Commit(c) => 1 + RING_ID_LEN + 4 + 4 + c.memb.len() * MEMBER_INFO_LEN,
    }
}

const MEMBER_INFO_LEN: usize = 2 + RING_ID_LEN + 8 + 8 + 8 + 1;

/// Encodes a message into a reusable scratch buffer.
///
/// Clears whatever `buf` held (stale bytes from a previous encode are
/// discarded, capacity is kept), reserves the exact encoded length, and
/// appends the encoding. Returns the encoded length. This is the
/// zero-allocation path hot senders use: one `BytesMut` per transport,
/// one encode per logical message, however many peers it fans out to.
///
/// ```
/// use ar_core::wire::{decode, encode_to_scratch, Message};
/// use ar_core::{ParticipantId, RingId, Seq, Token};
/// use bytes::BytesMut;
///
/// let mut scratch = BytesMut::new();
/// let token = Token::initial(RingId::new(ParticipantId::new(0), 1), Seq::ZERO);
/// let n = encode_to_scratch(&Message::Token(token.clone()), &mut scratch);
/// assert_eq!(decode(&scratch[..n])?, Message::Token(token));
/// # Ok::<(), ar_core::wire::WireError>(())
/// ```
pub fn encode_to_scratch(msg: &Message, buf: &mut BytesMut) -> usize {
    buf.clear();
    let len = encoded_len(msg);
    buf.reserve(len);
    encode_into(msg, buf);
    debug_assert_eq!(buf.len(), len);
    len
}

/// Encodes a message, appending to `buf`.
pub fn encode_into(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Data(d) => {
            buf.put_u8(Kind::Data as u8);
            put_ring_id(buf, d.ring_id);
            buf.put_u64(d.seq.as_u64());
            buf.put_u16(d.pid.as_u16());
            buf.put_u64(d.round.as_u64());
            buf.put_u8(d.service.as_u8());
            buf.put_u8(u8::from(d.after_token));
            buf.put_u32(d.payload.len() as u32);
            buf.put_slice(&d.payload);
        }
        Message::Token(t) => {
            buf.put_u8(Kind::Token as u8);
            put_ring_id(buf, t.ring_id);
            buf.put_u64(t.round.as_u64());
            buf.put_u64(t.seq.as_u64());
            buf.put_u64(t.aru.as_u64());
            match t.aru_setter {
                Some(p) => {
                    buf.put_u8(1);
                    buf.put_u16(p.as_u16());
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u16(0);
                }
            }
            buf.put_u32(t.fcc);
            buf.put_u32(t.rtr.len() as u32);
            for s in &t.rtr {
                buf.put_u64(s.as_u64());
            }
        }
        Message::Join(j) => {
            buf.put_u8(Kind::Join as u8);
            buf.put_u16(j.sender.as_u16());
            buf.put_u64(j.ring_seq);
            buf.put_u32(j.proc_set.len() as u32);
            for p in &j.proc_set {
                buf.put_u16(p.as_u16());
            }
            buf.put_u32(j.fail_set.len() as u32);
            for p in &j.fail_set {
                buf.put_u16(p.as_u16());
            }
        }
        Message::Commit(c) => {
            buf.put_u8(Kind::Commit as u8);
            put_ring_id(buf, c.ring_id);
            buf.put_u32(c.hop);
            buf.put_u32(c.memb.len() as u32);
            for m in &c.memb {
                buf.put_u16(m.pid.as_u16());
                put_ring_id(buf, m.old_ring_id);
                buf.put_u64(m.my_aru.as_u64());
                buf.put_u64(m.high_seq.as_u64());
                buf.put_u64(m.safe_seq.as_u64());
                buf.put_u8(u8::from(m.filled));
            }
        }
    }
}

/// Decodes one complete message from `bytes`.
///
/// # Errors
///
/// Returns a [`WireError`] if the buffer is truncated, contains an
/// unknown kind or service, has out-of-range length fields, or has
/// trailing bytes after the message.
pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
    let mut buf = bytes;
    let msg = decode_from(&mut buf)?;
    if !buf.is_empty() {
        return Err(WireError::TrailingBytes(buf.len()));
    }
    Ok(msg)
}

/// Decodes one message from the front of `buf`, advancing it.
///
/// # Errors
///
/// Same as [`decode`], except trailing bytes are left in `buf` rather
/// than rejected (for streaming use).
pub fn decode_from(buf: &mut &[u8]) -> Result<Message, WireError> {
    let kind = take_u8(buf)?;
    match kind {
        k if k == Kind::Data as u8 => {
            let ring_id = take_ring_id(buf)?;
            let seq = Seq::new(take_u64(buf)?);
            let pid = ParticipantId::new(take_u16(buf)?);
            let round = Round::new(take_u64(buf)?);
            let service_raw = take_u8(buf)?;
            let service =
                ServiceType::from_u8(service_raw).ok_or(WireError::InvalidService(service_raw))?;
            let flags = take_u8(buf)?;
            if flags > 1 {
                return Err(WireError::InvalidFlags(flags));
            }
            let len = take_u32(buf)? as usize;
            if len > MAX_PAYLOAD_LEN {
                return Err(WireError::LengthOutOfRange {
                    field: "payload",
                    value: len,
                    max: MAX_PAYLOAD_LEN,
                });
            }
            let payload = take_bytes(buf, len)?;
            Ok(Message::Data(DataMessage {
                ring_id,
                seq,
                pid,
                round,
                service,
                after_token: flags == 1,
                payload,
            }))
        }
        k if k == Kind::Token as u8 => {
            let ring_id = take_ring_id(buf)?;
            let round = Round::new(take_u64(buf)?);
            let seq = Seq::new(take_u64(buf)?);
            let aru = Seq::new(take_u64(buf)?);
            let has_setter = take_u8(buf)?;
            if has_setter > 1 {
                return Err(WireError::InvalidFlags(has_setter));
            }
            let setter_raw = take_u16(buf)?;
            // An absent setter must carry zero setter bytes: accepting
            // arbitrary bytes here would let two distinct byte strings
            // decode to the same token, breaking the byte-exact
            // re-encode identity the wire fuzzer asserts.
            if has_setter == 0 && setter_raw != 0 {
                return Err(WireError::NonCanonical {
                    field: "aru_setter",
                });
            }
            let aru_setter = (has_setter == 1).then(|| ParticipantId::new(setter_raw));
            let fcc = take_u32(buf)?;
            let n = take_u32(buf)? as usize;
            if n > MAX_RTR_ENTRIES {
                return Err(WireError::LengthOutOfRange {
                    field: "rtr",
                    value: n,
                    max: MAX_RTR_ENTRIES,
                });
            }
            let mut rtr = Vec::with_capacity(n);
            for _ in 0..n {
                rtr.push(Seq::new(take_u64(buf)?));
            }
            Ok(Message::Token(Token {
                ring_id,
                round,
                seq,
                aru,
                aru_setter,
                fcc,
                rtr,
            }))
        }
        k if k == Kind::Join as u8 => {
            let sender = ParticipantId::new(take_u16(buf)?);
            let ring_seq = take_u64(buf)?;
            let proc_set = take_pid_list(buf)?;
            let fail_set = take_pid_list(buf)?;
            Ok(Message::Join(JoinMessage {
                sender,
                proc_set,
                fail_set,
                ring_seq,
            }))
        }
        k if k == Kind::Commit as u8 => {
            let ring_id = take_ring_id(buf)?;
            let hop = take_u32(buf)?;
            let n = take_u32(buf)? as usize;
            if n > MAX_MEMBERS {
                return Err(WireError::LengthOutOfRange {
                    field: "memb",
                    value: n,
                    max: MAX_MEMBERS,
                });
            }
            let mut memb = Vec::with_capacity(n);
            for _ in 0..n {
                let pid = ParticipantId::new(take_u16(buf)?);
                let old_ring_id = take_ring_id(buf)?;
                let my_aru = Seq::new(take_u64(buf)?);
                let high_seq = Seq::new(take_u64(buf)?);
                let safe_seq = Seq::new(take_u64(buf)?);
                let filled_raw = take_u8(buf)?;
                if filled_raw > 1 {
                    return Err(WireError::InvalidFlags(filled_raw));
                }
                memb.push(MemberInfo {
                    pid,
                    old_ring_id,
                    my_aru,
                    high_seq,
                    safe_seq,
                    filled: filled_raw == 1,
                });
            }
            Ok(Message::Commit(CommitToken { ring_id, memb, hop }))
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

fn put_ring_id(buf: &mut BytesMut, r: RingId) {
    buf.put_u16(r.representative().as_u16());
    buf.put_u64(r.ring_seq());
}

fn take_ring_id(buf: &mut &[u8]) -> Result<RingId, WireError> {
    let rep = ParticipantId::new(take_u16(buf)?);
    let ring_seq = take_u64(buf)?;
    Ok(RingId::new(rep, ring_seq))
}

fn take_pid_list(buf: &mut &[u8]) -> Result<Vec<ParticipantId>, WireError> {
    let n = take_u32(buf)? as usize;
    if n > MAX_MEMBERS {
        return Err(WireError::LengthOutOfRange {
            field: "pid list",
            value: n,
            max: MAX_MEMBERS,
        });
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(ParticipantId::new(take_u16(buf)?));
    }
    Ok(v)
}

fn ensure(buf: &[u8], n: usize) -> Result<(), WireError> {
    if buf.len() < n {
        Err(WireError::Truncated {
            needed: n - buf.len(),
        })
    } else {
        Ok(())
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    ensure(buf, 1)?;
    Ok(buf.get_u8())
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    ensure(buf, 2)?;
    Ok(buf.get_u16())
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    ensure(buf, 4)?;
    Ok(buf.get_u32())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    ensure(buf, 8)?;
    Ok(buf.get_u64())
}

fn take_bytes(buf: &mut &[u8], n: usize) -> Result<Bytes, WireError> {
    ensure(buf, n)?;
    let out = Bytes::copy_from_slice(&buf[..n]);
    buf.advance(n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingId {
        RingId::new(ParticipantId::new(3), 17)
    }

    fn sample_data(payload: &'static [u8]) -> DataMessage {
        DataMessage {
            ring_id: ring(),
            seq: Seq::new(99),
            pid: ParticipantId::new(7),
            round: Round::new(123),
            service: ServiceType::Safe,
            after_token: true,
            payload: Bytes::from_static(payload),
        }
    }

    fn sample_token() -> Token {
        Token {
            ring_id: ring(),
            round: Round::new(55),
            seq: Seq::new(1000),
            aru: Seq::new(990),
            aru_setter: Some(ParticipantId::new(4)),
            fcc: 37,
            rtr: vec![Seq::new(991), Seq::new(993)],
        }
    }

    #[test]
    fn data_roundtrip() {
        let m = Message::Data(sample_data(b"payload bytes"));
        let enc = encode(&m);
        assert_eq!(enc.len(), encoded_len(&m));
        assert_eq!(decode(&enc).unwrap(), m);
    }

    #[test]
    fn data_roundtrip_empty_payload() {
        let m = Message::Data(DataMessage {
            payload: Bytes::new(),
            after_token: false,
            ..sample_data(b"")
        });
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn token_roundtrip() {
        let m = Message::Token(sample_token());
        let enc = encode(&m);
        assert_eq!(enc.len(), encoded_len(&m));
        assert_eq!(decode(&enc).unwrap(), m);
    }

    #[test]
    fn token_roundtrip_no_setter_no_rtr() {
        let mut t = sample_token();
        t.aru_setter = None;
        t.rtr.clear();
        let m = Message::Token(t);
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn join_roundtrip() {
        let m = Message::Join(JoinMessage {
            sender: ParticipantId::new(2),
            proc_set: vec![ParticipantId::new(0), ParticipantId::new(2)],
            fail_set: vec![ParticipantId::new(9)],
            ring_seq: 21,
        });
        let enc = encode(&m);
        assert_eq!(enc.len(), encoded_len(&m));
        assert_eq!(decode(&enc).unwrap(), m);
    }

    #[test]
    fn commit_roundtrip() {
        let mut c = CommitToken::new(ring(), &[ParticipantId::new(0), ParticipantId::new(1)]);
        c.memb[0] = MemberInfo {
            pid: ParticipantId::new(0),
            old_ring_id: RingId::new(ParticipantId::new(0), 5),
            my_aru: Seq::new(44),
            high_seq: Seq::new(50),
            safe_seq: Seq::new(40),
            filled: true,
        };
        c.hop = 3;
        let m = Message::Commit(c);
        let enc = encode(&m);
        assert_eq!(enc.len(), encoded_len(&m));
        assert_eq!(decode(&enc).unwrap(), m);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let enc = encode(&Message::Token(sample_token()));
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} produced {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode(&Message::Token(sample_token())).to_vec();
        enc.push(0xAB);
        assert_eq!(decode(&enc).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert_eq!(decode(&[0x77]).unwrap_err(), WireError::UnknownKind(0x77));
        assert_eq!(decode(&[0]).unwrap_err(), WireError::UnknownKind(0));
    }

    #[test]
    fn invalid_service_is_rejected() {
        let mut enc = encode(&Message::Data(sample_data(b"x"))).to_vec();
        // service byte offset: kind(1) + ring(10) + seq(8) + pid(2) + round(8)
        enc[1 + 10 + 8 + 2 + 8] = 250;
        assert_eq!(decode(&enc).unwrap_err(), WireError::InvalidService(250));
    }

    #[test]
    fn invalid_flags_are_rejected() {
        let mut enc = encode(&Message::Data(sample_data(b"x"))).to_vec();
        enc[1 + 10 + 8 + 2 + 8 + 1] = 7;
        assert_eq!(decode(&enc).unwrap_err(), WireError::InvalidFlags(7));
    }

    #[test]
    fn oversized_rtr_count_is_rejected() {
        let mut t = sample_token();
        t.rtr.clear();
        let mut enc = encode(&Message::Token(t)).to_vec();
        let len = enc.len();
        // rtr count is the final u32 before the (empty) rtr list
        enc[len - 4..].copy_from_slice(&(MAX_RTR_ENTRIES as u32 + 1).to_be_bytes());
        assert!(matches!(
            decode(&enc).unwrap_err(),
            WireError::LengthOutOfRange { field: "rtr", .. }
        ));
    }

    #[test]
    fn oversized_payload_len_is_rejected() {
        let mut enc = encode(&Message::Data(sample_data(b""))).to_vec();
        let off = DATA_HEADER_LEN - 4;
        enc[off..off + 4].copy_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(
            decode(&enc).unwrap_err(),
            WireError::LengthOutOfRange {
                field: "payload",
                ..
            }
        ));
    }

    #[test]
    fn nonzero_setter_bytes_without_flag_are_rejected() {
        // Reproduces the frame the wire fuzzer minimised: a valid
        // setter-less token with one setter byte flipped. Before
        // hardening this decoded Ok (the setter bytes were read and
        // discarded) and re-encoded to different bytes.
        let mut t = sample_token();
        t.aru_setter = None;
        let mut enc = encode(&Message::Token(t)).to_vec();
        // setter bytes offset: kind(1) + ring(10) + round(8) + seq(8) +
        // aru(8) + has_setter(1)
        let off = 1 + 10 + 8 + 8 + 8 + 1;
        assert_eq!(enc[off - 1], 0, "has_setter flag must be clear");
        enc[off + 1] = 0x2A;
        assert_eq!(
            decode(&enc).unwrap_err(),
            WireError::NonCanonical {
                field: "aru_setter"
            }
        );
    }

    #[test]
    fn accepted_tokens_reencode_byte_exactly() {
        // With the non-canonical setter encoding rejected, decode is
        // injective on the accepted set: decode-then-encode must be the
        // identity on bytes, not merely on messages.
        for msg in [
            Message::Token(sample_token()),
            Message::Token(Token::initial(ring(), Seq::ZERO)),
            Message::Data(sample_data(b"abc")),
        ] {
            let enc = encode(&msg);
            let re = encode(&decode(&enc).unwrap());
            assert_eq!(enc, re);
        }
    }

    #[test]
    fn decode_from_leaves_trailing_bytes() {
        let mut enc = encode(&Message::Token(sample_token())).to_vec();
        enc.extend_from_slice(b"rest");
        let mut slice = enc.as_slice();
        let msg = decode_from(&mut slice).unwrap();
        assert_eq!(msg.kind_name(), "token");
        assert_eq!(slice, b"rest");
    }

    #[test]
    fn encode_to_scratch_discards_stale_bytes() {
        let mut scratch = BytesMut::new();
        scratch.extend_from_slice(b"stale garbage from a previous encode");
        let m = Message::Token(sample_token());
        let n = encode_to_scratch(&m, &mut scratch);
        assert_eq!(n, encoded_len(&m));
        assert_eq!(scratch.len(), n);
        assert_eq!(decode(&scratch).unwrap(), m);
        // Reuse for a different kind: still no contamination.
        let m2 = Message::Data(sample_data(b"fresh"));
        let n2 = encode_to_scratch(&m2, &mut scratch);
        assert_eq!(&scratch[..n2], &encode(&m2)[..]);
    }

    #[test]
    fn data_header_len_matches_encoding() {
        let m = Message::Data(sample_data(b""));
        assert_eq!(encode(&m).len(), DATA_HEADER_LEN);
    }

    #[test]
    fn wire_error_display_is_informative() {
        let e = WireError::Truncated { needed: 3 };
        assert!(e.to_string().contains("3 more bytes"));
        let e = WireError::LengthOutOfRange {
            field: "rtr",
            value: 10,
            max: 5,
        };
        assert!(e.to_string().contains("rtr"));
    }
}
