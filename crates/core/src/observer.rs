//! Protocol event observation: the hook that lets an environment watch
//! a [`Participant`](crate::Participant) without touching its
//! determinism.
//!
//! The sans-io core reads no clock and performs no I/O, which is what
//! makes every harness (simulator, UDP runtime, unit tests) replayable.
//! Observability must not break that, so the hook is designed around
//! two rules:
//!
//! * **Caller-injected time.** The core never timestamps anything. The
//!   embedding environment calls
//!   [`Participant::observe_now`](crate::Participant::observe_now) with
//!   whatever clock it owns — virtual nanoseconds in the simulator and
//!   nemesis harness, monotonic wall-clock nanoseconds in the UDP
//!   runtime — before feeding the participant an input. Every event
//!   emitted while handling that input carries the injected timestamp.
//! * **Free when disabled.** With no observer attached (the default)
//!   emission is a single branch on an `Option`; event payloads are
//!   never even constructed. Protocol behaviour is identical with and
//!   without an observer: observers receive copies of protocol facts
//!   and cannot feed anything back.
//!
//! [`ProtoEvent`] is deliberately flat (`Copy`, scalar fields only) so
//! a flight recorder can buffer millions of them without allocation.

use std::sync::Arc;

/// One protocol-level event, emitted as it happens.
///
/// Events carry raw integers (`Seq`/`Round`/`ParticipantId` unwrapped)
/// so they are `Copy` and trivially encodable; consumers that want the
/// typed views can rewrap them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoEvent {
    /// A regular token was accepted for processing.
    TokenRx {
        /// Round the received token closed (its `round` field).
        round: u64,
        /// Highest assigned sequence number on arrival.
        seq: u64,
        /// The token's all-received-up-to on arrival.
        aru: u64,
    },
    /// The updated token was handed to the successor.
    TokenTx {
        /// Round stamped on the outgoing token.
        round: u64,
        /// Highest assigned sequence number after this round's sends.
        seq: u64,
        /// New messages initiated this round.
        new_msgs: u32,
        /// Retransmission requests left on the outgoing token.
        rtr_len: u32,
    },
    /// A new message was multicast *before* the token (the overflow
    /// beyond the accelerated window).
    MsgPreToken {
        /// Sequence number assigned to the message.
        seq: u64,
    },
    /// A new message was multicast *after* the token (the accelerated
    /// portion).
    MsgPostToken {
        /// Sequence number assigned to the message.
        seq: u64,
    },
    /// This participant placed retransmission requests on the token.
    RetransRequested {
        /// How many sequence numbers it asked for this round.
        count: u32,
    },
    /// This participant answered a retransmission request.
    RetransAnswered {
        /// The re-multicast sequence number.
        seq: u64,
    },
    /// An ordered message was delivered to the application.
    Delivered {
        /// Total-order position.
        seq: u64,
        /// Raw id of the initiating participant.
        origin: u16,
        /// True for Safe-service deliveries (waited for stability).
        safe: bool,
    },
    /// The last sent token was retransmitted after a retransmission
    /// timeout.
    TokenRetransmit {
        /// Round of the retransmitted token.
        round: u64,
    },
    /// Normal operation was abandoned for a membership gather.
    GatherStarted {
        /// Raw ring sequence of the configuration being left.
        ring_seq: u64,
    },
    /// A new regular configuration was installed.
    ConfigInstalled {
        /// Raw ring sequence of the new configuration.
        ring_seq: u64,
        /// Number of members on the new ring.
        members: u16,
    },
    /// The adaptive controller installed a new timeout policy.
    TimeoutsAdapted {
        /// New token-loss timeout (ns).
        token_loss_ns: u64,
        /// New token-retransmit interval (ns).
        token_retransmit_ns: u64,
        /// New gather-consensus timeout (ns).
        consensus_ns: u64,
    },
    /// A member accrued a flap-damping penalty for departing the ring.
    MemberPenalized {
        /// Raw id of the penalized member.
        member: u16,
        /// Its accumulated penalty score.
        penalty: u32,
    },
    /// A member's penalty crossed the suppress threshold; it is
    /// quarantined out of future memberships until the score decays.
    MemberQuarantined {
        /// Raw id of the quarantined member.
        member: u16,
        /// Its score at quarantine time.
        penalty: u32,
    },
    /// A quarantined member's penalty decayed below the reuse
    /// threshold; it may join memberships again.
    MemberReinstated {
        /// Raw id of the reinstated member.
        member: u16,
    },
    /// The AIMD controller changed the effective accelerated window.
    AccelWindowChanged {
        /// Window before the change.
        from: u32,
        /// Window after the change (0 = original Ring behaviour).
        to: u32,
    },
    /// A new-ring data message arriving during recovery was dropped
    /// because the pending buffer hit `pending_data_limit`.
    RecoveryPendingDropped {
        /// Cumulative count of such drops at this participant.
        dropped: u64,
    },
    /// A recovery retransmission burst was cut short by
    /// `recovery_burst_limit`.
    RecoveryBurstTruncated {
        /// Retransmissions actually multicast in the truncated burst.
        sent: u32,
    },
    /// A durable log finished recovering from disk at startup.
    LogRecovered {
        /// Records recovered intact.
        records: u64,
        /// Bytes truncated from the torn tail (0 for a clean log).
        torn_bytes: u64,
    },
    /// Buffered durable-log records were lost because the shutdown
    /// flush failed.
    LogTailDropped {
        /// Records that had been appended but never reached disk.
        records: u64,
    },
}

impl ProtoEvent {
    /// Short stable name of the event kind, for logs and rendering.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoEvent::TokenRx { .. } => "token-rx",
            ProtoEvent::TokenTx { .. } => "token-tx",
            ProtoEvent::MsgPreToken { .. } => "msg-pre-token",
            ProtoEvent::MsgPostToken { .. } => "msg-post-token",
            ProtoEvent::RetransRequested { .. } => "retrans-requested",
            ProtoEvent::RetransAnswered { .. } => "retrans-answered",
            ProtoEvent::Delivered { .. } => "delivered",
            ProtoEvent::TokenRetransmit { .. } => "token-retransmit",
            ProtoEvent::GatherStarted { .. } => "gather-started",
            ProtoEvent::ConfigInstalled { .. } => "config-installed",
            ProtoEvent::TimeoutsAdapted { .. } => "timeouts-adapted",
            ProtoEvent::MemberPenalized { .. } => "member-penalized",
            ProtoEvent::MemberQuarantined { .. } => "member-quarantined",
            ProtoEvent::MemberReinstated { .. } => "member-reinstated",
            ProtoEvent::AccelWindowChanged { .. } => "accel-window-changed",
            ProtoEvent::RecoveryPendingDropped { .. } => "recovery-pending-dropped",
            ProtoEvent::RecoveryBurstTruncated { .. } => "recovery-burst-truncated",
            ProtoEvent::LogRecovered { .. } => "log-recovered",
            ProtoEvent::LogTailDropped { .. } => "log-tail-dropped",
        }
    }

    /// A stable numeric tag for the event kind (used in digests).
    pub fn tag(&self) -> u8 {
        match self {
            ProtoEvent::TokenRx { .. } => 1,
            ProtoEvent::TokenTx { .. } => 2,
            ProtoEvent::MsgPreToken { .. } => 3,
            ProtoEvent::MsgPostToken { .. } => 4,
            ProtoEvent::RetransRequested { .. } => 5,
            ProtoEvent::RetransAnswered { .. } => 6,
            ProtoEvent::Delivered { .. } => 7,
            ProtoEvent::TokenRetransmit { .. } => 8,
            ProtoEvent::GatherStarted { .. } => 9,
            ProtoEvent::ConfigInstalled { .. } => 10,
            ProtoEvent::TimeoutsAdapted { .. } => 11,
            ProtoEvent::MemberPenalized { .. } => 12,
            ProtoEvent::MemberQuarantined { .. } => 13,
            ProtoEvent::MemberReinstated { .. } => 14,
            ProtoEvent::AccelWindowChanged { .. } => 15,
            ProtoEvent::RecoveryPendingDropped { .. } => 16,
            ProtoEvent::RecoveryBurstTruncated { .. } => 17,
            ProtoEvent::LogRecovered { .. } => 18,
            ProtoEvent::LogTailDropped { .. } => 19,
        }
    }

    /// Encodes the event into a fixed little-endian byte form (tag,
    /// then each field widened to `u64`), feeding each chunk to `eat`.
    /// Used for digest computation; stable across runs and platforms.
    pub fn encode(&self, mut eat: impl FnMut(&[u8])) {
        eat(&[self.tag()]);
        let mut num = |v: u64| eat(&v.to_le_bytes());
        match *self {
            ProtoEvent::TokenRx { round, seq, aru } => {
                num(round);
                num(seq);
                num(aru);
            }
            ProtoEvent::TokenTx {
                round,
                seq,
                new_msgs,
                rtr_len,
            } => {
                num(round);
                num(seq);
                num(u64::from(new_msgs));
                num(u64::from(rtr_len));
            }
            ProtoEvent::MsgPreToken { seq } | ProtoEvent::MsgPostToken { seq } => num(seq),
            ProtoEvent::RetransRequested { count } => num(u64::from(count)),
            ProtoEvent::RetransAnswered { seq } => num(seq),
            ProtoEvent::Delivered { seq, origin, safe } => {
                num(seq);
                num(u64::from(origin));
                num(u64::from(safe));
            }
            ProtoEvent::TokenRetransmit { round } => num(round),
            ProtoEvent::GatherStarted { ring_seq } => num(ring_seq),
            ProtoEvent::ConfigInstalled { ring_seq, members } => {
                num(ring_seq);
                num(u64::from(members));
            }
            ProtoEvent::TimeoutsAdapted {
                token_loss_ns,
                token_retransmit_ns,
                consensus_ns,
            } => {
                num(token_loss_ns);
                num(token_retransmit_ns);
                num(consensus_ns);
            }
            ProtoEvent::MemberPenalized { member, penalty }
            | ProtoEvent::MemberQuarantined { member, penalty } => {
                num(u64::from(member));
                num(u64::from(penalty));
            }
            ProtoEvent::MemberReinstated { member } => num(u64::from(member)),
            ProtoEvent::AccelWindowChanged { from, to } => {
                num(u64::from(from));
                num(u64::from(to));
            }
            ProtoEvent::RecoveryPendingDropped { dropped } => num(dropped),
            ProtoEvent::RecoveryBurstTruncated { sent } => num(u64::from(sent)),
            ProtoEvent::LogRecovered {
                records,
                torn_bytes,
            } => {
                num(records);
                num(torn_bytes);
            }
            ProtoEvent::LogTailDropped { records } => num(records),
        }
    }
}

/// A sink for protocol events.
///
/// Implementations take `&self`: an observer shared between a
/// participant and an exporter (HTTP endpoint, dump-on-failure harness)
/// must synchronize internally. The core calls it synchronously from
/// the handling path, so implementations should be cheap — record and
/// return.
pub trait Observer: Send + Sync {
    /// Called once per protocol event. `at` is the caller-injected
    /// timestamp (nanoseconds on the embedding environment's clock)
    /// that was in force when the input being handled arrived.
    fn on_event(&self, at: u64, ev: &ProtoEvent);
}

/// The participant's observer slot: an optional shared observer plus
/// the caller-injected timestamp.
#[derive(Clone, Default)]
pub(crate) struct ObserverSlot {
    obs: Option<Arc<dyn Observer>>,
    now: u64,
}

impl ObserverSlot {
    /// Attaches an observer (replacing any previous one).
    pub(crate) fn set(&mut self, obs: Arc<dyn Observer>) {
        self.obs = Some(obs);
    }

    /// Detaches the observer.
    pub(crate) fn clear(&mut self) {
        self.obs = None;
    }

    /// True if an observer is attached.
    pub(crate) fn is_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Updates the injected timestamp.
    pub(crate) fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Emits an event. The closure runs only when an observer is
    /// attached, so the disabled path never constructs the payload.
    #[inline]
    pub(crate) fn emit(&self, f: impl FnOnce() -> ProtoEvent) {
        if let Some(obs) = &self.obs {
            obs.on_event(self.now, &f());
        }
    }
}

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSlot")
            .field("enabled", &self.obs.is_some())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Sink(Mutex<Vec<(u64, ProtoEvent)>>);

    impl Observer for Sink {
        fn on_event(&self, at: u64, ev: &ProtoEvent) {
            self.0.lock().unwrap().push((at, *ev));
        }
    }

    #[test]
    fn slot_emits_with_injected_timestamp() {
        let sink = Arc::new(Sink::default());
        let mut slot = ObserverSlot::default();
        assert!(!slot.is_enabled());
        slot.emit(|| unreachable!("disabled slot must not build events"));
        slot.set(sink.clone());
        slot.set_now(42);
        slot.emit(|| ProtoEvent::TokenRx {
            round: 1,
            seq: 2,
            aru: 3,
        });
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 42);
        assert_eq!(got[0].1.name(), "token-rx");
    }

    #[test]
    fn encode_is_stable_and_distinguishes_kinds() {
        let collect = |ev: ProtoEvent| {
            let mut bytes = Vec::new();
            ev.encode(|b| bytes.extend_from_slice(b));
            bytes
        };
        let a = collect(ProtoEvent::MsgPreToken { seq: 7 });
        let b = collect(ProtoEvent::MsgPostToken { seq: 7 });
        assert_ne!(a, b, "pre/post token sends must encode differently");
        assert_eq!(a, collect(ProtoEvent::MsgPreToken { seq: 7 }));
        assert_eq!(a[0], 3);
        assert_eq!(&a[1..9], &7u64.to_le_bytes());
    }
}
