//! Protocol configuration: flow-control windows, the accelerated window,
//! and the priority-switching method.

use serde::{Deserialize, Serialize};

/// Which protocol the configuration describes.
///
/// The paper's key observation is that the original Totem Ring protocol
/// is the degenerate point of the Accelerated Ring design space: with an
/// accelerated window of zero and the conservative priority-switching
/// method, the accelerated protocol *is* the original protocol
/// (Section III-D). We keep the variant explicit so benchmarks and logs
/// can name which protocol they measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ProtocolVariant {
    /// The original Totem single-ring ordering protocol: all multicasts
    /// complete before the token is passed.
    Original,
    /// The Accelerated Ring protocol: up to `accelerated_window`
    /// messages may be multicast after passing the token.
    #[default]
    Accelerated,
}

impl core::fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolVariant::Original => f.write_str("original"),
            ProtocolVariant::Accelerated => f.write_str("accelerated"),
        }
    }
}

/// The two methods of deciding when to raise the token's processing
/// priority again after handling a token (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PriorityMethod {
    /// Method 1: raise token priority as soon as *any* data message the
    /// immediate predecessor sent in the next round is processed.
    /// Maximizes token speed; used by the paper's prototypes.
    #[default]
    Aggressive,
    /// Method 2: wait for a data message the predecessor sent in the
    /// next round *after* passing the token (its post-token phase).
    /// Slightly slower token, fewer unprocessed-data pile-ups; used by
    /// the production Spread implementation. With an accelerated window
    /// of zero this method reproduces the original Ring protocol.
    Conservative,
}

impl core::fmt::Display for PriorityMethod {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PriorityMethod::Aggressive => f.write_str("method-1 (aggressive)"),
            PriorityMethod::Conservative => f.write_str("method-2 (conservative)"),
        }
    }
}

/// Membership flap damping: per-member penalty scores with exponential
/// decay (Spread/Corosync-style route damping).
///
/// Every time a member drops out of an installed ring it accrues
/// `penalty_per_flap`; once its score reaches `suppress_threshold` the
/// member is *quarantined* — its joins and merge-triggering traffic are
/// ignored and it is placed in the fail set of every gather — until the
/// score decays below `reuse_threshold`. Scores halve every
/// `half_life_rounds` handled tokens, so decay is driven by protocol
/// rounds, never by a clock, preserving the sans-io core's determinism.
/// Disabled by default: one marginal link can then thrash the whole
/// ring through endless gather/commit/recovery cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapDampingConfig {
    /// Master switch; when false all other fields are ignored.
    pub enabled: bool,
    /// Penalty accrued each time the member departs an installed ring.
    pub penalty_per_flap: u32,
    /// Score at which the member is quarantined.
    pub suppress_threshold: u32,
    /// Score below which a quarantined member is reinstated.
    pub reuse_threshold: u32,
    /// Handled-token rounds per penalty half-life (deterministic,
    /// round-based decay).
    pub half_life_rounds: u64,
    /// Hard cap on an accumulated score (bounds reinstatement delay).
    pub max_penalty: u32,
}

impl Default for FlapDampingConfig {
    fn default() -> Self {
        FlapDampingConfig {
            enabled: false,
            penalty_per_flap: 1000,
            suppress_threshold: 2500,
            reuse_threshold: 1000,
            half_life_rounds: 4096,
            max_penalty: 8000,
        }
    }
}

impl FlapDampingConfig {
    /// The default damping constants with the feature switched on.
    pub fn enabled() -> FlapDampingConfig {
        FlapDampingConfig {
            enabled: true,
            ..FlapDampingConfig::default()
        }
    }
}

/// AIMD degradation of the accelerated window under retransmission
/// pressure.
///
/// A round is *pressured* when the received token carries at least
/// `pressure_threshold` retransmission requests. After `pressure_rounds`
/// consecutive pressured rounds the effective accelerated window halves
/// (multiplicative decrease, toward 0 — which is exactly the original
/// Ring protocol per the paper, so acceleration can never amplify a
/// lossy network's retransmission storm); after `recovery_rounds`
/// consecutive clean rounds it grows by one (additive increase) back up
/// to the configured `accelerated_window`. Disabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AimdConfig {
    /// Master switch; when false the configured window is always used.
    pub enabled: bool,
    /// Inbound-token rtr volume at which a round counts as pressured.
    pub pressure_threshold: u32,
    /// Consecutive pressured rounds before a multiplicative decrease.
    pub pressure_rounds: u32,
    /// Consecutive clean rounds before an additive increase.
    pub recovery_rounds: u32,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            enabled: false,
            pressure_threshold: 4,
            pressure_rounds: 2,
            recovery_rounds: 8,
        }
    }
}

impl AimdConfig {
    /// The default AIMD constants with the feature switched on.
    pub fn enabled() -> AimdConfig {
        AimdConfig {
            enabled: true,
            ..AimdConfig::default()
        }
    }
}

/// Tunable parameters of the ordering protocol.
///
/// The defaults correspond to the paper's accelerated configuration for
/// an 8-participant data-center ring; [`ProtocolConfig::original`]
/// produces the baseline Totem Ring configuration.
///
/// ```
/// use ar_core::{ProtocolConfig, ProtocolVariant};
///
/// let cfg = ProtocolConfig::accelerated()
///     .with_personal_window(40)
///     .with_accelerated_window(25);
/// assert_eq!(cfg.variant, ProtocolVariant::Accelerated);
/// assert_eq!(cfg.personal_window, 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Which protocol this configuration describes.
    pub variant: ProtocolVariant,
    /// Maximum number of *new* messages one participant may initiate in
    /// a single token round (`Personal_window`).
    pub personal_window: u32,
    /// Maximum number of multicasts (new + retransmissions) that may be
    /// initiated ring-wide in a single round (`Global_window`).
    pub global_window: u32,
    /// Maximum number of messages a participant may multicast *after*
    /// passing the token (`Accelerated_window`). Zero disables
    /// acceleration and recovers the original protocol's send pattern.
    pub accelerated_window: u32,
    /// Maximum gap between the highest assigned sequence number and the
    /// global all-received-up-to (`Max_seq_gap`). Bounds the number of
    /// undelivered messages buffered anywhere in the ring.
    pub max_seq_gap: u64,
    /// When the token becomes high-priority again after being handled.
    pub priority_method: PriorityMethod,
    /// Maximum new-ring data messages buffered while still recovering;
    /// overflow is counted and reported, not silently dropped.
    pub pending_data_limit: u32,
    /// Maximum recovery retransmissions multicast per commit-token
    /// visit; truncation is counted and reported.
    pub recovery_burst_limit: u32,
    /// Membership flap damping (off by default).
    pub flap_damping: FlapDampingConfig,
    /// AIMD accelerated-window degradation (off by default).
    pub accel_aimd: AimdConfig,
}

impl ProtocolConfig {
    /// The accelerated protocol with the paper's default tuning for an
    /// 8-participant ring.
    pub fn accelerated() -> ProtocolConfig {
        ProtocolConfig {
            variant: ProtocolVariant::Accelerated,
            personal_window: 30,
            global_window: 200,
            accelerated_window: 20,
            max_seq_gap: 1000,
            priority_method: PriorityMethod::Aggressive,
            pending_data_limit: 65_536,
            recovery_burst_limit: 1024,
            flap_damping: FlapDampingConfig::default(),
            accel_aimd: AimdConfig::default(),
        }
    }

    /// The original Totem Ring protocol baseline: no post-token
    /// multicasting and the conservative priority method. Per the paper
    /// (Section III-D), this configuration behaves identically to the
    /// original Ring protocol.
    pub fn original() -> ProtocolConfig {
        ProtocolConfig {
            variant: ProtocolVariant::Original,
            personal_window: 30,
            global_window: 200,
            accelerated_window: 0,
            max_seq_gap: 1000,
            priority_method: PriorityMethod::Conservative,
            pending_data_limit: 65_536,
            recovery_burst_limit: 1024,
            flap_damping: FlapDampingConfig::default(),
            accel_aimd: AimdConfig::default(),
        }
    }

    /// Sets `personal_window`.
    #[must_use]
    pub fn with_personal_window(mut self, w: u32) -> Self {
        self.personal_window = w;
        self
    }

    /// Sets `global_window`.
    #[must_use]
    pub fn with_global_window(mut self, w: u32) -> Self {
        self.global_window = w;
        self
    }

    /// Sets `accelerated_window`. Note that a non-zero accelerated
    /// window on a [`ProtocolVariant::Original`] configuration is
    /// rejected by [`validate`](Self::validate).
    #[must_use]
    pub fn with_accelerated_window(mut self, w: u32) -> Self {
        self.accelerated_window = w;
        self
    }

    /// Sets `max_seq_gap`.
    #[must_use]
    pub fn with_max_seq_gap(mut self, gap: u64) -> Self {
        self.max_seq_gap = gap;
        self
    }

    /// Sets the priority-switching method.
    #[must_use]
    pub fn with_priority_method(mut self, m: PriorityMethod) -> Self {
        self.priority_method = m;
        self
    }

    /// Sets `pending_data_limit`.
    #[must_use]
    pub fn with_pending_data_limit(mut self, limit: u32) -> Self {
        self.pending_data_limit = limit;
        self
    }

    /// Sets `recovery_burst_limit`.
    #[must_use]
    pub fn with_recovery_burst_limit(mut self, limit: u32) -> Self {
        self.recovery_burst_limit = limit;
        self
    }

    /// Sets the flap-damping policy.
    #[must_use]
    pub fn with_flap_damping(mut self, d: FlapDampingConfig) -> Self {
        self.flap_damping = d;
        self
    }

    /// Sets the AIMD accelerated-window degradation policy.
    #[must_use]
    pub fn with_accel_aimd(mut self, a: AimdConfig) -> Self {
        self.accel_aimd = a;
        self
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any window is zero where it must not
    /// be, if the personal window exceeds the global window, or if an
    /// `Original` variant carries a non-zero accelerated window.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.personal_window == 0 {
            return Err(ConfigError::ZeroWindow("personal_window"));
        }
        if self.global_window == 0 {
            return Err(ConfigError::ZeroWindow("global_window"));
        }
        if self.max_seq_gap == 0 {
            return Err(ConfigError::ZeroWindow("max_seq_gap"));
        }
        if self.personal_window > self.global_window {
            return Err(ConfigError::PersonalExceedsGlobal {
                personal: self.personal_window,
                global: self.global_window,
            });
        }
        if self.variant == ProtocolVariant::Original && self.accelerated_window != 0 {
            return Err(ConfigError::OriginalWithAcceleration(
                self.accelerated_window,
            ));
        }
        if self.pending_data_limit == 0 {
            return Err(ConfigError::ZeroWindow("pending_data_limit"));
        }
        if self.recovery_burst_limit == 0 {
            return Err(ConfigError::ZeroWindow("recovery_burst_limit"));
        }
        if self.flap_damping.enabled {
            let d = &self.flap_damping;
            if d.penalty_per_flap == 0 {
                return Err(ConfigError::ZeroWindow("penalty_per_flap"));
            }
            if d.suppress_threshold == 0 {
                return Err(ConfigError::ZeroWindow("suppress_threshold"));
            }
            if d.half_life_rounds == 0 {
                return Err(ConfigError::ZeroWindow("half_life_rounds"));
            }
            if d.reuse_threshold > d.suppress_threshold {
                return Err(ConfigError::DegradationPolicy(
                    "reuse_threshold must not exceed suppress_threshold",
                ));
            }
            if d.max_penalty < d.suppress_threshold {
                return Err(ConfigError::DegradationPolicy(
                    "max_penalty must be at least suppress_threshold",
                ));
            }
        }
        if self.accel_aimd.enabled {
            let a = &self.accel_aimd;
            if a.pressure_threshold == 0 {
                return Err(ConfigError::ZeroWindow("pressure_threshold"));
            }
            if a.pressure_rounds == 0 {
                return Err(ConfigError::ZeroWindow("pressure_rounds"));
            }
            if a.recovery_rounds == 0 {
                return Err(ConfigError::ZeroWindow("recovery_rounds"));
            }
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::accelerated()
    }
}

/// Errors produced by [`ProtocolConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A window parameter that must be positive was zero.
    ZeroWindow(&'static str),
    /// `personal_window` exceeded `global_window`.
    PersonalExceedsGlobal {
        /// The personal window value.
        personal: u32,
        /// The global window value.
        global: u32,
    },
    /// An `Original`-variant configuration had a non-zero accelerated
    /// window.
    OriginalWithAcceleration(u32),
    /// A flap-damping or AIMD parameter relation is inconsistent.
    DegradationPolicy(&'static str),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroWindow(name) => write!(f, "{name} must be positive"),
            ConfigError::PersonalExceedsGlobal { personal, global } => write!(
                f,
                "personal_window ({personal}) exceeds global_window ({global})"
            ),
            ConfigError::OriginalWithAcceleration(w) => write!(
                f,
                "original protocol variant cannot have accelerated_window = {w}"
            ),
            ConfigError::DegradationPolicy(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ProtocolConfig::accelerated().validate().unwrap();
        ProtocolConfig::original().validate().unwrap();
        ProtocolConfig::default().validate().unwrap();
    }

    #[test]
    fn default_is_accelerated() {
        assert_eq!(
            ProtocolConfig::default().variant,
            ProtocolVariant::Accelerated
        );
    }

    #[test]
    fn original_has_zero_accel_window_and_conservative_priority() {
        let cfg = ProtocolConfig::original();
        assert_eq!(cfg.accelerated_window, 0);
        assert_eq!(cfg.priority_method, PriorityMethod::Conservative);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(5)
            .with_global_window(50)
            .with_accelerated_window(3)
            .with_max_seq_gap(77)
            .with_priority_method(PriorityMethod::Conservative);
        assert_eq!(cfg.personal_window, 5);
        assert_eq!(cfg.global_window, 50);
        assert_eq!(cfg.accelerated_window, 3);
        assert_eq!(cfg.max_seq_gap, 77);
        assert_eq!(cfg.priority_method, PriorityMethod::Conservative);
    }

    #[test]
    fn zero_windows_are_rejected() {
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_personal_window(0)
                .validate(),
            Err(ConfigError::ZeroWindow("personal_window"))
        );
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_global_window(0)
                .validate(),
            Err(ConfigError::ZeroWindow("global_window"))
        );
        assert_eq!(
            ProtocolConfig::accelerated().with_max_seq_gap(0).validate(),
            Err(ConfigError::ZeroWindow("max_seq_gap"))
        );
    }

    #[test]
    fn personal_window_must_fit_global() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(100)
            .with_global_window(50);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::PersonalExceedsGlobal { .. })
        ));
    }

    #[test]
    fn original_variant_rejects_acceleration() {
        let cfg = ProtocolConfig::original().with_accelerated_window(4);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::OriginalWithAcceleration(4))
        );
    }

    #[test]
    fn recovery_limits_must_be_positive() {
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_pending_data_limit(0)
                .validate(),
            Err(ConfigError::ZeroWindow("pending_data_limit"))
        );
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_recovery_burst_limit(0)
                .validate(),
            Err(ConfigError::ZeroWindow("recovery_burst_limit"))
        );
    }

    #[test]
    fn damping_and_aimd_policies_validate_only_when_enabled() {
        // Nonsensical values are fine while disabled...
        let bad = FlapDampingConfig {
            enabled: false,
            penalty_per_flap: 0,
            suppress_threshold: 0,
            reuse_threshold: 9,
            half_life_rounds: 0,
            max_penalty: 0,
        };
        ProtocolConfig::accelerated()
            .with_flap_damping(bad)
            .validate()
            .unwrap();
        // ...and rejected once enabled.
        let bad = FlapDampingConfig {
            enabled: true,
            ..bad
        };
        assert!(ProtocolConfig::accelerated()
            .with_flap_damping(bad)
            .validate()
            .is_err());
        let inverted = FlapDampingConfig {
            reuse_threshold: 5000,
            ..FlapDampingConfig::enabled()
        };
        assert!(matches!(
            ProtocolConfig::accelerated()
                .with_flap_damping(inverted)
                .validate(),
            Err(ConfigError::DegradationPolicy(_))
        ));
        ProtocolConfig::accelerated()
            .with_flap_damping(FlapDampingConfig::enabled())
            .validate()
            .unwrap();

        let zero_aimd = AimdConfig {
            enabled: true,
            pressure_threshold: 0,
            ..AimdConfig::default()
        };
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_accel_aimd(zero_aimd)
                .validate(),
            Err(ConfigError::ZeroWindow("pressure_threshold"))
        );
        ProtocolConfig::accelerated()
            .with_accel_aimd(AimdConfig::enabled())
            .validate()
            .unwrap();
    }

    #[test]
    fn config_error_display() {
        assert!(ConfigError::ZeroWindow("personal_window")
            .to_string()
            .contains("personal_window"));
        assert!(ConfigError::OriginalWithAcceleration(3)
            .to_string()
            .contains("accelerated_window"));
    }
}
