//! Protocol configuration: flow-control windows, the accelerated window,
//! and the priority-switching method.

use serde::{Deserialize, Serialize};

/// Which protocol the configuration describes.
///
/// The paper's key observation is that the original Totem Ring protocol
/// is the degenerate point of the Accelerated Ring design space: with an
/// accelerated window of zero and the conservative priority-switching
/// method, the accelerated protocol *is* the original protocol
/// (Section III-D). We keep the variant explicit so benchmarks and logs
/// can name which protocol they measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ProtocolVariant {
    /// The original Totem single-ring ordering protocol: all multicasts
    /// complete before the token is passed.
    Original,
    /// The Accelerated Ring protocol: up to `accelerated_window`
    /// messages may be multicast after passing the token.
    #[default]
    Accelerated,
}

impl core::fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolVariant::Original => f.write_str("original"),
            ProtocolVariant::Accelerated => f.write_str("accelerated"),
        }
    }
}

/// The two methods of deciding when to raise the token's processing
/// priority again after handling a token (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PriorityMethod {
    /// Method 1: raise token priority as soon as *any* data message the
    /// immediate predecessor sent in the next round is processed.
    /// Maximizes token speed; used by the paper's prototypes.
    #[default]
    Aggressive,
    /// Method 2: wait for a data message the predecessor sent in the
    /// next round *after* passing the token (its post-token phase).
    /// Slightly slower token, fewer unprocessed-data pile-ups; used by
    /// the production Spread implementation. With an accelerated window
    /// of zero this method reproduces the original Ring protocol.
    Conservative,
}

impl core::fmt::Display for PriorityMethod {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PriorityMethod::Aggressive => f.write_str("method-1 (aggressive)"),
            PriorityMethod::Conservative => f.write_str("method-2 (conservative)"),
        }
    }
}

/// Tunable parameters of the ordering protocol.
///
/// The defaults correspond to the paper's accelerated configuration for
/// an 8-participant data-center ring; [`ProtocolConfig::original`]
/// produces the baseline Totem Ring configuration.
///
/// ```
/// use ar_core::{ProtocolConfig, ProtocolVariant};
///
/// let cfg = ProtocolConfig::accelerated()
///     .with_personal_window(40)
///     .with_accelerated_window(25);
/// assert_eq!(cfg.variant, ProtocolVariant::Accelerated);
/// assert_eq!(cfg.personal_window, 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Which protocol this configuration describes.
    pub variant: ProtocolVariant,
    /// Maximum number of *new* messages one participant may initiate in
    /// a single token round (`Personal_window`).
    pub personal_window: u32,
    /// Maximum number of multicasts (new + retransmissions) that may be
    /// initiated ring-wide in a single round (`Global_window`).
    pub global_window: u32,
    /// Maximum number of messages a participant may multicast *after*
    /// passing the token (`Accelerated_window`). Zero disables
    /// acceleration and recovers the original protocol's send pattern.
    pub accelerated_window: u32,
    /// Maximum gap between the highest assigned sequence number and the
    /// global all-received-up-to (`Max_seq_gap`). Bounds the number of
    /// undelivered messages buffered anywhere in the ring.
    pub max_seq_gap: u64,
    /// When the token becomes high-priority again after being handled.
    pub priority_method: PriorityMethod,
}

impl ProtocolConfig {
    /// The accelerated protocol with the paper's default tuning for an
    /// 8-participant ring.
    pub fn accelerated() -> ProtocolConfig {
        ProtocolConfig {
            variant: ProtocolVariant::Accelerated,
            personal_window: 30,
            global_window: 200,
            accelerated_window: 20,
            max_seq_gap: 1000,
            priority_method: PriorityMethod::Aggressive,
        }
    }

    /// The original Totem Ring protocol baseline: no post-token
    /// multicasting and the conservative priority method. Per the paper
    /// (Section III-D), this configuration behaves identically to the
    /// original Ring protocol.
    pub fn original() -> ProtocolConfig {
        ProtocolConfig {
            variant: ProtocolVariant::Original,
            personal_window: 30,
            global_window: 200,
            accelerated_window: 0,
            max_seq_gap: 1000,
            priority_method: PriorityMethod::Conservative,
        }
    }

    /// Sets `personal_window`.
    #[must_use]
    pub fn with_personal_window(mut self, w: u32) -> Self {
        self.personal_window = w;
        self
    }

    /// Sets `global_window`.
    #[must_use]
    pub fn with_global_window(mut self, w: u32) -> Self {
        self.global_window = w;
        self
    }

    /// Sets `accelerated_window`. Note that a non-zero accelerated
    /// window on a [`ProtocolVariant::Original`] configuration is
    /// rejected by [`validate`](Self::validate).
    #[must_use]
    pub fn with_accelerated_window(mut self, w: u32) -> Self {
        self.accelerated_window = w;
        self
    }

    /// Sets `max_seq_gap`.
    #[must_use]
    pub fn with_max_seq_gap(mut self, gap: u64) -> Self {
        self.max_seq_gap = gap;
        self
    }

    /// Sets the priority-switching method.
    #[must_use]
    pub fn with_priority_method(mut self, m: PriorityMethod) -> Self {
        self.priority_method = m;
        self
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any window is zero where it must not
    /// be, if the personal window exceeds the global window, or if an
    /// `Original` variant carries a non-zero accelerated window.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.personal_window == 0 {
            return Err(ConfigError::ZeroWindow("personal_window"));
        }
        if self.global_window == 0 {
            return Err(ConfigError::ZeroWindow("global_window"));
        }
        if self.max_seq_gap == 0 {
            return Err(ConfigError::ZeroWindow("max_seq_gap"));
        }
        if self.personal_window > self.global_window {
            return Err(ConfigError::PersonalExceedsGlobal {
                personal: self.personal_window,
                global: self.global_window,
            });
        }
        if self.variant == ProtocolVariant::Original && self.accelerated_window != 0 {
            return Err(ConfigError::OriginalWithAcceleration(
                self.accelerated_window,
            ));
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::accelerated()
    }
}

/// Errors produced by [`ProtocolConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A window parameter that must be positive was zero.
    ZeroWindow(&'static str),
    /// `personal_window` exceeded `global_window`.
    PersonalExceedsGlobal {
        /// The personal window value.
        personal: u32,
        /// The global window value.
        global: u32,
    },
    /// An `Original`-variant configuration had a non-zero accelerated
    /// window.
    OriginalWithAcceleration(u32),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroWindow(name) => write!(f, "{name} must be positive"),
            ConfigError::PersonalExceedsGlobal { personal, global } => write!(
                f,
                "personal_window ({personal}) exceeds global_window ({global})"
            ),
            ConfigError::OriginalWithAcceleration(w) => write!(
                f,
                "original protocol variant cannot have accelerated_window = {w}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ProtocolConfig::accelerated().validate().unwrap();
        ProtocolConfig::original().validate().unwrap();
        ProtocolConfig::default().validate().unwrap();
    }

    #[test]
    fn default_is_accelerated() {
        assert_eq!(
            ProtocolConfig::default().variant,
            ProtocolVariant::Accelerated
        );
    }

    #[test]
    fn original_has_zero_accel_window_and_conservative_priority() {
        let cfg = ProtocolConfig::original();
        assert_eq!(cfg.accelerated_window, 0);
        assert_eq!(cfg.priority_method, PriorityMethod::Conservative);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(5)
            .with_global_window(50)
            .with_accelerated_window(3)
            .with_max_seq_gap(77)
            .with_priority_method(PriorityMethod::Conservative);
        assert_eq!(cfg.personal_window, 5);
        assert_eq!(cfg.global_window, 50);
        assert_eq!(cfg.accelerated_window, 3);
        assert_eq!(cfg.max_seq_gap, 77);
        assert_eq!(cfg.priority_method, PriorityMethod::Conservative);
    }

    #[test]
    fn zero_windows_are_rejected() {
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_personal_window(0)
                .validate(),
            Err(ConfigError::ZeroWindow("personal_window"))
        );
        assert_eq!(
            ProtocolConfig::accelerated()
                .with_global_window(0)
                .validate(),
            Err(ConfigError::ZeroWindow("global_window"))
        );
        assert_eq!(
            ProtocolConfig::accelerated().with_max_seq_gap(0).validate(),
            Err(ConfigError::ZeroWindow("max_seq_gap"))
        );
    }

    #[test]
    fn personal_window_must_fit_global() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(100)
            .with_global_window(50);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::PersonalExceedsGlobal { .. })
        ));
    }

    #[test]
    fn original_variant_rejects_acceleration() {
        let cfg = ProtocolConfig::original().with_accelerated_window(4);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::OriginalWithAcceleration(4))
        );
    }

    #[test]
    fn config_error_display() {
        assert!(ConfigError::ZeroWindow("personal_window")
            .to_string()
            .contains("personal_window"));
        assert!(ConfigError::OriginalWithAcceleration(3)
            .to_string()
            .contains("accelerated_window"));
    }
}
