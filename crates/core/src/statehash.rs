//! Deterministic hashing of protocol state, for state-space
//! exploration.
//!
//! The bounded explorer (`ar-explore`) enumerates interleavings of
//! message deliveries and timer firings, and needs to recognise when
//! two different schedules reach the *same* global state so the
//! duplicated frontier can be pruned. [`StateHash`] provides that
//! fingerprint: a stable FNV-1a digest over every field of a value
//! that can influence future protocol behaviour.
//!
//! What is — deliberately — **excluded** from a participant's hash:
//!
//! * statistics counters ([`crate::stats::ParticipantStats`]): they
//!   record history but never feed back into a decision;
//! * the observer slot: observers receive copies of facts and cannot
//!   influence the state machine;
//! * the priority tracker: it only produces the advisory
//!   [`crate::priority::PriorityMode`] hint for environments that poll
//!   it, never an [`crate::actions::Action`];
//! * the protocol configuration: it is immutable for the lifetime of a
//!   run, so explorers compare states within one configuration anyway
//!   (the *mutable* timeout policy, which `adapt_timeouts` can replace,
//!   **is** hashed).
//!
//! The digest is not a cryptographic commitment: collisions are
//! possible (at the usual 2^-64-per-pair rate) and acceptable — a
//! collision makes the explorer skip a state it has not truly seen,
//! which costs coverage, not soundness of reported violations (every
//! reported violation is re-validated by replay).

/// An incremental FNV-1a (64-bit) hasher with a fixed, documented
/// byte-feeding discipline, so hashes are stable across processes and
/// platforms.
#[derive(Debug, Clone)]
pub struct StateHasher {
    h: u64,
}

impl StateHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> StateHasher {
        StateHasher {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0100_0000_01b3);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` for cross-platform stability.
    pub fn write_len(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

/// A deterministic fingerprint of protocol-relevant state.
///
/// Implementations must feed **every field that can influence future
/// behaviour** and nothing environment-specific, and must always feed
/// fields in the same order. Collection fields are length-prefixed so
/// that adjacent collections cannot alias (`[a] ++ []` hashes
/// differently from `[] ++ [a]`).
pub trait StateHash {
    /// Feeds this value's protocol-relevant state into `h`.
    fn state_hash_into(&self, h: &mut StateHasher);

    /// Convenience: the standalone digest of this value.
    fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        self.state_hash_into(&mut h);
        h.finish()
    }
}

use crate::message::{CommitToken, DataMessage, JoinMessage, MemberInfo, Token};
use crate::participant::TimeoutConfig;
use crate::types::{ParticipantId, RingId, Round, Seq, ServiceType};
use crate::wire::Message;

impl StateHash for ParticipantId {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u16(self.as_u16());
    }
}

impl StateHash for Seq {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u64(self.as_u64());
    }
}

impl StateHash for Round {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u64(self.as_u64());
    }
}

impl StateHash for RingId {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u16(self.representative().as_u16());
        h.write_u64(self.ring_seq());
    }
}

impl StateHash for ServiceType {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u8(self.as_u8());
    }
}

impl StateHash for TimeoutConfig {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u64(self.token_loss);
        h.write_u64(self.token_retransmit);
        h.write_u64(self.join);
        h.write_u64(self.consensus);
        h.write_u64(self.commit);
        h.write_u32(self.token_retransmit_limit);
    }
}

impl StateHash for DataMessage {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.ring_id.state_hash_into(h);
        self.seq.state_hash_into(h);
        self.pid.state_hash_into(h);
        self.round.state_hash_into(h);
        self.service.state_hash_into(h);
        h.write_bool(self.after_token);
        h.write_len(self.payload.len());
        h.write(&self.payload);
    }
}

impl StateHash for Token {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.ring_id.state_hash_into(h);
        self.round.state_hash_into(h);
        self.seq.state_hash_into(h);
        self.aru.state_hash_into(h);
        match self.aru_setter {
            Some(p) => {
                h.write_u8(1);
                p.state_hash_into(h);
            }
            None => h.write_u8(0),
        }
        h.write_u32(self.fcc);
        h.write_len(self.rtr.len());
        for s in &self.rtr {
            s.state_hash_into(h);
        }
    }
}

impl StateHash for JoinMessage {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.sender.state_hash_into(h);
        h.write_u64(self.ring_seq);
        h.write_len(self.proc_set.len());
        for p in &self.proc_set {
            p.state_hash_into(h);
        }
        h.write_len(self.fail_set.len());
        for p in &self.fail_set {
            p.state_hash_into(h);
        }
    }
}

impl StateHash for MemberInfo {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.pid.state_hash_into(h);
        self.old_ring_id.state_hash_into(h);
        self.my_aru.state_hash_into(h);
        self.high_seq.state_hash_into(h);
        self.safe_seq.state_hash_into(h);
        h.write_bool(self.filled);
    }
}

impl StateHash for CommitToken {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.ring_id.state_hash_into(h);
        h.write_u32(self.hop);
        h.write_len(self.memb.len());
        for m in &self.memb {
            m.state_hash_into(h);
        }
    }
}

impl StateHash for Message {
    fn state_hash_into(&self, h: &mut StateHasher) {
        match self {
            Message::Data(d) => {
                h.write_u8(1);
                d.state_hash_into(h);
            }
            Message::Token(t) => {
                h.write_u8(2);
                t.state_hash_into(h);
            }
            Message::Join(j) => {
                h.write_u8(3);
                j.state_hash_into(h);
            }
            Message::Commit(c) => {
                h.write_u8(4);
                c.state_hash_into(h);
            }
        }
    }
}

use crate::membership::MembershipState;
use crate::participant::{Mode, Participant};
use crate::recvbuf::RecvBuffer;
use crate::ring::RingInfo;
use crate::sendq::SendQueue;

impl StateHash for Mode {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_u8(match self {
            Mode::Operational => 0,
            Mode::Gather => 1,
            Mode::Commit => 2,
            Mode::Recovery => 3,
        });
    }
}

impl StateHash for RingInfo {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.id().state_hash_into(h);
        h.write_len(self.members().len());
        for p in self.members() {
            p.state_hash_into(h);
        }
        h.write_len(self.my_index());
    }
}

impl StateHash for RecvBuffer {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.local_aru().state_hash_into(h);
        self.delivered_up_to().state_hash_into(h);
        self.discarded_up_to().state_hash_into(h);
        let mut n = 0usize;
        for m in self.iter() {
            m.state_hash_into(h);
            n += 1;
        }
        h.write_len(n);
    }
}

impl StateHash for SendQueue {
    fn state_hash_into(&self, h: &mut StateHasher) {
        h.write_len(self.len());
        for m in self.iter() {
            m.service.state_hash_into(h);
            h.write_len(m.payload.len());
            h.write(&m.payload);
        }
    }
}

impl StateHash for MembershipState {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.timeouts.state_hash_into(h);
        h.write_len(self.proc_set.len());
        for p in &self.proc_set {
            p.state_hash_into(h);
        }
        h.write_len(self.fail_set.len());
        for p in &self.fail_set {
            p.state_hash_into(h);
        }
        h.write_len(self.joins.len());
        for (p, j) in &self.joins {
            p.state_hash_into(h);
            j.state_hash_into(h);
        }
        h.write_u64(self.max_ring_seq);
        match &self.commit_ring {
            Some(r) => {
                h.write_u8(1);
                r.state_hash_into(h);
            }
            None => h.write_u8(0),
        }
        h.write_u32(self.last_commit_hop);
        match &self.rec {
            Some(rec) => {
                h.write_u8(1);
                rec.new_ring.state_hash_into(h);
                rec.commit.state_hash_into(h);
                rec.my_group_high.state_hash_into(h);
                h.write_len(rec.transitional_members.len());
                for p in &rec.transitional_members {
                    p.state_hash_into(h);
                }
            }
            None => h.write_u8(0),
        }
        h.write_len(self.pending_new_ring_data.len());
        for d in &self.pending_new_ring_data {
            d.state_hash_into(h);
        }
        h.write_len(self.prev_rings.len());
        for r in &self.prev_rings {
            r.state_hash_into(h);
        }
        h.write_bool(self.alone_ok);
        h.write_len(self.penalties.len());
        for (p, m) in &self.penalties {
            p.state_hash_into(h);
            h.write_u32(m.score);
            h.write_bool(m.quarantined);
        }
        h.write_u64(self.rounds_since_decay);
    }
}

impl StateHash for Participant {
    fn state_hash_into(&self, h: &mut StateHasher) {
        self.pid.state_hash_into(h);
        self.mode.state_hash_into(h);
        self.ring.state_hash_into(h);
        self.recvbuf.state_hash_into(h);
        self.pending.state_hash_into(h);
        // Ordering state.
        self.ord.round.state_hash_into(h);
        self.ord.prev_token_seq.state_hash_into(h);
        h.write_u32(self.ord.my_prev_sent);
        self.ord.aru_last_sent.state_hash_into(h);
        self.ord.aru_prev_sent.state_hash_into(h);
        match &self.ord.last_sent_token {
            Some(t) => {
                h.write_u8(1);
                t.state_hash_into(h);
            }
            None => h.write_u8(0),
        }
        h.write_u32(self.ord.retransmit_count);
        h.write_bool(self.ord.progress_seen);
        h.write_bool(self.ord.handled_any_token);
        // AIMD degradation state.
        h.write_u32(self.aimd.effective_window);
        h.write_u32(self.aimd.pressured_rounds);
        h.write_u32(self.aimd.clean_rounds);
        self.memb.state_hash_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn fnv_basis_and_stability() {
        let h = StateHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StateHasher::new();
        h.write(b"a");
        // Known FNV-1a("a").
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        // A token with one rtr entry must hash differently from the
        // same token with the entry moved into fcc-adjacent bytes.
        let ring = RingId::new(ParticipantId::new(0), 1);
        let mut a = Token::initial(ring, Seq::ZERO);
        a.rtr = vec![Seq::new(7)];
        let b = Token::initial(ring, Seq::ZERO);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn message_kinds_are_domain_separated() {
        let ring = RingId::new(ParticipantId::new(0), 1);
        let t = Message::Token(Token::initial(ring, Seq::ZERO));
        let c = Message::Commit(CommitToken::new(ring, &[ParticipantId::new(0)]));
        assert_ne!(t.state_hash(), c.state_hash());
    }

    #[test]
    fn participant_hash_tracks_protocol_state() {
        use crate::config::ProtocolConfig;
        let members: Vec<ParticipantId> = (0..3).map(ParticipantId::new).collect();
        let ring = RingId::new(members[0], 1);
        let mk = |pid: u16| {
            Participant::new(
                ParticipantId::new(pid),
                ProtocolConfig::accelerated(),
                ring,
                members.clone(),
            )
            .unwrap()
        };
        let p0a = mk(0);
        let p0b = mk(0);
        assert_eq!(
            p0a.state_hash(),
            p0b.state_hash(),
            "identical construction must produce identical hashes"
        );
        assert_ne!(p0a.state_hash(), mk(1).state_hash());

        // Handling input must move the hash: the representative's start
        // processes the initial token.
        let mut p0c = mk(0);
        let before = p0c.state_hash();
        let _ = p0c.start();
        assert_ne!(before, p0c.state_hash());
    }

    #[test]
    fn payload_differences_change_the_hash() {
        let mk = |payload: &'static [u8]| DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(1),
            pid: ParticipantId::new(0),
            round: Round::new(1),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::from_static(payload),
        };
        assert_ne!(mk(b"x").state_hash(), mk(b"y").state_hash());
        assert_eq!(mk(b"x").state_hash(), mk(b"x").state_hash());
    }
}
