//! The logical ring: an ordered set of participants with successor and
//! predecessor relations.

use serde::{Deserialize, Serialize};

use crate::types::{ParticipantId, RingId};

/// Errors constructing a [`RingInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The member list was empty.
    Empty,
    /// The member list contained a duplicate identifier.
    DuplicateMember(ParticipantId),
    /// The local participant is not in the member list.
    NotAMember(ParticipantId),
}

impl core::fmt::Display for RingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RingError::Empty => f.write_str("ring member list is empty"),
            RingError::DuplicateMember(p) => write!(f, "duplicate ring member {p}"),
            RingError::NotAMember(p) => write!(f, "{p} is not a member of the ring"),
        }
    }
}

impl std::error::Error for RingError {}

/// An installed ring configuration, as seen by one participant.
///
/// Members are held in ring order: sorted by identifier, with the
/// representative (smallest identifier) first. The token travels from
/// each member to its successor in this order, wrapping around.
///
/// ```
/// use ar_core::{ParticipantId, RingId, RingInfo};
///
/// let members: Vec<_> = (0..4).map(ParticipantId::new).collect();
/// let ring = RingInfo::new(
///     RingId::new(members[0], 1),
///     members.clone(),
///     ParticipantId::new(2),
/// )?;
/// assert_eq!(ring.successor(), ParticipantId::new(3));
/// assert_eq!(ring.predecessor(), ParticipantId::new(1));
/// # Ok::<(), ar_core::ring::RingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingInfo {
    id: RingId,
    members: Vec<ParticipantId>,
    my_index: usize,
}

impl RingInfo {
    /// Builds the ring view for participant `me`.
    ///
    /// `members` may be in any order; it is sorted into canonical ring
    /// order (ascending identifiers).
    ///
    /// # Errors
    ///
    /// Returns [`RingError`] if the list is empty, contains duplicates,
    /// or does not contain `me`.
    pub fn new(
        id: RingId,
        mut members: Vec<ParticipantId>,
        me: ParticipantId,
    ) -> Result<RingInfo, RingError> {
        if members.is_empty() {
            return Err(RingError::Empty);
        }
        members.sort_unstable();
        for w in members.windows(2) {
            if w[0] == w[1] {
                return Err(RingError::DuplicateMember(w[0]));
            }
        }
        let my_index = members
            .binary_search(&me)
            .map_err(|_| RingError::NotAMember(me))?;
        Ok(RingInfo {
            id,
            members,
            my_index,
        })
    }

    /// The configuration identifier.
    pub fn id(&self) -> RingId {
        self.id
    }

    /// The members in ring order.
    pub fn members(&self) -> &[ParticipantId] {
        &self.members
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The local participant.
    pub fn me(&self) -> ParticipantId {
        self.members[self.my_index]
    }

    /// This participant's position on the ring.
    pub fn my_index(&self) -> usize {
        self.my_index
    }

    /// The member the local participant passes the token to.
    pub fn successor(&self) -> ParticipantId {
        self.members[(self.my_index + 1) % self.members.len()]
    }

    /// The member the local participant receives the token from.
    pub fn predecessor(&self) -> ParticipantId {
        self.members[(self.my_index + self.members.len() - 1) % self.members.len()]
    }

    /// The ring representative (smallest member identifier).
    pub fn representative(&self) -> ParticipantId {
        self.members[0]
    }

    /// True if the local participant is the representative.
    pub fn i_am_representative(&self) -> bool {
        self.my_index == 0
    }

    /// True if `p` is a member of this ring.
    pub fn contains(&self, p: ParticipantId) -> bool {
        self.members.binary_search(&p).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn ring_of(ids: &[u16], me: u16) -> RingInfo {
        RingInfo::new(
            RingId::new(pid(ids[0]), 1),
            ids.iter().map(|&v| pid(v)).collect(),
            pid(me),
        )
        .unwrap()
    }

    #[test]
    fn members_are_sorted_into_ring_order() {
        let r = ring_of(&[5, 1, 3], 3);
        assert_eq!(r.members(), &[pid(1), pid(3), pid(5)]);
        assert_eq!(r.my_index(), 1);
        assert_eq!(r.representative(), pid(1));
    }

    #[test]
    fn successor_and_predecessor_wrap() {
        let r = ring_of(&[0, 1, 2, 3], 3);
        assert_eq!(r.successor(), pid(0));
        assert_eq!(r.predecessor(), pid(2));
        let r0 = ring_of(&[0, 1, 2, 3], 0);
        assert_eq!(r0.successor(), pid(1));
        assert_eq!(r0.predecessor(), pid(3));
    }

    #[test]
    fn singleton_ring_is_its_own_neighbor() {
        let r = ring_of(&[9], 9);
        assert_eq!(r.successor(), pid(9));
        assert_eq!(r.predecessor(), pid(9));
        assert!(r.i_am_representative());
    }

    #[test]
    fn empty_ring_rejected() {
        assert_eq!(
            RingInfo::new(RingId::default(), vec![], pid(0)).unwrap_err(),
            RingError::Empty
        );
    }

    #[test]
    fn duplicate_member_rejected() {
        assert_eq!(
            RingInfo::new(RingId::default(), vec![pid(1), pid(1)], pid(1)).unwrap_err(),
            RingError::DuplicateMember(pid(1))
        );
    }

    #[test]
    fn non_member_rejected() {
        assert_eq!(
            RingInfo::new(RingId::default(), vec![pid(1), pid(2)], pid(3)).unwrap_err(),
            RingError::NotAMember(pid(3))
        );
    }

    #[test]
    fn contains_checks_membership() {
        let r = ring_of(&[2, 4, 6], 4);
        assert!(r.contains(pid(2)));
        assert!(!r.contains(pid(3)));
    }
}
