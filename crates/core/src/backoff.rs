//! Shared exponential-backoff machinery.
//!
//! Three subsystems retry with backoff: the ar-net runtime retransmits
//! lost tokens, the legacy TCP client redials a restarted daemon, and
//! the service-tier client resumes its session after a connection
//! drop. They used to carry three hand-rolled doubling loops; this
//! module is the one implementation they all share.
//!
//! Two shapes are provided:
//!
//! * [`ExpShift`] — a deterministic shift-doubling exponent for
//!   *in-protocol* retries (token retransmission), where determinism
//!   matters more than contention avoidance and the caller clamps the
//!   scaled result against a protocol timeout.
//! * [`Backoff`] — wall-clock delays with **decorrelated jitter** for
//!   *reconnect* loops, where many clients hammering one daemon after
//!   a restart must not synchronise. Each delay is drawn uniformly
//!   from `[base, min(cap, 3 * previous)]`, the AWS "decorrelated
//!   jitter" scheme: bounded below by `base`, above by `cap`, with an
//!   envelope that grows geometrically to the cap.
//!
//! Both are pure (no clocks, no I/O); the jitter source is a seeded
//! SplitMix64 so retry schedules are reproducible in tests.

use std::time::Duration;

/// Deterministic doubling backoff expressed as a capped shift count.
///
/// `scale(base, cap)` returns `min(base << shift, cap)`; [`step`]
/// advances the exponent (saturating at the configured maximum) and
/// [`reset`] clears it when the awaited event arrives.
///
/// [`step`]: ExpShift::step
/// [`reset`]: ExpShift::reset
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpShift {
    shift: u32,
    max_shift: u32,
}

impl ExpShift {
    /// A fresh backoff whose exponent saturates at `max_shift`.
    pub fn new(max_shift: u32) -> ExpShift {
        ExpShift {
            shift: 0,
            max_shift,
        }
    }

    /// The current exponent.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// One more consecutive failure: double the interval (saturating).
    pub fn step(&mut self) {
        self.shift = (self.shift + 1).min(self.max_shift);
    }

    /// Success: back to the base interval.
    pub fn reset(&mut self) {
        self.shift = 0;
    }

    /// Scales `base` by the current exponent, clamped to `cap`.
    /// Overflow saturates before the clamp (note `checked_shl` alone
    /// would not do: it only rejects shifts >= 64, while a large base
    /// can wrap well below that), so the result is always `<= cap` and
    /// `>= min(base, cap)`.
    pub fn scale(&self, base: u64, cap: u64) -> u64 {
        let scaled = if self.shift >= 64 || base > (u64::MAX >> self.shift) {
            u64::MAX
        } else {
            base << self.shift
        };
        scaled.min(cap)
    }
}

/// Tuning for a [`Backoff`] reconnect schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Lower bound on every delay (and the first draw's whole range).
    pub base: Duration,
    /// Upper bound on every delay.
    pub cap: Duration,
    /// Attempts before [`Backoff::next_delay`] returns `None`
    /// (0 disables retrying entirely).
    pub max_attempts: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            max_attempts: 30,
        }
    }
}

/// A decorrelated-jitter backoff schedule (see the module docs).
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    prev: Duration,
    attempt: u32,
    rng: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Backoff {
    /// A fresh schedule. `seed` determines the jitter stream — derive
    /// it from a client identity so a fleet of reconnecting clients
    /// fans out instead of thundering in lockstep.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Backoff {
        Backoff {
            cfg,
            prev: cfg.base,
            attempt: 0,
            rng: seed,
        }
    }

    /// Attempts drawn since the last [`reset`](Backoff::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay to sleep before redialling, or `None` once
    /// `max_attempts` draws have been consumed. Every returned delay
    /// `d` satisfies `min(base, cap) <= d <= cap`.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.cfg.max_attempts {
            return None;
        }
        self.attempt += 1;
        let base = self.cfg.base.min(self.cfg.cap).as_nanos() as u64;
        let cap = self.cfg.cap.as_nanos() as u64;
        // Envelope: three times the previous delay, at least base + 1
        // so the range is never empty, clamped to the cap.
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .clamp(base.saturating_add(1), cap.max(base.saturating_add(1)));
        let span = hi - base;
        let jittered = base + splitmix(&mut self.rng) % (span + 1);
        let delay = Duration::from_nanos(jittered.min(cap));
        self.prev = delay;
        Some(delay)
    }

    /// Success: restart the schedule from the base.
    pub fn reset(&mut self) {
        self.prev = self.cfg.base;
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_shift_doubles_and_saturates() {
        let mut b = ExpShift::new(3);
        assert_eq!(b.scale(100, u64::MAX), 100);
        b.step();
        assert_eq!(b.scale(100, u64::MAX), 200);
        b.step();
        b.step();
        b.step(); // saturates at 3
        assert_eq!(b.shift(), 3);
        assert_eq!(b.scale(100, u64::MAX), 800);
        assert_eq!(b.scale(100, 500), 500, "cap clamps");
        b.reset();
        assert_eq!(b.scale(100, 500), 100);
    }

    #[test]
    fn exp_shift_overflow_saturates_to_cap() {
        let mut b = ExpShift::new(70);
        for _ in 0..70 {
            b.step();
        }
        assert_eq!(b.scale(u64::MAX / 2, 1_000), 1_000);
    }

    #[test]
    fn backoff_is_bounded_and_exhausts() {
        let cfg = BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 8,
        };
        let mut b = Backoff::new(cfg, 42);
        let mut n = 0;
        while let Some(d) = b.next_delay() {
            assert!(d >= cfg.base, "below base: {d:?}");
            assert!(d <= cfg.cap, "above cap: {d:?}");
            n += 1;
        }
        assert_eq!(n, 8);
        b.reset();
        assert!(b.next_delay().is_some(), "reset restores attempts");
    }

    #[test]
    fn backoff_seeds_decorrelate() {
        let cfg = BackoffConfig::default();
        let mut a = Backoff::new(cfg, 1);
        let mut b = Backoff::new(cfg, 2);
        let da: Vec<_> = (0..6).map(|_| a.next_delay().unwrap()).collect();
        let db: Vec<_> = (0..6).map(|_| b.next_delay().unwrap()).collect();
        assert_ne!(da, db, "different seeds, different schedules");
    }

    #[test]
    fn zero_attempts_disables() {
        let mut b = Backoff::new(
            BackoffConfig {
                max_attempts: 0,
                ..BackoffConfig::default()
            },
            7,
        );
        assert!(b.next_delay().is_none());
    }
}
