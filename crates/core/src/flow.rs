//! Flow-control arithmetic (Section III-A.1 of the paper).
//!
//! On receiving the token, a participant computes the maximum number of
//! *new* messages it may initiate this round as the minimum of four
//! limits: the application backlog, the personal window, what remains of
//! the global window after the previous round's traffic and this round's
//! retransmissions, and the maximum allowed gap between the highest
//! assigned sequence number and the global all-received-up-to.

use crate::config::ProtocolConfig;
use crate::types::Seq;

/// The inputs to the flow-control decision, gathered from the received
/// token and local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInputs {
    /// Messages the application has waiting to be ordered.
    pub backlog: usize,
    /// The `fcc` field of the received token: multicasts sent ring-wide
    /// during the last rotation.
    pub token_fcc: u32,
    /// Retransmissions this participant is sending this round.
    pub num_retrans: u32,
    /// The `seq` field of the received token: the highest sequence
    /// number assigned so far.
    pub token_seq: Seq,
    /// The participant's estimate of the highest sequence number known
    /// to have been received by all members (the `Global_aru`); the
    /// stability watermark is a sound estimate.
    pub global_aru: Seq,
}

/// Computes the maximum number of new messages that may be initiated
/// this round.
///
/// ```
/// use ar_core::flow::{allowed_new_messages, FlowInputs};
/// use ar_core::{ProtocolConfig, Seq};
///
/// let cfg = ProtocolConfig::accelerated()
///     .with_personal_window(10)
///     .with_global_window(40)
///     .with_max_seq_gap(100);
/// let inputs = FlowInputs {
///     backlog: 25,
///     token_fcc: 20,
///     num_retrans: 5,
///     token_seq: Seq::new(50),
///     global_aru: Seq::new(45),
/// };
/// // min(25 backlog, 10 personal, 40-20-5=15 global, 45+100-50=95 gap) = 10
/// assert_eq!(allowed_new_messages(&cfg, inputs), 10);
/// ```
pub fn allowed_new_messages(cfg: &ProtocolConfig, inputs: FlowInputs) -> u32 {
    let backlog = u32::try_from(inputs.backlog).unwrap_or(u32::MAX);
    let personal = cfg.personal_window;
    let global = cfg
        .global_window
        .saturating_sub(inputs.token_fcc)
        .saturating_sub(inputs.num_retrans);
    let gap_limit = inputs
        .global_aru
        .as_u64()
        .saturating_add(cfg.max_seq_gap)
        .saturating_sub(inputs.token_seq.as_u64());
    let gap = u32::try_from(gap_limit).unwrap_or(u32::MAX);
    backlog.min(personal).min(global).min(gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::accelerated()
            .with_personal_window(10)
            .with_global_window(40)
            .with_max_seq_gap(100)
    }

    fn base_inputs() -> FlowInputs {
        FlowInputs {
            backlog: 1000,
            token_fcc: 0,
            num_retrans: 0,
            token_seq: Seq::ZERO,
            global_aru: Seq::ZERO,
        }
    }

    #[test]
    fn personal_window_binds() {
        assert_eq!(allowed_new_messages(&cfg(), base_inputs()), 10);
    }

    #[test]
    fn backlog_binds_when_small() {
        let inputs = FlowInputs {
            backlog: 3,
            ..base_inputs()
        };
        assert_eq!(allowed_new_messages(&cfg(), inputs), 3);
    }

    #[test]
    fn global_window_accounts_for_fcc_and_retransmissions() {
        let inputs = FlowInputs {
            token_fcc: 35,
            num_retrans: 3,
            ..base_inputs()
        };
        // 40 - 35 - 3 = 2
        assert_eq!(allowed_new_messages(&cfg(), inputs), 2);
    }

    #[test]
    fn global_window_saturates_at_zero() {
        let inputs = FlowInputs {
            token_fcc: 50,
            ..base_inputs()
        };
        assert_eq!(allowed_new_messages(&cfg(), inputs), 0);
    }

    #[test]
    fn seq_gap_binds_when_stability_lags() {
        let inputs = FlowInputs {
            token_seq: Seq::new(95),
            global_aru: Seq::ZERO,
            ..base_inputs()
        };
        // 0 + 100 - 95 = 5
        assert_eq!(allowed_new_messages(&cfg(), inputs), 5);
    }

    #[test]
    fn seq_gap_saturates_at_zero() {
        let inputs = FlowInputs {
            token_seq: Seq::new(500),
            global_aru: Seq::ZERO,
            ..base_inputs()
        };
        assert_eq!(allowed_new_messages(&cfg(), inputs), 0);
    }

    #[test]
    fn empty_backlog_sends_nothing() {
        let inputs = FlowInputs {
            backlog: 0,
            ..base_inputs()
        };
        assert_eq!(allowed_new_messages(&cfg(), inputs), 0);
    }

    #[test]
    fn huge_backlog_does_not_overflow() {
        let inputs = FlowInputs {
            backlog: usize::MAX,
            global_aru: Seq::new(u64::MAX - 50),
            token_seq: Seq::new(u64::MAX - 40),
            ..base_inputs()
        };
        // Saturating arithmetic everywhere; personal window binds.
        assert_eq!(allowed_new_messages(&cfg(), inputs), 10);
    }
}
