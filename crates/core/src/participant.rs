//! The protocol participant: a sans-io state machine implementing the
//! Accelerated Ring ordering protocol (and, as its degenerate
//! configuration, the original Totem Ring protocol).
//!
//! A [`Participant`] consumes inputs — received [`Message`]s,
//! application submissions, timer expiries — and emits ordered lists of
//! [`Action`]s for the environment to execute. It performs no I/O and
//! reads no clock, which makes the protocol deterministic and equally at
//! home in the discrete-event simulator (`ar-sim`), the UDP runtime
//! (`ar-net`), and unit tests.
//!
//! # Token handling (Section III-A of the paper)
//!
//! Upon receiving the token a participant, in order:
//!
//! 1. answers retransmission requests (all retransmissions are
//!    pre-token);
//! 2. determines, under flow control, the complete set of new messages
//!    it will initiate this round, enqueueing each and multicasting
//!    only the overflow beyond the *accelerated window* (pre-token
//!    multicast phase);
//! 3. updates every token field (`seq`, `aru`, `fcc`, `rtr` — the
//!    latter limited to the `seq` of the token received in the
//!    *previous* round) and **sends the token to its successor**;
//! 4. multicasts the up-to-`accelerated_window` messages remaining in
//!    the queue (post-token multicast phase);
//! 5. delivers newly deliverable messages and discards stable ones.
//!
//! With `accelerated_window = 0` step 4 is empty and the send pattern is
//! exactly the original Ring protocol's.

use bytes::Bytes;

use crate::actions::{Action, TimerKind};
use crate::config::{ConfigError, ProtocolConfig};
use crate::flow::{allowed_new_messages, FlowInputs};
use crate::membership::MembershipState;
use crate::message::{DataMessage, Token};
use crate::observer::{Observer, ObserverSlot, ProtoEvent};
use crate::priority::{PriorityMode, PriorityTracker};
use crate::recvbuf::{InsertOutcome, RecvBuffer};
use crate::ring::{RingError, RingInfo};
use crate::sendq::{QueueFull, SendQueue};
use crate::stats::ParticipantStats;
use crate::types::{ParticipantId, RingId, Round, Seq, ServiceType};
use crate::wire::Message;

/// Durations (in nanoseconds) for the protocol's logical timers, plus
/// the token retransmission retry limit.
///
/// The sans-io core only names timers ([`TimerKind`]); the embedding
/// environment uses this table to arm them. Defaults suit a local-area
/// network; the simulator and tests override them freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutConfig {
    /// No token progress for this long ⇒ declare token loss and shift
    /// to membership gather.
    pub token_loss: u64,
    /// Resend the last token we forwarded if no progress evidence
    /// arrives within this long.
    pub token_retransmit: u64,
    /// Re-multicast our join message at this period while gathering.
    pub join: u64,
    /// Give up waiting for gather consensus after this long and fail
    /// unresponsive participants.
    pub consensus: u64,
    /// Give up on a commit token rotation after this long.
    pub commit: u64,
    /// After this many token retransmissions without progress, declare
    /// token loss.
    pub token_retransmit_limit: u32,
}

impl Default for TimeoutConfig {
    fn default() -> Self {
        TimeoutConfig {
            token_loss: 50_000_000,      // 50 ms
            token_retransmit: 5_000_000, // 5 ms
            join: 10_000_000,            // 10 ms
            consensus: 100_000_000,      // 100 ms
            commit: 50_000_000,          // 50 ms
            token_retransmit_limit: 5,
        }
    }
}

impl TimeoutConfig {
    /// Checks the timeout table for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`TimeoutConfigError`] if any duration or the
    /// retransmit limit is zero (the protocol would hang or spin), or
    /// if the retransmit interval is not strictly below the token-loss
    /// timeout (loss would always be declared before any retransmission
    /// could be attempted).
    pub fn validate(&self) -> Result<(), TimeoutConfigError> {
        for (name, v) in [
            ("token_loss", self.token_loss),
            ("token_retransmit", self.token_retransmit),
            ("join", self.join),
            ("consensus", self.consensus),
            ("commit", self.commit),
            (
                "token_retransmit_limit",
                u64::from(self.token_retransmit_limit),
            ),
        ] {
            if v == 0 {
                return Err(TimeoutConfigError::Zero(name));
            }
        }
        if self.token_retransmit >= self.token_loss {
            return Err(TimeoutConfigError::RetransmitNotBelowLoss {
                token_retransmit: self.token_retransmit,
                token_loss: self.token_loss,
            });
        }
        Ok(())
    }
}

/// Errors produced by [`TimeoutConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutConfigError {
    /// A duration or limit that must be positive was zero.
    Zero(&'static str),
    /// The retransmit interval was not strictly below the token-loss
    /// timeout.
    RetransmitNotBelowLoss {
        /// The offending retransmit interval (ns).
        token_retransmit: u64,
        /// The token-loss timeout it must stay below (ns).
        token_loss: u64,
    },
}

impl core::fmt::Display for TimeoutConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TimeoutConfigError::Zero(name) => write!(f, "{name} must be positive"),
            TimeoutConfigError::RetransmitNotBelowLoss {
                token_retransmit,
                token_loss,
            } => write!(
                f,
                "token_retransmit ({token_retransmit} ns) must be below token_loss ({token_loss} ns)"
            ),
        }
    }
}

impl std::error::Error for TimeoutConfigError {}

/// Which phase of the protocol the participant is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal-case total ordering on an installed ring.
    Operational,
    /// Membership: gathering a new configuration via join messages.
    Gather,
    /// Membership: committing the agreed configuration via the commit
    /// token.
    Commit,
    /// Membership: recovering old-ring messages on the new ring before
    /// resuming normal operation.
    Recovery,
}

/// Errors constructing a [`Participant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NewParticipantError {
    /// The protocol configuration is inconsistent.
    Config(ConfigError),
    /// The ring member list is invalid.
    Ring(RingError),
}

impl core::fmt::Display for NewParticipantError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NewParticipantError::Config(e) => write!(f, "invalid protocol config: {e}"),
            NewParticipantError::Ring(e) => write!(f, "invalid ring: {e}"),
        }
    }
}

impl std::error::Error for NewParticipantError {}

impl From<ConfigError> for NewParticipantError {
    fn from(e: ConfigError) -> Self {
        NewParticipantError::Config(e)
    }
}

impl From<RingError> for NewParticipantError {
    fn from(e: RingError) -> Self {
        NewParticipantError::Ring(e)
    }
}

/// Per-round ordering-protocol bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct OrderingState {
    /// Round of the last token handled.
    pub(crate) round: Round,
    /// `seq` of the token received in the *previous* round — the upper
    /// bound for retransmission requests (the acceleration-specific
    /// rule that prevents requesting messages ordered but not yet
    /// multicast).
    pub(crate) prev_token_seq: Seq,
    /// Multicasts (new + retransmissions) this participant sent in the
    /// previous round, subtracted from `fcc`.
    pub(crate) my_prev_sent: u32,
    /// The `aru` this participant placed on the token this round and
    /// the round before; their minimum is the Safe-delivery watermark.
    pub(crate) aru_last_sent: Seq,
    /// See [`OrderingState::aru_last_sent`].
    pub(crate) aru_prev_sent: Seq,
    /// Copy of the last token we forwarded, for retransmission.
    pub(crate) last_sent_token: Option<Token>,
    /// Consecutive token retransmissions without progress.
    pub(crate) retransmit_count: u32,
    /// Whether any evidence of ring progress arrived since we forwarded
    /// the token (a newer-round data message or token).
    pub(crate) progress_seen: bool,
    /// Whether this participant has handled any token on this ring yet.
    pub(crate) handled_any_token: bool,
}

impl OrderingState {
    pub(crate) fn new() -> OrderingState {
        OrderingState {
            round: Round::ZERO,
            prev_token_seq: Seq::ZERO,
            my_prev_sent: 0,
            aru_last_sent: Seq::ZERO,
            aru_prev_sent: Seq::ZERO,
            last_sent_token: None,
            retransmit_count: 0,
            progress_seen: false,
            handled_any_token: false,
        }
    }

    /// The participant's estimate of the highest sequence number known
    /// received by every member (the paper's `Global_aru`): the minimum
    /// of the arus it placed on its last two tokens.
    pub(crate) fn global_aru(&self) -> Seq {
        self.aru_last_sent.min(self.aru_prev_sent)
    }
}

/// AIMD state for the effective accelerated window (degradation under
/// sustained retransmission pressure; see `ProtocolConfig::accel_aimd`).
#[derive(Debug, Clone)]
pub(crate) struct AimdState {
    /// The window actually applied in the pre/post-token send split.
    pub(crate) effective_window: u32,
    /// Consecutive pressured rounds since the last decrease.
    pub(crate) pressured_rounds: u32,
    /// Consecutive clean rounds since the last pressured one.
    pub(crate) clean_rounds: u32,
}

/// A protocol participant (one per daemon or library process).
#[derive(Debug, Clone)]
pub struct Participant {
    pub(crate) pid: ParticipantId,
    pub(crate) cfg: ProtocolConfig,
    pub(crate) ring: RingInfo,
    pub(crate) recvbuf: RecvBuffer,
    pub(crate) pending: SendQueue,
    pub(crate) priority: PriorityTracker,
    pub(crate) stats: ParticipantStats,
    pub(crate) ord: OrderingState,
    pub(crate) aimd: AimdState,
    pub(crate) mode: Mode,
    pub(crate) memb: MembershipState,
    pub(crate) obs: ObserverSlot,
}

impl Participant {
    /// Creates a participant on an already-established ring (static
    /// bootstrap, as the paper's normal-operation description assumes).
    ///
    /// All members must be created with identical `members` lists and
    /// `ring_id`; the environment then calls [`start`](Self::start) on
    /// every participant, and the representative's start actions carry
    /// the first token.
    ///
    /// # Errors
    ///
    /// Returns [`NewParticipantError`] if the configuration fails
    /// validation or the member list is invalid.
    pub fn new(
        pid: ParticipantId,
        cfg: ProtocolConfig,
        ring_id: RingId,
        members: Vec<ParticipantId>,
    ) -> Result<Participant, NewParticipantError> {
        cfg.validate()?;
        let ring = RingInfo::new(ring_id, members, pid)?;
        let priority = PriorityTracker::new(cfg.priority_method, ring.predecessor(), ring.size());
        Ok(Participant {
            pid,
            cfg,
            ring,
            recvbuf: RecvBuffer::new(Seq::ZERO),
            pending: SendQueue::new(),
            priority,
            stats: ParticipantStats::new(),
            ord: OrderingState::new(),
            aimd: AimdState {
                effective_window: cfg.accelerated_window,
                pressured_rounds: 0,
                clean_rounds: 0,
            },
            mode: Mode::Operational,
            memb: MembershipState::new(),
            obs: ObserverSlot::default(),
        })
    }

    /// Creates a singleton participant that knows only itself; rings
    /// form dynamically via the membership algorithm when singletons
    /// hear each other's join messages.
    ///
    /// # Errors
    ///
    /// Returns [`NewParticipantError::Config`] if the configuration is
    /// invalid.
    pub fn new_singleton(
        pid: ParticipantId,
        cfg: ProtocolConfig,
    ) -> Result<Participant, NewParticipantError> {
        let ring_id = RingId::new(pid, 0);
        Participant::new(pid, cfg, ring_id, vec![pid])
    }

    /// Begins operation: the ring representative injects the first
    /// token; everyone arms the token-loss timer.
    pub fn start(&mut self) -> Vec<Action> {
        if self.ring.i_am_representative() && !self.ord.handled_any_token {
            self.process_token(Token::initial(self.ring.id(), Seq::ZERO))
        } else {
            vec![Action::SetTimer(TimerKind::TokenLoss)]
        }
    }

    /// This participant's identifier.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// The protocol configuration in force.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The currently installed ring.
    pub fn ring(&self) -> &RingInfo {
        &self.ring
    }

    /// The current protocol phase.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// True during normal-case operation.
    pub fn is_operational(&self) -> bool {
        self.mode == Mode::Operational
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &ParticipantStats {
        &self.stats
    }

    /// The accelerated window actually in force: the configured value,
    /// or the AIMD-degraded one when `accel_aimd` is enabled. At zero
    /// the send pattern is the original Ring protocol's.
    pub fn effective_accelerated_window(&self) -> u32 {
        if self.cfg.accel_aimd.enabled {
            self.aimd.effective_window
        } else {
            self.cfg.accelerated_window
        }
    }

    /// AIMD step, run once per handled token: multiplicative decrease
    /// after sustained retransmission pressure, additive recovery after
    /// sustained calm. Returns the window to apply this round.
    fn update_accel_window(&mut self, rtr_volume: u32) -> u32 {
        let a = self.cfg.accel_aimd;
        if !a.enabled {
            return self.cfg.accelerated_window;
        }
        if rtr_volume >= a.pressure_threshold {
            self.aimd.clean_rounds = 0;
            self.aimd.pressured_rounds += 1;
            if self.aimd.pressured_rounds >= a.pressure_rounds && self.aimd.effective_window > 0 {
                self.aimd.pressured_rounds = 0;
                let from = self.aimd.effective_window;
                self.aimd.effective_window = from / 2;
                self.stats.accel_window_shrinks += 1;
                let to = self.aimd.effective_window;
                self.obs
                    .emit(|| ProtoEvent::AccelWindowChanged { from, to });
            }
        } else {
            self.aimd.pressured_rounds = 0;
            if self.aimd.effective_window < self.cfg.accelerated_window {
                self.aimd.clean_rounds += 1;
                if self.aimd.clean_rounds >= a.recovery_rounds {
                    self.aimd.clean_rounds = 0;
                    let from = self.aimd.effective_window;
                    self.aimd.effective_window = from + 1;
                    self.stats.accel_window_grows += 1;
                    let to = self.aimd.effective_window;
                    self.obs
                        .emit(|| ProtoEvent::AccelWindowChanged { from, to });
                }
            } else {
                self.aimd.clean_rounds = 0;
            }
        }
        self.aimd.effective_window
    }

    // ----- observation ----------------------------------------------------

    /// Attaches an [`Observer`] that receives every protocol event
    /// ([`ProtoEvent`]) this participant emits. Replaces any previous
    /// observer. The core remains deterministic: observers only receive
    /// copies of protocol facts, stamped with the timestamp last passed
    /// to [`observe_now`](Self::observe_now).
    pub fn set_observer(&mut self, obs: std::sync::Arc<dyn Observer>) {
        self.obs.set(obs);
    }

    /// Detaches the observer; emission reverts to the free no-op path.
    pub fn clear_observer(&mut self) {
        self.obs.clear();
    }

    /// True if an observer is attached.
    pub fn has_observer(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Injects the current time (nanoseconds on the *caller's* clock)
    /// used to stamp subsequently emitted events. The core never reads
    /// a clock itself; environments call this before each
    /// `handle_message` / `handle_timer` / `submit` batch. Calling it
    /// with an observer detached is free and harmless.
    pub fn observe_now(&mut self, now_nanos: u64) {
        self.obs.set_now(now_nanos);
    }

    /// The current token-vs-data processing preference, for environments
    /// that hold both kinds of received message (Section III-C).
    pub fn priority_mode(&self) -> PriorityMode {
        self.priority.mode()
    }

    /// Highest sequence number up to which this participant has
    /// received everything.
    pub fn local_aru(&self) -> Seq {
        self.recvbuf.local_aru()
    }

    /// The delivery frontier (all messages `<=` have been delivered).
    pub fn delivered_up_to(&self) -> Seq {
        self.recvbuf.delivered_up_to()
    }

    /// The round of the last token this participant handled on its
    /// current ring ([`Round::ZERO`] before any token). External
    /// checkers use this to tell *live* in-flight tokens (rounds beyond
    /// every member's frontier) from stale retransmitted copies.
    pub fn current_round(&self) -> Round {
        self.ord.round
    }

    /// Number of application messages waiting to be ordered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of data messages buffered (received, not yet discarded).
    pub fn buffered_len(&self) -> usize {
        self.recvbuf.len()
    }

    /// Submits an application message for totally ordered multicast.
    ///
    /// The message is queued until this participant holds the token and
    /// flow control admits it.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the pending queue is at capacity
    /// (backpressure); retry after deliveries drain.
    pub fn submit(&mut self, payload: Bytes, service: ServiceType) -> Result<(), QueueFull> {
        self.pending.push(payload, service)
    }

    /// Handles a received protocol message, returning the actions to
    /// execute in order.
    pub fn handle_message(&mut self, msg: Message) -> Vec<Action> {
        match msg {
            Message::Token(tok) => self.handle_token(tok),
            Message::Data(d) => self.handle_data(d),
            Message::Join(j) => self.handle_join(j),
            Message::Commit(c) => self.handle_commit(c),
        }
    }

    /// Handles the expiry of a logical timer.
    pub fn handle_timer(&mut self, kind: TimerKind) -> Vec<Action> {
        match kind {
            TimerKind::TokenLoss => self.on_token_loss_timeout(),
            TimerKind::TokenRetransmit => self.on_token_retransmit_timeout(),
            TimerKind::Join => self.on_join_timeout(),
            TimerKind::ConsensusTimeout => self.on_consensus_timeout(),
            TimerKind::CommitTimeout => self.on_commit_timeout(),
        }
    }

    // ----- token handling ------------------------------------------------

    fn handle_token(&mut self, tok: Token) -> Vec<Action> {
        match self.mode {
            Mode::Operational => {
                if tok.ring_id != self.ring.id()
                    || (self.ord.handled_any_token && tok.round <= self.ord.round)
                {
                    self.stats.tokens_dropped += 1;
                    return Vec::new();
                }
                self.process_token(tok)
            }
            // A regular token for the *forming* ring proves recovery
            // completed globally; finalize and process it.
            Mode::Recovery => self.handle_recovery_token(tok),
            Mode::Gather | Mode::Commit => {
                self.stats.tokens_dropped += 1;
                Vec::new()
            }
        }
    }

    /// Core of normal-operation token handling; also used by the
    /// representative to bootstrap with the initial token.
    pub(crate) fn process_token(&mut self, tok: Token) -> Vec<Action> {
        debug_assert_eq!(tok.ring_id, self.ring.id());
        self.stats.tokens_handled += 1;
        self.obs.emit(|| ProtoEvent::TokenRx {
            round: tok.round.as_u64(),
            seq: tok.seq.as_u64(),
            aru: tok.aru.as_u64(),
        });
        if self.cfg.flap_damping.enabled {
            self.decay_penalties();
        }
        // The received token's rtr volume is the ring-wide loss signal
        // driving accelerated-window degradation (AIMD).
        let accel_window = self.update_accel_window(tok.rtr.len() as u32);
        let mut actions = Vec::new();

        // 1. Answer retransmission requests (always pre-token).
        let mut remaining_rtr: Vec<Seq> = Vec::new();
        let mut num_retrans: u32 = 0;
        for &s in &tok.rtr {
            if let Some(m) = self.recvbuf.get(s) {
                let mut copy = m.clone();
                copy.after_token = false;
                actions.push(Action::Multicast(copy));
                num_retrans += 1;
                self.obs
                    .emit(|| ProtoEvent::RetransAnswered { seq: s.as_u64() });
            } else if !self.recvbuf.has(s) {
                // We are missing it too; keep the request alive.
                remaining_rtr.push(s);
            }
            // else: already stable and discarded — the request is stale.
        }
        self.stats.retransmissions_sent += u64::from(num_retrans);

        // 2. Flow control: how many new messages may we initiate?
        let allowed = allowed_new_messages(
            &self.cfg,
            FlowInputs {
                backlog: self.pending.len(),
                token_fcc: tok.fcc,
                num_retrans,
                token_seq: tok.seq,
                global_aru: self.ord.global_aru(),
            },
        );

        // 3. Aru update rules (Totem), part one: lower or re-raise.
        let local = self.recvbuf.local_aru();
        debug_assert!(
            local <= tok.seq,
            "local aru {local} cannot exceed token seq {}",
            tok.seq
        );
        let mut aru = tok.aru;
        let mut setter = tok.aru_setter;
        if local < aru {
            aru = local;
            setter = Some(self.pid);
        } else if setter == Some(self.pid) {
            // We lowered it before and nobody lowered it further since:
            // raise it to our current local aru.
            aru = local;
        }
        if setter == Some(self.pid) && aru == tok.seq {
            setter = None;
        }
        // If everything assigned so far is received by all (and by us),
        // the aru tracks the seq as we assign new messages.
        let track_aru = aru == tok.seq && local >= tok.seq && setter.is_none();

        // 4. Pre-token multicast phase: enqueue every new message for
        // the round; multicast only the overflow beyond the accelerated
        // window.
        let ring_id = self.ring.id();
        let mut accel_q: std::collections::VecDeque<DataMessage> =
            std::collections::VecDeque::new();
        let mut seq = tok.seq;
        for _ in 0..allowed {
            let pm = self
                .pending
                .pop()
                .expect("flow control admitted more than the backlog");
            seq = seq.next();
            let msg = DataMessage {
                ring_id,
                seq,
                pid: self.pid,
                round: tok.round,
                service: pm.service,
                after_token: false,
                payload: pm.payload,
            };
            // Our own message counts as received by us.
            let outcome = self.recvbuf.insert(msg.clone());
            debug_assert_eq!(outcome, InsertOutcome::New);
            self.stats.messages_initiated += 1;
            accel_q.push_back(msg);
            if accel_q.len() > accel_window as usize {
                let m = accel_q.pop_front().expect("queue just exceeded window");
                self.stats.messages_sent_before_token += 1;
                self.obs.emit(|| ProtoEvent::MsgPreToken {
                    seq: m.seq.as_u64(),
                });
                actions.push(Action::Multicast(m));
            }
        }
        let new_count = seq - tok.seq;
        if track_aru {
            aru = aru.advance(new_count);
        }

        // 5. Update the remaining token fields and send it on.
        let my_missing = self.recvbuf.missing_up_to(self.ord.prev_token_seq);
        self.stats.retransmissions_requested += my_missing.len() as u64;
        if !my_missing.is_empty() {
            self.obs.emit(|| ProtoEvent::RetransRequested {
                count: my_missing.len() as u32,
            });
        }
        let mut rtr = remaining_rtr;
        rtr.extend(my_missing);
        rtr.sort_unstable();
        rtr.dedup();
        rtr.truncate(crate::wire::MAX_RTR_ENTRIES);
        let sent_this_round = num_retrans + new_count as u32;
        let fcc = tok
            .fcc
            .saturating_sub(self.ord.my_prev_sent)
            .saturating_add(sent_this_round);
        let new_token = Token {
            ring_id,
            round: tok.round.next(),
            seq,
            aru,
            aru_setter: setter,
            fcc,
            rtr,
        };
        self.obs.emit(|| ProtoEvent::TokenTx {
            round: new_token.round.as_u64(),
            seq: new_token.seq.as_u64(),
            new_msgs: new_count as u32,
            rtr_len: new_token.rtr.len() as u32,
        });
        actions.push(Action::SendToken {
            to: self.ring.successor(),
            token: new_token.clone(),
        });

        // 6. Post-token multicast phase: flush the accelerated queue.
        for mut m in accel_q {
            m.after_token = true;
            self.stats.messages_sent_after_token += 1;
            self.obs.emit(|| ProtoEvent::MsgPostToken {
                seq: m.seq.as_u64(),
            });
            actions.push(Action::Multicast(m));
        }

        // 7. Deliver and discard: Safe watermark is the minimum of the
        // arus on the tokens we sent this round and last round.
        let watermark = aru.min(self.ord.aru_last_sent);
        self.emit_deliveries(watermark, &mut actions);
        let already_discarded = self.recvbuf.discarded_up_to();
        self.recvbuf.discard_up_to(watermark);
        self.stats.messages_discarded += self.recvbuf.discarded_up_to() - already_discarded;

        // 8. Bookkeeping for the next round.
        self.ord.prev_token_seq = tok.seq;
        self.ord.aru_prev_sent = self.ord.aru_last_sent;
        self.ord.aru_last_sent = aru;
        self.ord.my_prev_sent = sent_this_round;
        self.ord.round = tok.round;
        self.ord.handled_any_token = true;
        self.ord.last_sent_token = Some(new_token);
        self.ord.retransmit_count = 0;
        self.ord.progress_seen = false;
        self.priority.on_token_processed(tok.round);
        actions.push(Action::SetTimer(TimerKind::TokenLoss));
        actions.push(Action::SetTimer(TimerKind::TokenRetransmit));
        actions
    }

    // ----- data handling --------------------------------------------------

    fn handle_data(&mut self, msg: DataMessage) -> Vec<Action> {
        if msg.ring_id != self.ring.id() {
            return self.handle_foreign_data(msg);
        }
        self.priority.on_data_processed(&msg);
        if msg.round > self.ord.round {
            self.ord.progress_seen = true;
        }
        match self.recvbuf.insert(msg) {
            InsertOutcome::Duplicate => {
                self.stats.duplicates_dropped += 1;
                Vec::new()
            }
            InsertOutcome::New => {
                self.stats.messages_received += 1;
                let mut actions = Vec::new();
                self.emit_deliveries(self.ord.global_aru(), &mut actions);
                actions
            }
        }
    }

    /// Data from a ring other than the installed one. During recovery
    /// these are old-ring retransmissions. During normal operation, a
    /// foreign message from a participant *outside* our ring means a
    /// previously partitioned component is reachable again: shift to
    /// Gather so the rings merge (the Totem merge trigger). Stale
    /// traffic — from our own previous rings, or from current members'
    /// previous rings — is dropped.
    fn handle_foreign_data(&mut self, msg: DataMessage) -> Vec<Action> {
        match self.mode {
            Mode::Recovery => self.handle_recovery_data(msg),
            Mode::Operational => {
                // Traffic from a quarantined flapper must not re-trigger
                // the merge path while its damping penalty decays.
                if self.ring.contains(msg.pid)
                    || self.memb.prev_rings.contains(&msg.ring_id)
                    || self.is_quarantined(msg.pid)
                {
                    self.stats.foreign_dropped += 1;
                    Vec::new()
                } else {
                    self.start_gather(Vec::new())
                }
            }
            Mode::Gather | Mode::Commit => {
                self.stats.foreign_dropped += 1;
                Vec::new()
            }
        }
    }

    pub(crate) fn emit_deliveries(&mut self, safe_up_to: Seq, actions: &mut Vec<Action>) {
        for d in self.recvbuf.deliver_ready(safe_up_to) {
            self.stats.messages_delivered += 1;
            if d.service.requires_stability() {
                self.stats.safe_delivered += 1;
            }
            self.obs.emit(|| ProtoEvent::Delivered {
                seq: d.seq.as_u64(),
                origin: d.pid.as_u16(),
                safe: d.service.requires_stability(),
            });
            actions.push(Action::Deliver(d));
        }
    }

    // ----- timers ----------------------------------------------------------

    fn on_token_retransmit_timeout(&mut self) -> Vec<Action> {
        if self.mode != Mode::Operational {
            return Vec::new();
        }
        if self.ord.progress_seen {
            // The ring moved on; nothing to do (token-loss timer still guards).
            return Vec::new();
        }
        if self.ord.retransmit_count >= self.memb.timeouts.token_retransmit_limit {
            return self.start_gather(Vec::new());
        }
        let Some(tok) = self.ord.last_sent_token.clone() else {
            return Vec::new();
        };
        self.ord.retransmit_count += 1;
        self.stats.tokens_retransmitted += 1;
        self.obs.emit(|| ProtoEvent::TokenRetransmit {
            round: tok.round.as_u64(),
        });
        vec![
            Action::SendToken {
                to: self.ring.successor(),
                token: tok,
            },
            Action::SetTimer(TimerKind::TokenRetransmit),
        ]
    }

    fn on_token_loss_timeout(&mut self) -> Vec<Action> {
        if self.mode != Mode::Operational {
            return Vec::new();
        }
        self.start_gather(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;

    fn pids(n: u16) -> Vec<ParticipantId> {
        (0..n).map(ParticipantId::new).collect()
    }

    fn ring_id() -> RingId {
        RingId::new(ParticipantId::new(0), 1)
    }

    fn make_ring(n: u16, cfg: ProtocolConfig) -> Vec<Participant> {
        pids(n)
            .into_iter()
            .map(|p| Participant::new(p, cfg, ring_id(), pids(n)).unwrap())
            .collect()
    }

    fn first_token(actions: &[Action]) -> Token {
        actions
            .iter()
            .find_map(|a| match a {
                Action::SendToken { token, .. } => Some(token.clone()),
                _ => None,
            })
            .expect("no token sent")
    }

    fn multicasts(actions: &[Action]) -> Vec<DataMessage> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Multicast(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    fn deliveries(actions: &[Action]) -> Vec<crate::message::Delivery> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(d) => Some(d.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn representative_bootstraps_with_initial_token() {
        let mut ring = make_ring(3, ProtocolConfig::accelerated());
        let actions = ring[0].start();
        let tok = first_token(&actions);
        assert_eq!(tok.round, Round::new(1));
        assert_eq!(tok.seq, Seq::ZERO);
        // Non-representatives just arm the loss timer.
        let a1 = ring[1].start();
        assert_eq!(a1, vec![Action::SetTimer(TimerKind::TokenLoss)]);
    }

    #[test]
    fn token_passes_to_successor_and_round_increments_per_hop() {
        let mut ring = make_ring(3, ProtocolConfig::accelerated());
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        assert_eq!(t2.round, Round::new(2));
        let dest = a1
            .iter()
            .find_map(|a| match a {
                Action::SendToken { to, .. } => Some(*to),
                _ => None,
            })
            .unwrap();
        assert_eq!(dest, ParticipantId::new(2));
    }

    #[test]
    fn sender_assigns_contiguous_seqs_and_updates_token() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        ring[0]
            .submit(Bytes::from_static(b"b"), ServiceType::Agreed)
            .unwrap();
        let actions = ring[0].start();
        let tok = first_token(&actions);
        assert_eq!(tok.seq, Seq::new(2));
        assert_eq!(tok.fcc, 2);
        let msgs = multicasts(&actions);
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].seq, Seq::new(1));
        assert_eq!(msgs[1].seq, Seq::new(2));
    }

    #[test]
    fn accelerated_window_splits_pre_and_post_token_sends() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(5)
            .with_accelerated_window(2);
        let mut ring = make_ring(2, cfg);
        for _ in 0..5 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let actions = ring[0].start();
        // Expect: 3 pre-token multicasts, the token, then 2 post-token.
        let token_pos = actions
            .iter()
            .position(|a| matches!(a, Action::SendToken { .. }))
            .unwrap();
        let pre: Vec<_> = actions[..token_pos]
            .iter()
            .filter(|a| matches!(a, Action::Multicast(_)))
            .collect();
        let post: Vec<_> = actions[token_pos..]
            .iter()
            .filter(|a| matches!(a, Action::Multicast(_)))
            .collect();
        assert_eq!(pre.len(), 3);
        assert_eq!(post.len(), 2);
        let msgs = multicasts(&actions);
        assert!(!msgs[0].after_token && !msgs[1].after_token && !msgs[2].after_token);
        assert!(msgs[3].after_token && msgs[4].after_token);
        assert_eq!(ring[0].stats().messages_sent_after_token, 2);
    }

    #[test]
    fn original_config_sends_everything_before_token() {
        let cfg = ProtocolConfig::original().with_personal_window(4);
        let mut ring = make_ring(2, cfg);
        for _ in 0..4 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let actions = ring[0].start();
        let token_pos = actions
            .iter()
            .position(|a| matches!(a, Action::SendToken { .. }))
            .unwrap();
        let post_mcast = actions[token_pos..]
            .iter()
            .filter(|a| matches!(a, Action::Multicast(_)))
            .count();
        assert_eq!(
            post_mcast, 0,
            "original protocol never multicasts after the token"
        );
        assert_eq!(multicasts(&actions).len(), 4);
    }

    #[test]
    fn small_batch_entirely_post_token_when_under_window() {
        let cfg = ProtocolConfig::accelerated().with_accelerated_window(10);
        let mut ring = make_ring(2, cfg);
        for _ in 0..3 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let actions = ring[0].start();
        let token_pos = actions
            .iter()
            .position(|a| matches!(a, Action::SendToken { .. }))
            .unwrap();
        let pre = actions[..token_pos]
            .iter()
            .filter(|a| matches!(a, Action::Multicast(_)))
            .count();
        assert_eq!(pre, 0, "all sends fit in the accelerated window");
        assert_eq!(multicasts(&actions).len(), 3);
    }

    #[test]
    fn personal_window_caps_one_round() {
        let cfg = ProtocolConfig::accelerated().with_personal_window(2);
        let mut ring = make_ring(2, cfg);
        for _ in 0..10 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let actions = ring[0].start();
        assert_eq!(multicasts(&actions).len(), 2);
        assert_eq!(ring[0].pending_len(), 8);
    }

    #[test]
    fn receiver_delivers_agreed_messages_in_order() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        ring[0]
            .submit(Bytes::from_static(b"b"), ServiceType::Agreed)
            .unwrap();
        let actions = ring[0].start();
        // Sender delivered its own messages immediately (aru tracked seq).
        let own = deliveries(&actions);
        assert_eq!(own.len(), 2);
        // Receiver gets the multicasts.
        let mut rx_deliveries = Vec::new();
        for m in multicasts(&actions) {
            let acts = ring[1].handle_message(Message::Data(m));
            rx_deliveries.extend(deliveries(&acts));
        }
        assert_eq!(rx_deliveries.len(), 2);
        assert_eq!(rx_deliveries[0].payload, Bytes::from_static(b"a"));
        assert_eq!(rx_deliveries[1].payload, Bytes::from_static(b"b"));
    }

    #[test]
    fn safe_messages_wait_for_stability() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"s"), ServiceType::Safe)
            .unwrap();
        let a0 = ring[0].start();
        assert!(
            deliveries(&a0).is_empty(),
            "safe message cannot be delivered before stability"
        );
        let t1 = first_token(&a0);
        // P1 receives the data then the token.
        for m in multicasts(&a0) {
            ring[1].handle_message(Message::Data(m));
        }
        let a1 = ring[1].handle_message(Message::Token(t1));
        assert!(deliveries(&a1).is_empty(), "one rotation is not enough");
        // Token returns to P0 (round 2) and then to P1 (round 3): after
        // the aru survives a full rotation both deliver.
        let t2 = first_token(&a1);
        let a0b = ring[0].handle_message(Message::Token(t2));
        let t3 = first_token(&a0b);
        let a1b = ring[1].handle_message(Message::Token(t3));
        let d0 = deliveries(&a0b);
        let d1 = deliveries(&a1b);
        assert_eq!(d0.len() + d1.len(), 2, "{d0:?} {d1:?}");
    }

    #[test]
    fn duplicate_token_is_dropped() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        let _ = ring[1].handle_message(Message::Token(t1.clone()));
        let again = ring[1].handle_message(Message::Token(t1));
        assert!(again.is_empty());
        assert_eq!(ring[1].stats().tokens_dropped, 1);
    }

    #[test]
    fn foreign_ring_token_is_dropped() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let mut tok = Token::initial(RingId::new(ParticipantId::new(9), 9), Seq::ZERO);
        tok.round = Round::new(5);
        assert!(ring[0].handle_message(Message::Token(tok)).is_empty());
        assert_eq!(ring[0].stats().tokens_dropped, 1);
    }

    #[test]
    fn foreign_data_from_stranger_triggers_merge_gather() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let msg = DataMessage {
            ring_id: RingId::new(ParticipantId::new(9), 9),
            seq: Seq::new(1),
            pid: ParticipantId::new(9),
            round: Round::new(1),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::new(),
        };
        let actions = ring[0].handle_message(Message::Data(msg));
        assert_eq!(
            ring[0].mode(),
            Mode::Gather,
            "foreign traffic ⇒ merge attempt"
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::MulticastJoin(_))));
    }

    #[test]
    fn foreign_data_from_current_member_is_stale_and_dropped() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        // A message from P1 (a current member) stamped with some other
        // ring: stale in-flight traffic, not a merge trigger.
        let msg = DataMessage {
            ring_id: RingId::new(ParticipantId::new(1), 7),
            seq: Seq::new(1),
            pid: ParticipantId::new(1),
            round: Round::new(1),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::new(),
        };
        assert!(ring[0].handle_message(Message::Data(msg)).is_empty());
        assert_eq!(ring[0].stats().foreign_dropped, 1);
        assert!(ring[0].is_operational());
    }

    #[test]
    fn lost_message_is_requested_and_retransmitted() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"x"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        // P1 never receives the data message (lost).
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        // P1 cannot request it yet: the rtr limit is the seq of the
        // token from the *previous* round (acceleration rule).
        assert!(
            t2.rtr.is_empty(),
            "must not request possibly-unsent messages"
        );
        assert_eq!(t2.aru, Seq::ZERO, "aru lowered to local");
        // Round 2: P0 passes the token again.
        let a0b = ring[0].handle_message(Message::Token(t2));
        let t3 = first_token(&a0b);
        // Round 2 at P1: now seq 1 is older than the previous token's
        // seq, so it is requested.
        let a1b = ring[1].handle_message(Message::Token(t3));
        let t4 = first_token(&a1b);
        assert_eq!(t4.rtr, vec![Seq::new(1)]);
        // Round 3 at P0: answers the retransmission pre-token.
        let a0c = ring[0].handle_message(Message::Token(t4));
        let m = multicasts(&a0c);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].seq, Seq::new(1));
        assert!(!m[0].after_token);
        assert_eq!(ring[0].stats().retransmissions_sent, 1);
        let t5 = first_token(&a0c);
        assert!(t5.rtr.is_empty(), "answered request removed from token");
        // P1 finally receives and delivers it.
        let acts = ring[1].handle_message(Message::Data(m[0].clone()));
        let d = deliveries(&acts);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload, Bytes::from_static(b"x"));
    }

    #[test]
    fn fcc_decays_after_idle_round() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        assert_eq!(t1.fcc, 1);
        for m in multicasts(&a0) {
            ring[1].handle_message(Message::Data(m));
        }
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        assert_eq!(t2.fcc, 1, "P1 sent nothing, fcc unchanged");
        let a0b = ring[0].handle_message(Message::Token(t2));
        let t3 = first_token(&a0b);
        assert_eq!(t3.fcc, 0, "P0 subtracts its previous round's sends");
    }

    #[test]
    fn aru_tracks_seq_when_everything_received() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        assert_eq!(t1.seq, Seq::new(1));
        assert_eq!(
            t1.aru,
            Seq::new(1),
            "sender has its own message, aru tracks seq"
        );
    }

    #[test]
    fn aru_lowered_by_participant_missing_messages() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        // P1 handles the token without having received the data.
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        assert_eq!(t2.aru, Seq::ZERO);
        assert_eq!(t2.aru_setter, Some(ParticipantId::new(1)));
    }

    #[test]
    fn aru_raised_again_by_setter_after_catching_up() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        let data = multicasts(&a0);
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        assert_eq!(t2.aru, Seq::ZERO);
        // Late data arrives at P1.
        for m in data {
            ring[1].handle_message(Message::Data(m));
        }
        // Round trip through P0.
        let a0b = ring[0].handle_message(Message::Token(t2));
        let t3 = first_token(&a0b);
        // P1, the setter, raises the aru to its local aru and clears
        // itself.
        let a1b = ring[1].handle_message(Message::Token(t3));
        let t4 = first_token(&a1b);
        assert_eq!(t4.aru, Seq::new(1));
        assert_eq!(t4.aru_setter, None);
    }

    #[test]
    fn submit_backpressure_when_queue_full() {
        let mut p = Participant::new(
            ParticipantId::new(0),
            ProtocolConfig::accelerated(),
            ring_id(),
            pids(1),
        )
        .unwrap();
        // Fill the queue to capacity.
        let cap = crate::sendq::DEFAULT_CAPACITY;
        for _ in 0..cap {
            p.submit(Bytes::new(), ServiceType::Agreed).unwrap();
        }
        assert!(p.submit(Bytes::new(), ServiceType::Agreed).is_err());
    }

    #[test]
    fn singleton_ring_self_delivers() {
        let mut p = Participant::new(
            ParticipantId::new(0),
            ProtocolConfig::accelerated(),
            ring_id(),
            pids(1),
        )
        .unwrap();
        p.submit(Bytes::from_static(b"solo"), ServiceType::Agreed)
            .unwrap();
        let actions = p.start();
        let d = deliveries(&actions);
        assert_eq!(d.len(), 1);
        let tok = first_token(&actions);
        // Token loops back to self.
        let a2 = p.handle_message(Message::Token(tok));
        assert!(first_token(&a2).round > Round::new(1));
    }

    #[test]
    fn singleton_safe_delivery_takes_two_rounds() {
        let mut p = Participant::new(
            ParticipantId::new(0),
            ProtocolConfig::accelerated(),
            ring_id(),
            pids(1),
        )
        .unwrap();
        p.submit(Bytes::from_static(b"s"), ServiceType::Safe)
            .unwrap();
        let a1 = p.start();
        assert!(deliveries(&a1).is_empty());
        let t = first_token(&a1);
        let a2 = p.handle_message(Message::Token(t));
        assert_eq!(deliveries(&a2).len(), 1);
        assert_eq!(p.stats().safe_delivered, 1);
    }

    #[test]
    fn token_retransmitted_on_timeout_without_progress() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        let acts = ring[0].handle_timer(TimerKind::TokenRetransmit);
        let resent = first_token(&acts);
        assert_eq!(resent, t1);
        assert_eq!(ring[0].stats().tokens_retransmitted, 1);
        assert!(acts.contains(&Action::SetTimer(TimerKind::TokenRetransmit)));
    }

    #[test]
    fn token_not_retransmitted_after_progress() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        // P0 sees the next token (progress), handles it, then... the
        // retransmit timer for the *new* send is armed. Simulate data
        // progress instead: successor's message with a newer round.
        let _ = ring[0].handle_message(Message::Token(t2));
        ring[0]
            .submit(Bytes::from_static(b"z"), ServiceType::Agreed)
            .unwrap();
        // Inject a newer-round data message from P1.
        let msg = DataMessage {
            ring_id: ring_id(),
            seq: Seq::new(1),
            pid: ParticipantId::new(1),
            round: Round::new(4),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::new(),
        };
        ring[0].handle_message(Message::Data(msg));
        let acts = ring[0].handle_timer(TimerKind::TokenRetransmit);
        assert!(
            acts.is_empty(),
            "progress seen, no retransmission: {acts:?}"
        );
    }

    #[test]
    fn stable_messages_are_discarded() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        for m in multicasts(&a0) {
            ring[1].handle_message(Message::Data(m));
        }
        let a1 = ring[1].handle_message(Message::Token(t1));
        let t2 = first_token(&a1);
        let a0b = ring[0].handle_message(Message::Token(t2));
        let t3 = first_token(&a0b);
        // After the aru survives a rotation, both sides discard.
        let _ = ring[1].handle_message(Message::Token(t3));
        assert_eq!(ring[0].buffered_len(), 0, "P0 discarded stable message");
        assert_eq!(ring[1].buffered_len(), 0, "P1 discarded stable message");
        assert!(ring[0].stats().messages_discarded >= 1);
    }

    #[test]
    fn fifo_and_causal_services_deliver_like_agreed() {
        // The protocol delivers FIFO/Causal at Agreed cost (§II): they
        // flow through the same path and never block on stability.
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"f"), ServiceType::Fifo)
            .unwrap();
        ring[0]
            .submit(Bytes::from_static(b"c"), ServiceType::Causal)
            .unwrap();
        ring[0]
            .submit(Bytes::from_static(b"r"), ServiceType::Reliable)
            .unwrap();
        let actions = ring[0].start();
        // The sender delivers all three immediately (no stability
        // requirement).
        assert_eq!(deliveries(&actions).len(), 3);
    }

    #[test]
    fn max_seq_gap_blocks_new_messages_when_stability_lags() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(10)
            .with_max_seq_gap(3);
        let mut ring = make_ring(2, cfg);
        for _ in 0..10 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        // Round 1: the global aru estimate is still 0, so at most
        // max_seq_gap = 3 messages may be initiated.
        let actions = ring[0].start();
        assert_eq!(multicasts(&actions).len(), 3);
        assert_eq!(ring[0].pending_len(), 7);
    }

    #[test]
    fn retransmit_limit_escalates_to_membership() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        let limit = ring[0].timeouts().token_retransmit_limit;
        let _ = ring[0].start();
        // Fire the retransmit timer past the limit with no progress.
        for _ in 0..limit {
            let acts = ring[0].handle_timer(TimerKind::TokenRetransmit);
            assert!(acts.iter().any(|a| matches!(a, Action::SendToken { .. })));
        }
        let acts = ring[0].handle_timer(TimerKind::TokenRetransmit);
        assert_eq!(ring[0].mode(), Mode::Gather, "gives up and gathers");
        assert!(acts.iter().any(|a| matches!(a, Action::MulticastJoin(_))));
        assert_eq!(ring[0].stats().gathers_started, 1);
    }

    #[test]
    fn rtr_list_is_capped_at_wire_limit() {
        // A participant missing a huge range only requests up to the
        // wire cap per round.
        let cfg = ProtocolConfig::accelerated().with_max_seq_gap(1_000_000);
        let mut ring = make_ring(2, cfg);
        let a0 = ring[0].start();
        let t1 = first_token(&a0);
        // Hand-craft a token claiming a huge seq from the previous
        // round at P1 (simulate everything lost).
        let mut big = t1.clone();
        big.seq = Seq::new(10_000);
        big.aru = Seq::ZERO;
        let _ = ring[1].handle_message(Message::Token(big.clone()));
        let mut next = big.clone();
        next.round = big.round.advance(2);
        let a = ring[1].handle_message(Message::Token(next));
        let t = first_token(&a);
        assert_eq!(t.rtr.len(), crate::wire::MAX_RTR_ENTRIES);
    }

    #[test]
    fn global_window_counts_retransmissions() {
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(8)
            .with_global_window(8);
        let mut ring = make_ring(2, cfg);
        for _ in 0..8 {
            ring[0]
                .submit(Bytes::from_static(b"x"), ServiceType::Agreed)
                .unwrap();
        }
        let a0 = ring[0].start();
        assert_eq!(multicasts(&a0).len(), 8);
        let t1 = first_token(&a0);
        assert_eq!(t1.fcc, 8);
        // P1 also wants to send, but the global window is exhausted.
        ring[1]
            .submit(Bytes::from_static(b"y"), ServiceType::Agreed)
            .unwrap();
        let a1 = ring[1].handle_message(Message::Token(t1));
        assert_eq!(
            multicasts(&a1).len(),
            0,
            "global window exhausted by P0's sends"
        );
        assert_eq!(ring[1].pending_len(), 1);
    }

    #[test]
    fn send_split_counters_sum_to_initiated() {
        // 5 messages through a window of 2: 3 pre-token, 2 post-token.
        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(5)
            .with_accelerated_window(2);
        let mut ring = make_ring(2, cfg);
        for _ in 0..5 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let _ = ring[0].start();
        let s = ring[0].stats();
        assert_eq!(s.messages_sent_before_token, 3);
        assert_eq!(s.messages_sent_after_token, 2);
        assert_eq!(s.messages_initiated, 5);
        assert!(s.send_split_consistent());

        // The original protocol sends everything pre-token.
        let mut orig = make_ring(2, ProtocolConfig::original().with_personal_window(4));
        for _ in 0..4 {
            orig[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let _ = orig[0].start();
        let s = orig[0].stats();
        assert_eq!(s.messages_sent_before_token, 4);
        assert_eq!(s.messages_sent_after_token, 0);
        assert!(s.send_split_consistent());
    }

    #[test]
    fn observer_sees_token_and_send_events_with_injected_time() {
        use crate::observer::{Observer, ProtoEvent};
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Sink(Mutex<Vec<(u64, ProtoEvent)>>);
        impl Observer for Sink {
            fn on_event(&self, at: u64, ev: &ProtoEvent) {
                self.0.lock().unwrap().push((at, *ev));
            }
        }

        let cfg = ProtocolConfig::accelerated()
            .with_personal_window(5)
            .with_accelerated_window(2);
        let mut ring = make_ring(2, cfg);
        let sink = Arc::new(Sink::default());
        ring[0].set_observer(sink.clone());
        ring[0].observe_now(7_000);
        for _ in 0..5 {
            ring[0]
                .submit(Bytes::from_static(b"m"), ServiceType::Agreed)
                .unwrap();
        }
        let _ = ring[0].start();
        let events = sink.0.lock().unwrap().clone();
        assert!(events.iter().all(|(at, _)| *at == 7_000));
        let count = |name: &str| events.iter().filter(|(_, e)| e.name() == name).count();
        assert_eq!(count("token-rx"), 1);
        assert_eq!(count("token-tx"), 1);
        assert_eq!(count("msg-pre-token"), 3);
        assert_eq!(count("msg-post-token"), 2);
        assert_eq!(count("delivered"), 5);
        // Event order mirrors the action order: pre-token sends, then
        // the token, then the post-token sends.
        let names: Vec<&str> = events.iter().map(|(_, e)| e.name()).collect();
        let tx_pos = names.iter().position(|n| *n == "token-tx").unwrap();
        assert!(names[..tx_pos].contains(&"msg-pre-token"));
        assert!(!names[..tx_pos].contains(&"msg-post-token"));

        // Detaching reverts to the silent path.
        let before = events.len();
        ring[0].clear_observer();
        assert!(!ring[0].has_observer());
        ring[0]
            .submit(Bytes::from_static(b"q"), ServiceType::Agreed)
            .unwrap();
        assert_eq!(sink.0.lock().unwrap().len(), before);
    }

    #[test]
    fn stats_track_protocol_activity() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated());
        ring[0]
            .submit(Bytes::from_static(b"a"), ServiceType::Agreed)
            .unwrap();
        let a0 = ring[0].start();
        assert_eq!(ring[0].stats().tokens_handled, 1);
        assert_eq!(ring[0].stats().messages_initiated, 1);
        assert_eq!(ring[0].stats().messages_delivered, 1);
        for m in multicasts(&a0) {
            ring[1].handle_message(Message::Data(m));
        }
        assert_eq!(ring[1].stats().messages_received, 1);
        assert_eq!(ring[1].stats().messages_delivered, 1);
    }

    #[test]
    fn total_order_is_identical_across_participants() {
        // Three participants, several rounds of mixed traffic; verify
        // the delivered sequence is identical everywhere.
        let mut ring = make_ring(3, ProtocolConfig::accelerated().with_accelerated_window(1));
        let mut logs: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 3];
        let mut inflight_data: Vec<DataMessage> = Vec::new();
        let mut token: Option<(usize, Token)> = None;

        // Submit distinct payloads at each participant.
        for (i, p) in ring.iter_mut().enumerate() {
            for k in 0..4 {
                let payload = Bytes::from(format!("p{i}-m{k}"));
                p.submit(payload, ServiceType::Agreed).unwrap();
            }
        }
        let a0 = ring[0].start();
        collect(&a0, 0, &mut logs, &mut inflight_data, &mut token);
        // Run 12 token handlings, delivering data before each token
        // (in-order network).
        for _ in 0..12 {
            // Flush all data to everyone first.
            let data = std::mem::take(&mut inflight_data);
            for m in data {
                for (i, p) in ring.iter_mut().enumerate() {
                    if p.pid() != m.pid {
                        let acts = p.handle_message(Message::Data(m.clone()));
                        collect(&acts, i, &mut logs, &mut inflight_data, &mut token);
                    }
                }
            }
            let (dest, tok) = token.take().expect("token in flight");
            let acts = ring[dest].handle_message(Message::Token(tok));
            collect(&acts, dest, &mut logs, &mut inflight_data, &mut token);
        }
        assert_eq!(logs[0].len(), 12, "all messages delivered: {:?}", logs[0]);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);

        fn collect(
            actions: &[Action],
            _who: usize,
            logs: &mut [Vec<(u64, Bytes)>],
            inflight: &mut Vec<DataMessage>,
            token: &mut Option<(usize, Token)>,
        ) {
            for a in actions {
                match a {
                    Action::Multicast(m) => inflight.push(m.clone()),
                    Action::SendToken { to, token: t } => {
                        *token = Some((to.as_u16() as usize, t.clone()));
                    }
                    Action::Deliver(d) => {
                        logs[_who].push((d.seq.as_u64(), d.payload.clone()));
                    }
                    _ => {}
                }
            }
        }
    }

    // ----- AIMD accelerated-window degradation ---------------------------

    fn aimd_cfg() -> ProtocolConfig {
        ProtocolConfig::accelerated()
            .with_accelerated_window(4)
            .with_accel_aimd(crate::config::AimdConfig {
                enabled: true,
                pressure_threshold: 4,
                pressure_rounds: 2,
                recovery_rounds: 3,
            })
    }

    #[test]
    fn aimd_disabled_window_is_static() {
        let mut ring = make_ring(2, ProtocolConfig::accelerated().with_accelerated_window(4));
        assert_eq!(ring[0].effective_accelerated_window(), 4);
        for _ in 0..10 {
            ring[0].update_accel_window(100);
        }
        assert_eq!(ring[0].effective_accelerated_window(), 4);
        assert_eq!(ring[0].stats().accel_window_shrinks, 0);
    }

    #[test]
    fn aimd_shrinks_under_sustained_pressure_and_recovers() {
        let mut ring = make_ring(2, aimd_cfg());
        let p = &mut ring[0];
        assert_eq!(p.effective_accelerated_window(), 4);
        // One pressured round is not enough (pressure_rounds = 2).
        p.update_accel_window(10);
        assert_eq!(p.effective_accelerated_window(), 4);
        p.update_accel_window(10);
        assert_eq!(p.effective_accelerated_window(), 2, "multiplicative halve");
        // Two more pressured rounds: 2 -> 1.
        p.update_accel_window(10);
        p.update_accel_window(10);
        assert_eq!(p.effective_accelerated_window(), 1);
        p.update_accel_window(10);
        p.update_accel_window(10);
        assert_eq!(p.effective_accelerated_window(), 0, "original Ring reached");
        // Further pressure cannot shrink below zero.
        p.update_accel_window(10);
        p.update_accel_window(10);
        assert_eq!(p.effective_accelerated_window(), 0);
        assert_eq!(p.stats().accel_window_shrinks, 3);
        // Calm rounds recover additively (recovery_rounds = 3 per step).
        for _ in 0..3 {
            p.update_accel_window(0);
        }
        assert_eq!(p.effective_accelerated_window(), 1, "additive +1");
        for _ in 0..9 {
            p.update_accel_window(0);
        }
        assert_eq!(p.effective_accelerated_window(), 4, "fully recovered");
        // Recovery never overshoots the configured window.
        for _ in 0..6 {
            p.update_accel_window(0);
        }
        assert_eq!(p.effective_accelerated_window(), 4);
        assert_eq!(p.stats().accel_window_grows, 4);
    }

    #[test]
    fn aimd_pressure_must_be_consecutive() {
        let mut ring = make_ring(2, aimd_cfg());
        let p = &mut ring[0];
        // Alternating pressure/calm never accumulates pressure_rounds.
        for _ in 0..10 {
            p.update_accel_window(10);
            p.update_accel_window(0);
        }
        assert_eq!(p.effective_accelerated_window(), 4);
        assert_eq!(p.stats().accel_window_shrinks, 0);
    }
}
