//! Rotation-informed adaptive failure detection.
//!
//! The static [`TimeoutConfig`] defaults suit one network; on a faster
//! or slower one they either fire spuriously (triggering the expensive
//! gather/recovery path for no reason) or detect real failures far too
//! slowly. This module derives the failure-detection timeouts from the
//! *measured* token-rotation time instead: an [`AdaptiveTimeouts`]
//! controller ingests rotation samples (the same values the `ar-net`
//! runtime records into its telemetry histogram) and sets each timeout
//! to a high quantile of the observed rotation times a per-timeout
//! safety factor, clamped to a configurable floor/ceiling.
//!
//! Like the rest of `ar-core` the controller is sans-io and fully
//! deterministic: it holds a bounded window of raw samples, never reads
//! a clock, and the same sample sequence always produces the same
//! timeout sequence — which is what lets the nemesis harness drive it
//! on a virtual clock with bit-identical results across reruns. The
//! embedding environment decides where samples come from (wall-clock
//! deltas in `ar-net::Runtime`, virtual-clock deltas in the nemesis
//! runner) and installs the derived values with
//! [`Participant::adapt_timeouts`](crate::Participant::adapt_timeouts).

use std::collections::VecDeque;

use crate::participant::{TimeoutConfig, TimeoutConfigError};

/// Policy for deriving timeouts from observed token-rotation times.
///
/// Each derived timeout is `quantile(rotation) * factor`, clamped to
/// `[floor, ceiling]` (nanoseconds). Until `min_samples` rotations have
/// been observed the controller keeps the base [`TimeoutConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Which quantile of the rotation window to read (0 < q <= 1).
    pub quantile: f64,
    /// Safety factor for the token-loss timeout.
    pub loss_factor: f64,
    /// Safety factor for the token-retransmit timeout.
    pub retransmit_factor: f64,
    /// Safety factor for the gather-consensus timeout.
    pub consensus_factor: f64,
    /// Token-loss clamp floor, nanoseconds.
    pub token_loss_floor: u64,
    /// Token-loss clamp ceiling, nanoseconds.
    pub token_loss_ceiling: u64,
    /// Token-retransmit clamp floor, nanoseconds.
    pub token_retransmit_floor: u64,
    /// Token-retransmit clamp ceiling, nanoseconds.
    pub token_retransmit_ceiling: u64,
    /// Consensus clamp floor, nanoseconds.
    pub consensus_floor: u64,
    /// Consensus clamp ceiling, nanoseconds.
    pub consensus_ceiling: u64,
    /// Rotations to observe before the first adaptation.
    pub min_samples: usize,
    /// Bounded rotation-sample window (oldest samples are evicted).
    pub window: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            quantile: 0.99,
            loss_factor: 8.0,
            retransmit_factor: 2.0,
            consensus_factor: 16.0,
            token_loss_floor: 2_000_000,             // 2 ms
            token_loss_ceiling: 10_000_000_000,      // 10 s
            token_retransmit_floor: 500_000,         // 0.5 ms
            token_retransmit_ceiling: 1_000_000_000, // 1 s
            consensus_floor: 10_000_000,             // 10 ms
            consensus_ceiling: 30_000_000_000,       // 30 s
            min_samples: 16,
            window: 128,
        }
    }
}

impl AdaptiveConfig {
    /// Checks the policy for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveConfigError`] for a quantile outside
    /// `(0, 1]`, a safety factor below 1 (or NaN), a zero floor, an
    /// inverted floor/ceiling pair, or a zero window / sample minimum.
    pub fn validate(&self) -> Result<(), AdaptiveConfigError> {
        if !(self.quantile > 0.0 && self.quantile <= 1.0) {
            return Err(AdaptiveConfigError::Quantile(self.quantile));
        }
        for (name, f) in [
            ("loss_factor", self.loss_factor),
            ("retransmit_factor", self.retransmit_factor),
            ("consensus_factor", self.consensus_factor),
        ] {
            if f.is_nan() || f < 1.0 {
                return Err(AdaptiveConfigError::Factor(name));
            }
        }
        for (name, floor, ceiling) in [
            ("token_loss", self.token_loss_floor, self.token_loss_ceiling),
            (
                "token_retransmit",
                self.token_retransmit_floor,
                self.token_retransmit_ceiling,
            ),
            ("consensus", self.consensus_floor, self.consensus_ceiling),
        ] {
            if floor == 0 || floor > ceiling {
                return Err(AdaptiveConfigError::Bounds(name));
            }
        }
        if self.window == 0 || self.min_samples == 0 {
            return Err(AdaptiveConfigError::EmptyWindow);
        }
        Ok(())
    }
}

/// Errors produced by [`AdaptiveConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveConfigError {
    /// The quantile was outside `(0, 1]`.
    Quantile(f64),
    /// A safety factor was below 1 (or NaN).
    Factor(&'static str),
    /// A clamp floor was zero or exceeded its ceiling.
    Bounds(&'static str),
    /// The sample window or sample minimum was zero.
    EmptyWindow,
}

impl core::fmt::Display for AdaptiveConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdaptiveConfigError::Quantile(q) => {
                write!(f, "quantile {q} must be in (0, 1]")
            }
            AdaptiveConfigError::Factor(name) => {
                write!(f, "{name} must be a finite factor >= 1")
            }
            AdaptiveConfigError::Bounds(name) => {
                write!(f, "{name} clamp floor must be positive and <= ceiling")
            }
            AdaptiveConfigError::EmptyWindow => {
                f.write_str("sample window and min_samples must be positive")
            }
        }
    }
}

impl std::error::Error for AdaptiveConfigError {}

/// Pure derivation of a [`TimeoutConfig`] from one rotation estimate.
///
/// Exposed separately from the controller so its properties — outputs
/// clamped to `[floor, ceiling]`, monotone in `rotation_ns`, and a
/// valid (non-inverted) timeout relation — can be property-tested
/// directly. The join and commit timeouts and the retransmit limit are
/// carried over from `base` unchanged; after clamping, the retransmit
/// timeout is forced strictly below the loss timeout so the derived
/// config always passes [`TimeoutConfig::validate`].
pub fn derive_timeouts(
    base: &TimeoutConfig,
    cfg: &AdaptiveConfig,
    rotation_ns: u64,
) -> TimeoutConfig {
    let scaled = |factor: f64, floor: u64, ceiling: u64| -> u64 {
        let raw = ((rotation_ns as f64) * factor).round();
        let raw = raw.clamp(0.0, u64::MAX as f64) as u64;
        raw.clamp(floor, ceiling)
    };
    let token_loss = scaled(
        cfg.loss_factor,
        cfg.token_loss_floor,
        cfg.token_loss_ceiling,
    );
    let mut token_retransmit = scaled(
        cfg.retransmit_factor,
        cfg.token_retransmit_floor,
        cfg.token_retransmit_ceiling,
    );
    if token_retransmit >= token_loss {
        token_retransmit = (token_loss / 2).max(1);
    }
    let consensus = scaled(
        cfg.consensus_factor,
        cfg.consensus_floor,
        cfg.consensus_ceiling,
    );
    TimeoutConfig {
        token_loss,
        token_retransmit,
        consensus,
        ..*base
    }
}

/// Deterministic controller turning rotation samples into timeouts.
///
/// Feed one sample per observed token rotation with
/// [`record_rotation`](Self::record_rotation); read the derived policy
/// with [`current`](Self::current). The controller never reads a clock,
/// so the same sample sequence always yields the same timeout sequence.
#[derive(Debug, Clone)]
pub struct AdaptiveTimeouts {
    cfg: AdaptiveConfig,
    base: TimeoutConfig,
    window: VecDeque<u64>,
    sorted: Vec<u64>,
    current: TimeoutConfig,
    updates: u64,
}

impl AdaptiveTimeouts {
    /// Creates a controller around a base (pre-adaptation) policy.
    ///
    /// # Errors
    ///
    /// Returns the policy or base-timeout validation error.
    pub fn new(
        base: TimeoutConfig,
        cfg: AdaptiveConfig,
    ) -> Result<AdaptiveTimeouts, AdaptiveInitError> {
        cfg.validate().map_err(AdaptiveInitError::Policy)?;
        base.validate().map_err(AdaptiveInitError::Base)?;
        Ok(AdaptiveTimeouts {
            cfg,
            base,
            window: VecDeque::with_capacity(cfg.window),
            sorted: Vec::with_capacity(cfg.window),
            current: base,
            updates: 0,
        })
    }

    /// Records one observed token-rotation duration (nanoseconds) and
    /// re-derives the timeouts. Returns `true` when the derived policy
    /// changed (the caller should then install
    /// [`current`](Self::current) into its participant).
    pub fn record_rotation(&mut self, rotation_ns: u64) -> bool {
        if self.window.len() == self.cfg.window {
            let old = self.window.pop_front().expect("window is non-empty");
            let idx = self
                .sorted
                .binary_search(&old)
                .expect("evicted sample must be present");
            self.sorted.remove(idx);
        }
        self.window.push_back(rotation_ns);
        let at = self
            .sorted
            .binary_search(&rotation_ns)
            .unwrap_or_else(|i| i);
        self.sorted.insert(at, rotation_ns);
        if self.window.len() < self.cfg.min_samples {
            return false;
        }
        let q = self
            .rotation_quantile()
            .expect("window has at least min_samples entries");
        let derived = derive_timeouts(&self.base, &self.cfg, q);
        debug_assert!(derived.validate().is_ok());
        if derived == self.current {
            return false;
        }
        self.current = derived;
        self.updates += 1;
        true
    }

    /// The timeout policy currently in force (the base policy until
    /// `min_samples` rotations have been observed).
    pub fn current(&self) -> TimeoutConfig {
        self.current
    }

    /// The configured-quantile rotation estimate over the current
    /// window, or `None` while the window is empty.
    pub fn rotation_quantile(&self) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let len = self.sorted.len();
        let rank = (self.cfg.quantile * len as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, len) - 1])
    }

    /// How many times the derived policy has changed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of rotation samples currently held.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// Drops all samples and reverts to the base policy (used when the
    /// embedding environment restarts a participant).
    pub fn reset(&mut self) {
        self.window.clear();
        self.sorted.clear();
        self.current = self.base;
    }
}

/// Errors constructing an [`AdaptiveTimeouts`] controller.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveInitError {
    /// The adaptation policy is inconsistent.
    Policy(AdaptiveConfigError),
    /// The base timeout table is invalid.
    Base(TimeoutConfigError),
}

impl core::fmt::Display for AdaptiveInitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdaptiveInitError::Policy(e) => write!(f, "invalid adaptive policy: {e}"),
            AdaptiveInitError::Base(e) => write!(f, "invalid base timeouts: {e}"),
        }
    }
}

impl std::error::Error for AdaptiveInitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        AdaptiveConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_policies_are_rejected() {
        let c = AdaptiveConfig {
            quantile: 0.0,
            ..AdaptiveConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(AdaptiveConfigError::Quantile(_))
        ));
        let c = AdaptiveConfig {
            loss_factor: 0.5,
            ..AdaptiveConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(AdaptiveConfigError::Factor("loss_factor"))
        );
        let c = AdaptiveConfig {
            token_loss_floor: 0,
            ..AdaptiveConfig::default()
        };
        assert_eq!(c.validate(), Err(AdaptiveConfigError::Bounds("token_loss")));
        let base = AdaptiveConfig::default();
        let c = AdaptiveConfig {
            consensus_floor: base.consensus_ceiling + 1,
            ..base
        };
        assert_eq!(c.validate(), Err(AdaptiveConfigError::Bounds("consensus")));
        let c = AdaptiveConfig {
            window: 0,
            ..AdaptiveConfig::default()
        };
        assert_eq!(c.validate(), Err(AdaptiveConfigError::EmptyWindow));
    }

    #[test]
    fn derive_clamps_to_floor_and_ceiling() {
        let base = TimeoutConfig::default();
        let cfg = AdaptiveConfig::default();
        let lo = derive_timeouts(&base, &cfg, 0);
        assert_eq!(lo.token_loss, cfg.token_loss_floor);
        assert_eq!(lo.token_retransmit, cfg.token_retransmit_floor);
        assert_eq!(lo.consensus, cfg.consensus_floor);
        let hi = derive_timeouts(&base, &cfg, u64::MAX / 32);
        assert_eq!(hi.token_loss, cfg.token_loss_ceiling);
        assert_eq!(hi.consensus, cfg.consensus_ceiling);
        assert!(hi.validate().is_ok());
    }

    #[test]
    fn derive_scales_by_factor_in_band() {
        let base = TimeoutConfig::default();
        let cfg = AdaptiveConfig::default();
        // 1 ms rotation: 8 ms loss, 2 ms retransmit, 16 ms consensus.
        let t = derive_timeouts(&base, &cfg, 1_000_000);
        assert_eq!(t.token_loss, 8_000_000);
        assert_eq!(t.token_retransmit, 2_000_000);
        assert_eq!(t.consensus, 16_000_000);
        assert_eq!(t.join, base.join);
        assert_eq!(t.commit, base.commit);
        assert_eq!(t.token_retransmit_limit, base.token_retransmit_limit);
    }

    #[test]
    fn derived_retransmit_stays_below_loss() {
        let base = TimeoutConfig::default();
        // A policy whose clamps would invert the relation.
        let cfg = AdaptiveConfig {
            token_loss_ceiling: 3_000_000,
            token_retransmit_floor: 4_000_000,
            token_retransmit_ceiling: 5_000_000,
            ..AdaptiveConfig::default()
        };
        let t = derive_timeouts(&base, &cfg, 1_000_000);
        assert!(t.token_retransmit < t.token_loss);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn controller_waits_for_min_samples_then_adapts() {
        let base = TimeoutConfig::default();
        let cfg = AdaptiveConfig {
            min_samples: 4,
            ..AdaptiveConfig::default()
        };
        let mut ctl = AdaptiveTimeouts::new(base, cfg).unwrap();
        for _ in 0..3 {
            assert!(!ctl.record_rotation(1_000_000));
            assert_eq!(ctl.current(), base);
        }
        assert!(ctl.record_rotation(1_000_000));
        assert_eq!(ctl.current().token_loss, 8_000_000);
        assert_eq!(ctl.updates(), 1);
        // Same samples again: no change.
        assert!(!ctl.record_rotation(1_000_000));
        assert_eq!(ctl.updates(), 1);
    }

    #[test]
    fn window_evicts_oldest_samples() {
        let base = TimeoutConfig::default();
        let cfg = AdaptiveConfig {
            min_samples: 2,
            window: 4,
            ..AdaptiveConfig::default()
        };
        let mut ctl = AdaptiveTimeouts::new(base, cfg).unwrap();
        // One huge outlier, then a full window of calm samples: the
        // outlier ages out and the quantile falls back.
        ctl.record_rotation(1_000_000_000);
        for _ in 0..4 {
            ctl.record_rotation(1_000_000);
        }
        assert_eq!(ctl.samples(), 4);
        assert_eq!(ctl.rotation_quantile(), Some(1_000_000));
    }

    #[test]
    fn reset_reverts_to_base() {
        let base = TimeoutConfig::default();
        let cfg = AdaptiveConfig {
            min_samples: 1,
            ..AdaptiveConfig::default()
        };
        let mut ctl = AdaptiveTimeouts::new(base, cfg).unwrap();
        assert!(ctl.record_rotation(1_000_000));
        assert_ne!(ctl.current(), base);
        ctl.reset();
        assert_eq!(ctl.current(), base);
        assert_eq!(ctl.samples(), 0);
    }

    #[test]
    fn invalid_base_is_rejected() {
        let base = TimeoutConfig {
            token_retransmit: 60_000_000, // >= token_loss
            ..TimeoutConfig::default()
        };
        assert!(matches!(
            AdaptiveTimeouts::new(base, AdaptiveConfig::default()),
            Err(AdaptiveInitError::Base(_))
        ));
    }
}
