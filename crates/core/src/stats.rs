//! Protocol statistics counters.

use serde::{Deserialize, Serialize};

/// Counters maintained by a participant across its lifetime.
///
/// All counters are cumulative; callers that want per-interval rates
/// should snapshot and diff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParticipantStats {
    /// Tokens handled (duplicates excluded).
    pub tokens_handled: u64,
    /// Duplicate or stale tokens dropped.
    pub tokens_dropped: u64,
    /// Tokens retransmitted after a retransmission timeout.
    pub tokens_retransmitted: u64,
    /// New data messages initiated by this participant.
    pub messages_initiated: u64,
    /// Of those, messages multicast during the pre-token phase (the
    /// overflow beyond the accelerated window; every send under the
    /// original protocol).
    pub messages_sent_before_token: u64,
    /// Of those, messages multicast during the post-token phase.
    pub messages_sent_after_token: u64,
    /// Retransmissions answered by this participant.
    pub retransmissions_sent: u64,
    /// Retransmission requests this participant placed on the token.
    pub retransmissions_requested: u64,
    /// Data messages received and buffered (duplicates excluded).
    pub messages_received: u64,
    /// Duplicate data messages dropped.
    pub duplicates_dropped: u64,
    /// Data messages from foreign (old or unknown) rings dropped.
    pub foreign_dropped: u64,
    /// Messages delivered to the application.
    pub messages_delivered: u64,
    /// Of those, messages delivered with Safe service.
    pub safe_delivered: u64,
    /// Messages discarded after becoming stable.
    pub messages_discarded: u64,
    /// Configuration changes delivered (regular configurations
    /// installed).
    pub config_changes: u64,
    /// Membership gather phases entered.
    pub gathers_started: u64,
    /// Timeout policies installed by the adaptive controller.
    pub timeouts_adapted: u64,
    /// Members quarantined by flap damping.
    pub members_quarantined: u64,
    /// Members reinstated after their flap penalty decayed.
    pub members_reinstated: u64,
    /// Join messages suppressed because the sender was quarantined.
    pub joins_suppressed: u64,
    /// AIMD multiplicative shrinks of the effective accelerated window.
    pub accel_window_shrinks: u64,
    /// AIMD additive recoveries of the effective accelerated window.
    pub accel_window_grows: u64,
    /// Recovery retransmission bursts truncated by the burst limit.
    pub recovery_burst_truncated: u64,
    /// New-ring data messages dropped during recovery because the
    /// pending buffer hit its limit.
    pub recovery_pending_dropped: u64,
}

impl ParticipantStats {
    /// Creates zeroed counters.
    pub fn new() -> ParticipantStats {
        ParticipantStats::default()
    }

    /// The paper's headline accelerated-ring invariant: every initiated
    /// message is multicast exactly once, either before or after the
    /// token.
    pub fn send_split_consistent(&self) -> bool {
        self.messages_initiated == self.messages_sent_before_token + self.messages_sent_after_token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let s = ParticipantStats::new();
        assert_eq!(s.tokens_handled, 0);
        assert_eq!(s.messages_delivered, 0);
        assert_eq!(s, ParticipantStats::default());
        assert!(s.send_split_consistent());
    }

    #[test]
    fn send_split_invariant_detects_mismatch() {
        let mut s = ParticipantStats::new();
        s.messages_initiated = 5;
        s.messages_sent_before_token = 3;
        s.messages_sent_after_token = 2;
        assert!(s.send_split_consistent());
        s.messages_sent_after_token = 1;
        assert!(!s.send_split_consistent());
    }
}
