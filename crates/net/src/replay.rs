//! Deterministic schedule replay: the counterexample format the
//! state-space explorer emits and the nemesis tooling consumes.
//!
//! The explorer (`ar-explore`) enumerates interleavings of message
//! deliveries, losses, duplications, and timer firings over a small
//! ring of sans-io [`Participant`]s. When a path violates an oracle it
//! is written out as a **schedule**: the world's initial conditions
//! plus the exact step sequence that reached the violation. This
//! module owns that format and the [`World`] that executes it, so a
//! schedule replays bit-identically here — in the nemesis replay path —
//! without the explorer crate in the loop, and checked-in regression
//! schedules (`tests/corpus/`) keep reproducing across refactors.
//!
//! Determinism contract (what makes a schedule replayable):
//!
//! * message identifiers are assigned sequentially in the order the
//!   environment observes sends, with multicast fan-out enumerated in
//!   ascending host order;
//! * the action lists a participant emits are ingested in list order;
//! * timers are a per-host armed/disarmed matrix (virtual deadlines
//!   are irrelevant — the explorer treats "the timer fires now" as one
//!   of the adversary's moves whenever the timer is armed).
//!
//! The same oracles the nemesis runner uses watch every step:
//! [`EvsChecker`], [`TokenRuleMonitor`], and [`SendSplitChecker`].

use std::collections::BTreeMap;

use ar_core::checker::{EvsChecker, SendSplitChecker, TokenRuleMonitor};
use ar_core::statehash::{StateHash, StateHasher};
use ar_core::wire;
use ar_core::{
    Action, Message, Participant, ParticipantId, ProtocolConfig, RingId, ServiceType, TimerKind,
};
use ar_telemetry::json::{JsonWriter, Value};
use bytes::Bytes;

/// Timer kinds in their canonical schedule order (also the order the
/// nemesis harness uses).
pub const TIMER_KINDS: [TimerKind; 5] = [
    TimerKind::TokenLoss,
    TimerKind::TokenRetransmit,
    TimerKind::Join,
    TimerKind::ConsensusTimeout,
    TimerKind::CommitTimeout,
];

fn kind_idx(kind: TimerKind) -> usize {
    TIMER_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("known kind")
}

fn kind_name(kind: TimerKind) -> &'static str {
    match kind {
        TimerKind::TokenLoss => "token-loss",
        TimerKind::TokenRetransmit => "token-retransmit",
        TimerKind::Join => "join",
        TimerKind::ConsensusTimeout => "consensus",
        TimerKind::CommitTimeout => "commit",
    }
}

fn kind_from_name(s: &str) -> Option<TimerKind> {
    TIMER_KINDS.iter().copied().find(|&k| kind_name(k) == s)
}

fn service_name(s: ServiceType) -> &'static str {
    match s {
        ServiceType::Reliable => "reliable",
        ServiceType::Fifo => "fifo",
        ServiceType::Causal => "causal",
        ServiceType::Agreed => "agreed",
        ServiceType::Safe => "safe",
    }
}

fn service_from_name(s: &str) -> Option<ServiceType> {
    [
        ServiceType::Reliable,
        ServiceType::Fifo,
        ServiceType::Causal,
        ServiceType::Agreed,
        ServiceType::Safe,
    ]
    .into_iter()
    .find(|&v| service_name(v) == s)
}

/// One adversary move in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// Deliver in-flight message `msg` to its destination and remove it
    /// from flight.
    Deliver {
        /// The in-flight message identifier.
        msg: u64,
    },
    /// Deliver a *copy* of in-flight message `msg`, leaving the
    /// original in flight (bounded duplication; each message may be
    /// duplicated once).
    Duplicate {
        /// The in-flight message identifier.
        msg: u64,
    },
    /// Silently discard in-flight message `msg` (loss).
    Drop {
        /// The in-flight message identifier.
        msg: u64,
    },
    /// Fire an armed protocol timer at `host`.
    Timer {
        /// The host whose timer fires.
        host: u16,
        /// Which timer fires.
        kind: TimerKind,
    },
    /// A host that started outside the initial ring boots and seeks a
    /// configuration: it multicasts its join message and enters Gather
    /// (the membership "node join" transition).
    Join {
        /// The joining host (must be listed in the schedule's
        /// `joiners`).
        host: u16,
    },
    /// Silent stop: `host` ceases to process or send anything, its
    /// timers disarm, and messages addressed to it vanish. Spends one
    /// unit of the world's fault budget.
    Fail {
        /// The host that fails.
        host: u16,
    },
    /// Split the network into two components: hosts with bit `i` set in
    /// `mask` form one component, the rest the other. In-flight
    /// messages crossing the cut are discarded and later sends across
    /// it are silently dropped. Canonical form keeps host 0's bit
    /// clear. Spends one unit of the fault budget.
    Partition {
        /// Component bitmask (bit per host; bit 0 must be clear).
        mask: u8,
    },
    /// Heal the partition: all hosts are mutually reachable again.
    Merge,
}

impl Step {
    /// Short human-readable rendering (`deliver#4`, `timer@2:join`,
    /// `partition:0b110`).
    pub fn describe(&self) -> String {
        match self {
            Step::Deliver { msg } => format!("deliver#{msg}"),
            Step::Duplicate { msg } => format!("duplicate#{msg}"),
            Step::Drop { msg } => format!("drop#{msg}"),
            Step::Timer { host, kind } => format!("timer@{host}:{}", kind_name(*kind)),
            Step::Join { host } => format!("join@{host}"),
            Step::Fail { host } => format!("fail@{host}"),
            Step::Partition { mask } => format!("partition:{mask:#05b}"),
            Step::Merge => "merge".into(),
        }
    }
}

/// A workload submission in a schedule's initial conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The submitting host.
    pub host: u16,
    /// The payload (ASCII; schedules store it as a JSON string).
    pub payload: String,
    /// The requested delivery service.
    pub service: ServiceType,
}

/// What a schedule claims about its own outcome, re-asserted on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Every oracle stays green along the whole schedule.
    Clean,
    /// At least one oracle reports a violation by the end.
    Violation,
}

/// A replayable counterexample (or regression) schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of hosts (`ParticipantId` 0..hosts). Hosts not listed in
    /// `joiners` start on one established ring.
    pub hosts: u16,
    /// Hosts that start *outside* the initial ring as idle singletons;
    /// each enters the world only when its [`Step::Join`] fires.
    pub joiners: Vec<u16>,
    /// Named protocol configuration: `"accelerated"`, `"original"`, or
    /// `"damped"` (accelerated + flap damping).
    pub config: String,
    /// Payloads submitted (in order) before the ring starts.
    pub submissions: Vec<Submission>,
    /// The adversary's step sequence.
    pub steps: Vec<Step>,
    /// The outcome the schedule was recorded with.
    pub expect: Expectation,
    /// Free-form provenance note (which oracle fired, explorer depth,
    /// seed — anything a human debugging the replay wants to see).
    pub note: String,
}

/// Errors loading or executing a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The schedule file was not valid JSON.
    Json(String),
    /// The schedule JSON was missing or mistyped a field.
    Malformed(String),
    /// A step referenced a message not currently in flight.
    UnknownMessage(u64),
    /// A `Duplicate` step targeted a message whose duplication budget
    /// is spent.
    DuplicationExhausted(u64),
    /// A `Timer` step targeted a timer that is not armed.
    TimerNotArmed {
        /// The host whose timer was named.
        host: u16,
        /// The timer kind named.
        kind: &'static str,
    },
    /// A host index was outside `0..hosts`.
    HostOutOfRange(u16),
    /// The `config` name is not a known protocol configuration.
    UnknownConfig(String),
    /// A `Join` step targeted a host that is not a joiner or already
    /// joined.
    CannotJoin(u16),
    /// A step targeted a host that already failed (or tried to fail it
    /// twice).
    HostAlreadyFailed(u16),
    /// A `Fail` or `Partition` step arrived with the fault budget
    /// spent.
    FaultBudgetExhausted,
    /// A `Partition` mask was non-canonical (zero, host 0 set, or bits
    /// beyond the host count), or the world is already partitioned.
    BadPartition(u8),
    /// A `Merge` step arrived with no partition in force.
    NotPartitioned,
    /// The `joiners` list was invalid (out of range, duplicated, or no
    /// host left on the initial ring).
    BadJoiners(String),
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleError::Json(e) => write!(f, "schedule is not valid JSON: {e}"),
            ScheduleError::Malformed(e) => write!(f, "malformed schedule: {e}"),
            ScheduleError::UnknownMessage(id) => {
                write!(f, "step references message #{id} not in flight")
            }
            ScheduleError::DuplicationExhausted(id) => {
                write!(f, "message #{id} already duplicated")
            }
            ScheduleError::TimerNotArmed { host, kind } => {
                write!(f, "timer {kind} not armed at host {host}")
            }
            ScheduleError::HostOutOfRange(h) => write!(f, "host {h} out of range"),
            ScheduleError::UnknownConfig(c) => write!(f, "unknown protocol config {c:?}"),
            ScheduleError::CannotJoin(h) => {
                write!(f, "host {h} is not an unjoined joiner")
            }
            ScheduleError::HostAlreadyFailed(h) => write!(f, "host {h} already failed"),
            ScheduleError::FaultBudgetExhausted => write!(f, "fault budget exhausted"),
            ScheduleError::BadPartition(m) => {
                write!(f, "partition mask {m:#b} is not applicable here")
            }
            ScheduleError::NotPartitioned => write!(f, "no partition in force to merge"),
            ScheduleError::BadJoiners(e) => write!(f, "bad joiners list: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Serializes the schedule to its canonical JSON text.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.num_u64(2);
        w.key("kind");
        w.str("ar-explore-schedule");
        w.key("hosts");
        w.num_u64(u64::from(self.hosts));
        if !self.joiners.is_empty() {
            w.key("joiners");
            w.begin_array();
            for &j in &self.joiners {
                w.num_u64(u64::from(j));
            }
            w.end_array();
        }
        w.key("config");
        w.str(&self.config);
        w.key("note");
        w.str(&self.note);
        w.key("expect");
        w.str(match self.expect {
            Expectation::Clean => "clean",
            Expectation::Violation => "violation",
        });
        w.key("submissions");
        w.begin_array();
        for s in &self.submissions {
            w.begin_object();
            w.key("host");
            w.num_u64(u64::from(s.host));
            w.key("payload");
            w.str(&s.payload);
            w.key("service");
            w.str(service_name(s.service));
            w.end_object();
        }
        w.end_array();
        w.key("steps");
        w.begin_array();
        for step in &self.steps {
            w.begin_object();
            match step {
                Step::Deliver { msg } => {
                    w.key("op");
                    w.str("deliver");
                    w.key("msg");
                    w.num_u64(*msg);
                }
                Step::Duplicate { msg } => {
                    w.key("op");
                    w.str("duplicate");
                    w.key("msg");
                    w.num_u64(*msg);
                }
                Step::Drop { msg } => {
                    w.key("op");
                    w.str("drop");
                    w.key("msg");
                    w.num_u64(*msg);
                }
                Step::Timer { host, kind } => {
                    w.key("op");
                    w.str("timer");
                    w.key("host");
                    w.num_u64(u64::from(*host));
                    w.key("kind");
                    w.str(kind_name(*kind));
                }
                Step::Join { host } => {
                    w.key("op");
                    w.str("join");
                    w.key("host");
                    w.num_u64(u64::from(*host));
                }
                Step::Fail { host } => {
                    w.key("op");
                    w.str("fail");
                    w.key("host");
                    w.num_u64(u64::from(*host));
                }
                Step::Partition { mask } => {
                    w.key("op");
                    w.str("partition");
                    w.key("mask");
                    w.num_u64(u64::from(*mask));
                }
                Step::Merge => {
                    w.key("op");
                    w.str("merge");
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a schedule from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Json`] for invalid JSON and
    /// [`ScheduleError::Malformed`] for structurally wrong schedules.
    pub fn from_json(text: &str) -> Result<Schedule, ScheduleError> {
        let v = Value::parse(text).map_err(|e| ScheduleError::Json(format!("{e:?}")))?;
        let obj = |v: &Value, what: &str| -> Result<(), ScheduleError> {
            v.as_object()
                .map(|_| ())
                .ok_or_else(|| ScheduleError::Malformed(format!("{what} must be an object")))
        };
        obj(&v, "schedule")?;
        let field = |k: &str| -> Result<Value, ScheduleError> {
            v.get(k)
                .cloned()
                .ok_or_else(|| ScheduleError::Malformed(format!("missing field {k:?}")))
        };
        let num = |k: &str| -> Result<u64, ScheduleError> {
            field(k)?
                .as_f64()
                .map(|f| f as u64)
                .ok_or_else(|| ScheduleError::Malformed(format!("field {k:?} must be a number")))
        };
        let text_field = |k: &str| -> Result<String, ScheduleError> {
            field(k)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| ScheduleError::Malformed(format!("field {k:?} must be a string")))
        };
        if text_field("kind")? != "ar-explore-schedule" {
            return Err(ScheduleError::Malformed(
                "kind must be \"ar-explore-schedule\"".into(),
            ));
        }
        let hosts = num("hosts")? as u16;
        let expect = match text_field("expect")?.as_str() {
            "clean" => Expectation::Clean,
            "violation" => Expectation::Violation,
            other => {
                return Err(ScheduleError::Malformed(format!(
                    "expect must be clean|violation, got {other:?}"
                )))
            }
        };
        let mut submissions = Vec::new();
        for (i, s) in field("submissions")?
            .as_array()
            .ok_or_else(|| ScheduleError::Malformed("submissions must be an array".into()))?
            .iter()
            .enumerate()
        {
            let get_in = |s: &Value, k: &str| -> Result<Value, ScheduleError> {
                s.get(k).cloned().ok_or_else(|| {
                    ScheduleError::Malformed(format!("submission {i} missing {k:?}"))
                })
            };
            let service_raw = get_in(s, "service")?;
            let service_name_str = service_raw.as_str().ok_or_else(|| {
                ScheduleError::Malformed(format!("submission {i} service must be a string"))
            })?;
            submissions.push(Submission {
                host: get_in(s, "host")?.as_f64().ok_or_else(|| {
                    ScheduleError::Malformed(format!("submission {i} host must be a number"))
                })? as u16,
                payload: get_in(s, "payload")?
                    .as_str()
                    .ok_or_else(|| {
                        ScheduleError::Malformed(format!("submission {i} payload must be a string"))
                    })?
                    .to_owned(),
                service: service_from_name(service_name_str).ok_or_else(|| {
                    ScheduleError::Malformed(format!(
                        "submission {i}: unknown service {service_name_str:?}"
                    ))
                })?,
            });
        }
        let mut steps = Vec::new();
        for (i, s) in field("steps")?
            .as_array()
            .ok_or_else(|| ScheduleError::Malformed("steps must be an array".into()))?
            .iter()
            .enumerate()
        {
            let op = s
                .get("op")
                .and_then(Value::as_str)
                .ok_or_else(|| ScheduleError::Malformed(format!("step {i} missing op")))?;
            let msg_of = |s: &Value| -> Result<u64, ScheduleError> {
                s.get("msg")
                    .and_then(Value::as_f64)
                    .map(|f| f as u64)
                    .ok_or_else(|| ScheduleError::Malformed(format!("step {i} missing msg")))
            };
            steps.push(match op {
                "deliver" => Step::Deliver { msg: msg_of(s)? },
                "duplicate" => Step::Duplicate { msg: msg_of(s)? },
                "drop" => Step::Drop { msg: msg_of(s)? },
                "timer" => {
                    let host =
                        s.get("host").and_then(Value::as_f64).ok_or_else(|| {
                            ScheduleError::Malformed(format!("step {i} missing host"))
                        })? as u16;
                    let kind_str = s.get("kind").and_then(Value::as_str).ok_or_else(|| {
                        ScheduleError::Malformed(format!("step {i} missing kind"))
                    })?;
                    let kind = kind_from_name(kind_str).ok_or_else(|| {
                        ScheduleError::Malformed(format!(
                            "step {i}: unknown timer kind {kind_str:?}"
                        ))
                    })?;
                    Step::Timer { host, kind }
                }
                "join" | "fail" => {
                    let host =
                        s.get("host").and_then(Value::as_f64).ok_or_else(|| {
                            ScheduleError::Malformed(format!("step {i} missing host"))
                        })? as u16;
                    if op == "join" {
                        Step::Join { host }
                    } else {
                        Step::Fail { host }
                    }
                }
                "partition" => {
                    let mask =
                        s.get("mask").and_then(Value::as_f64).ok_or_else(|| {
                            ScheduleError::Malformed(format!("step {i} missing mask"))
                        })? as u8;
                    Step::Partition { mask }
                }
                "merge" => Step::Merge,
                other => {
                    return Err(ScheduleError::Malformed(format!(
                        "step {i}: unknown op {other:?}"
                    )))
                }
            });
        }
        // `joiners` is optional: schema-1 schedules (all hosts on one
        // ring) omit it.
        let mut joiners = Vec::new();
        if let Some(list) = v.get("joiners") {
            for (i, j) in list
                .as_array()
                .ok_or_else(|| ScheduleError::Malformed("joiners must be an array".into()))?
                .iter()
                .enumerate()
            {
                joiners.push(j.as_f64().ok_or_else(|| {
                    ScheduleError::Malformed(format!("joiner {i} must be a number"))
                })? as u16);
            }
        }
        Ok(Schedule {
            hosts,
            joiners,
            config: text_field("config")?,
            submissions,
            steps,
            expect,
            note: text_field("note").unwrap_or_default(),
        })
    }
}

fn config_by_name(name: &str) -> Result<ProtocolConfig, ScheduleError> {
    match name {
        "accelerated" => Ok(ProtocolConfig::accelerated()),
        "original" => Ok(ProtocolConfig::original()),
        // Accelerated plus membership flap damping at its default
        // policy — the configuration the quarantine-war regression
        // schedules replay under.
        "damped" => {
            Ok(ProtocolConfig::accelerated()
                .with_flap_damping(ar_core::FlapDampingConfig::enabled()))
        }
        other => Err(ScheduleError::UnknownConfig(other.to_owned())),
    }
}

/// A message travelling between hosts, owned by the [`World`].
#[derive(Debug, Clone)]
pub struct Inflight {
    /// Stable identifier, assigned in send order.
    pub id: u64,
    /// Sending host (used to cut messages crossing a partition).
    pub from: u16,
    /// Destination host.
    pub to: u16,
    /// The message itself.
    pub msg: Message,
    /// Remaining duplication budget (1 for fresh messages; a
    /// duplicated copy spends it).
    pub dup_left: u8,
}

/// A deterministic, cloneable mini-universe of `n` participants with
/// explicit in-flight messages and an armed-timer matrix, watched by
/// the nemesis oracles.
///
/// Unlike [`crate::nemesis::NemesisRunner`], the world has no clock and
/// no randomness: *every* nondeterministic choice (which message
/// arrives next, what gets lost or duplicated, when timers fire) is an
/// explicit [`Step`] chosen by the caller — the explorer's DFS or a
/// [`Schedule`] being replayed. Cloning the world forks the universe,
/// which is what makes depth-first exploration cheap.
#[derive(Debug, Clone)]
pub struct World {
    n: u16,
    parts: Vec<Participant>,
    inflight: Vec<Inflight>,
    next_msg_id: u64,
    /// Per-host armed flags, indexed by [`TIMER_KINDS`] position.
    armed: Vec<[bool; 5]>,
    /// True for hosts that start outside the initial ring.
    joiner: Vec<bool>,
    /// True once a joiner's [`Step::Join`] has fired.
    joined: Vec<bool>,
    /// True for silently stopped hosts.
    failed: Vec<bool>,
    /// Partition component per host (all equal = no partition).
    component: Vec<u8>,
    /// Remaining `Fail`/`Partition` steps the adversary may take. Part
    /// of the state fingerprint: two otherwise-identical worlds with
    /// different remaining budgets have different futures.
    fault_budget: u8,
    checker: EvsChecker,
    monitor: TokenRuleMonitor,
    split: SendSplitChecker,
    deliveries: Vec<u64>,
    steps_applied: u64,
    dropped: u64,
    duplicated: u64,
}

impl World {
    /// Builds a world of `hosts` participants on one established ring
    /// under the named configuration, applies the submissions, and
    /// starts every participant (the representative's start injects the
    /// first token).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] for unknown configs or out-of-range
    /// submission hosts.
    pub fn new(
        hosts: u16,
        config: &str,
        submissions: &[Submission],
    ) -> Result<World, ScheduleError> {
        World::new_with_joiners(hosts, &[], config, submissions)
    }

    /// Like [`World::new`], but hosts listed in `joiners` start outside
    /// the initial ring as idle singletons (ring seq 0): they arm no
    /// timers, hold no token, and enter the world only when their
    /// [`Step::Join`] fires. The remaining hosts form the initial ring.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BadJoiners`] when a joiner is out of
    /// range, duplicated, or no host is left on the initial ring, plus
    /// everything [`World::new`] reports.
    pub fn new_with_joiners(
        hosts: u16,
        joiners: &[u16],
        config: &str,
        submissions: &[Submission],
    ) -> Result<World, ScheduleError> {
        let cfg = config_by_name(config)?;
        let mut joiner = vec![false; hosts as usize];
        for &j in joiners {
            if j >= hosts {
                return Err(ScheduleError::BadJoiners(format!("host {j} out of range")));
            }
            if joiner[j as usize] {
                return Err(ScheduleError::BadJoiners(format!("host {j} listed twice")));
            }
            joiner[j as usize] = true;
        }
        let members: Vec<ParticipantId> = (0..hosts)
            .filter(|&h| !joiner[h as usize])
            .map(ParticipantId::new)
            .collect();
        if members.is_empty() {
            return Err(ScheduleError::BadJoiners(
                "every host is a joiner; the initial ring would be empty".into(),
            ));
        }
        let ring_id = RingId::new(members[0], 1);
        let parts: Vec<Participant> = (0..hosts)
            .map(|h| {
                let p = ParticipantId::new(h);
                if joiner[h as usize] {
                    Participant::new_singleton(p, cfg).expect("valid singleton")
                } else {
                    Participant::new(p, cfg, ring_id, members.clone()).expect("valid ring")
                }
            })
            .collect();
        let mut world = World {
            n: hosts,
            parts,
            inflight: Vec::new(),
            next_msg_id: 0,
            armed: vec![[false; 5]; hosts as usize],
            joiner,
            joined: vec![false; hosts as usize],
            failed: vec![false; hosts as usize],
            component: vec![0; hosts as usize],
            fault_budget: u8::MAX,
            checker: EvsChecker::new(hosts as usize),
            monitor: TokenRuleMonitor::new(),
            split: SendSplitChecker::new(Some(cfg.accelerated_window)),
            deliveries: vec![0; hosts as usize],
            steps_applied: 0,
            dropped: 0,
            duplicated: 0,
        };
        // Seed the checker with each host's bootstrap view so same-view
        // and transitional-subset checks are live from the first
        // membership episode (bootstrapped rings never deliver their
        // initial configuration).
        for i in 0..hosts as usize {
            let ring = world.parts[i].ring();
            let (id, members) = (ring.id(), ring.members().to_vec());
            world.checker.on_initial_config(i, id, &members);
        }
        for s in submissions {
            if s.host >= hosts {
                return Err(ScheduleError::HostOutOfRange(s.host));
            }
            let i = s.host as usize;
            world.checker.on_submit(i, s.payload.as_bytes());
            world.parts[i]
                .submit(Bytes::from(s.payload.clone().into_bytes()), s.service)
                .expect("exploration workloads fit the send queue");
        }
        for i in 0..hosts as usize {
            if world.joiner[i] {
                continue;
            }
            let actions = world.parts[i].start();
            world.ingest(i, actions);
        }
        Ok(world)
    }

    /// Caps the number of `Fail`/`Partition` steps the adversary may
    /// still take (replay defaults to effectively unlimited). The
    /// explorer sets this from its configuration; the budget is part of
    /// [`World::state_hash`].
    pub fn set_fault_budget(&mut self, budget: u8) {
        self.fault_budget = budget;
    }

    /// True when `host` has silently stopped.
    pub fn is_failed(&self, host: u16) -> bool {
        self.failed[host as usize]
    }

    /// True when `host` started outside the initial ring and has not
    /// joined yet.
    pub fn is_unjoined(&self, host: u16) -> bool {
        self.joiner[host as usize] && !self.joined[host as usize]
    }

    /// The partition component `host` currently sits in (all equal
    /// when no partition is in force).
    pub fn component_of(&self, host: u16) -> u8 {
        self.component[host as usize]
    }

    /// True while a partition is in force.
    pub fn is_partitioned(&self) -> bool {
        self.component.iter().any(|&c| c != self.component[0])
    }

    /// Number of hosts.
    pub fn hosts(&self) -> u16 {
        self.n
    }

    /// The messages currently in flight.
    pub fn inflight(&self) -> &[Inflight] {
        &self.inflight
    }

    /// Delivery counts per host.
    pub fn deliveries(&self) -> &[u64] {
        &self.deliveries
    }

    /// Steps applied so far.
    pub fn steps_applied(&self) -> u64 {
        self.steps_applied
    }

    /// Host `i`'s participant, for oracle probes.
    pub fn participant(&self, i: u16) -> &Participant {
        &self.parts[i as usize]
    }

    /// Every step the adversary may take from this state, in canonical
    /// order: delivers (ascending message id), duplicates, drops, timer
    /// firings (host-major, [`TIMER_KINDS`] order), then membership
    /// transitions (joins, fails, partitions, merge).
    ///
    /// Partitions are enumerated as every canonical two-component split
    /// (host 0's bit clear) and only while no partition is in force;
    /// fails and partitions require remaining fault budget.
    pub fn enabled(&self) -> Vec<Step> {
        let mut steps = Vec::with_capacity(self.inflight.len() * 3 + 8);
        for m in &self.inflight {
            steps.push(Step::Deliver { msg: m.id });
        }
        for m in &self.inflight {
            if m.dup_left > 0 {
                steps.push(Step::Duplicate { msg: m.id });
            }
        }
        for m in &self.inflight {
            steps.push(Step::Drop { msg: m.id });
        }
        for (host, armed) in self.armed.iter().enumerate() {
            for (k, &kind) in TIMER_KINDS.iter().enumerate() {
                if armed[k] {
                    steps.push(Step::Timer {
                        host: host as u16,
                        kind,
                    });
                }
            }
        }
        for h in 0..self.n {
            if self.is_unjoined(h) && !self.failed[h as usize] {
                steps.push(Step::Join { host: h });
            }
        }
        if self.fault_budget > 0 {
            for h in 0..self.n {
                if !self.failed[h as usize] {
                    steps.push(Step::Fail { host: h });
                }
            }
            if !self.is_partitioned() {
                for mask in 1u16..(1u16 << self.n.min(7)) {
                    if mask & 1 == 0 {
                        steps.push(Step::Partition { mask: mask as u8 });
                    }
                }
            }
        }
        if self.is_partitioned() {
            steps.push(Step::Merge);
        }
        steps
    }

    /// The destination host a step acts on (`None` for `Drop`, which
    /// touches no participant, and for the global `Partition`/`Merge`
    /// transitions). Used by the explorer's commutation test.
    pub fn step_target(&self, step: &Step) -> Option<u16> {
        match step {
            Step::Deliver { msg } | Step::Duplicate { msg } => {
                self.inflight.iter().find(|m| m.id == *msg).map(|m| m.to)
            }
            Step::Drop { .. } => None,
            Step::Timer { host, .. } => Some(*host),
            Step::Join { host } | Step::Fail { host } => Some(*host),
            Step::Partition { .. } | Step::Merge => None,
        }
    }

    /// Applies one step.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the step is not enabled in this
    /// state (unknown message, spent duplication budget, unarmed
    /// timer).
    pub fn apply_step(&mut self, step: &Step) -> Result<(), ScheduleError> {
        match step {
            Step::Deliver { msg } => {
                let idx = self.find_msg(*msg)?;
                let m = self.inflight.remove(idx);
                let to = m.to as usize;
                let actions = self.parts[to].handle_message(m.msg);
                self.ingest(to, actions);
            }
            Step::Duplicate { msg } => {
                let idx = self.find_msg(*msg)?;
                if self.inflight[idx].dup_left == 0 {
                    return Err(ScheduleError::DuplicationExhausted(*msg));
                }
                self.inflight[idx].dup_left -= 1;
                let copy = self.inflight[idx].msg.clone();
                let to = self.inflight[idx].to as usize;
                self.duplicated += 1;
                let actions = self.parts[to].handle_message(copy);
                self.ingest(to, actions);
            }
            Step::Drop { msg } => {
                let idx = self.find_msg(*msg)?;
                self.inflight.remove(idx);
                self.dropped += 1;
            }
            Step::Timer { host, kind } => {
                if *host >= self.n {
                    return Err(ScheduleError::HostOutOfRange(*host));
                }
                let h = *host as usize;
                let k = kind_idx(*kind);
                if !self.armed[h][k] {
                    return Err(ScheduleError::TimerNotArmed {
                        host: *host,
                        kind: kind_name(*kind),
                    });
                }
                self.armed[h][k] = false;
                let actions = self.parts[h].handle_timer(*kind);
                self.ingest(h, actions);
            }
            Step::Join { host } => {
                if *host >= self.n {
                    return Err(ScheduleError::HostOutOfRange(*host));
                }
                let h = *host as usize;
                if !self.joiner[h] || self.joined[h] || self.failed[h] {
                    return Err(ScheduleError::CannotJoin(*host));
                }
                self.joined[h] = true;
                let actions = self.parts[h].initiate_gather();
                self.ingest(h, actions);
            }
            Step::Fail { host } => {
                if *host >= self.n {
                    return Err(ScheduleError::HostOutOfRange(*host));
                }
                let h = *host as usize;
                if self.failed[h] {
                    return Err(ScheduleError::HostAlreadyFailed(*host));
                }
                if self.fault_budget == 0 {
                    return Err(ScheduleError::FaultBudgetExhausted);
                }
                self.fault_budget -= 1;
                self.failed[h] = true;
                // Silent stop: timers disarm, messages addressed to the
                // host will never be processed. Messages it already
                // sent stay in flight — packets survive their sender.
                self.armed[h] = [false; 5];
                self.inflight.retain(|m| m.to != *host);
            }
            Step::Partition { mask } => {
                if self.fault_budget == 0 {
                    return Err(ScheduleError::FaultBudgetExhausted);
                }
                let full = if self.n >= 8 {
                    u8::MAX
                } else {
                    (1u8 << self.n) - 1
                };
                if *mask == 0 || mask & 1 != 0 || mask & !full != 0 || self.is_partitioned() {
                    return Err(ScheduleError::BadPartition(*mask));
                }
                self.fault_budget -= 1;
                for h in 0..self.n as usize {
                    self.component[h] = (mask >> h) & 1;
                }
                let component = self.component.clone();
                self.inflight
                    .retain(|m| component[m.from as usize] == component[m.to as usize]);
            }
            Step::Merge => {
                if !self.is_partitioned() {
                    return Err(ScheduleError::NotPartitioned);
                }
                self.component.iter_mut().for_each(|c| *c = 0);
            }
        }
        self.steps_applied += 1;
        Ok(())
    }

    fn find_msg(&self, id: u64) -> Result<usize, ScheduleError> {
        self.inflight
            .iter()
            .position(|m| m.id == id)
            .ok_or(ScheduleError::UnknownMessage(id))
    }

    /// Whether a message sent by `from` can reach `to` right now: the
    /// destination must be alive, in the sender's partition component,
    /// and (for joiners) already booted into the world.
    fn reachable(&self, from: usize, to: u16) -> bool {
        let t = to as usize;
        !self.failed[t]
            && self.component[from] == self.component[t]
            && (!self.joiner[t] || self.joined[t])
    }

    fn push_msg(&mut self, from: usize, to: u16, msg: Message) {
        if !self.reachable(from, to) {
            return;
        }
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.inflight.push(Inflight {
            id,
            from: from as u16,
            to,
            msg,
            dup_left: 1,
        });
    }

    fn ingest(&mut self, from: usize, actions: Vec<Action>) {
        self.split
            .on_actions(ParticipantId::new(from as u16), &actions);
        for action in actions {
            match action {
                Action::SendToken { to, token } => {
                    self.monitor.on_token(&token);
                    self.push_msg(from, to.as_u16(), Message::Token(token));
                }
                Action::SendCommit { to, token } => {
                    self.push_msg(from, to.as_u16(), Message::Commit(token));
                }
                Action::Multicast(m) => {
                    for to in 0..self.n {
                        if to as usize != from {
                            self.push_msg(from, to, Message::Data(m.clone()));
                        }
                    }
                }
                Action::MulticastJoin(j) => {
                    for to in 0..self.n {
                        if to as usize != from {
                            self.push_msg(from, to, Message::Join(j.clone()));
                        }
                    }
                }
                Action::Deliver(d) => {
                    self.checker.on_delivery(from, &d);
                    self.deliveries[from] += 1;
                }
                Action::DeliverConfigChange(c) => {
                    self.checker.on_config(from, &c);
                }
                Action::SetTimer(kind) => {
                    self.armed[from][kind_idx(kind)] = true;
                }
                Action::CancelTimer(kind) => {
                    self.armed[from][kind_idx(kind)] = false;
                }
            }
        }
    }

    /// Fingerprint of the global state: every participant's protocol
    /// state, the armed-timer matrix, the membership environment
    /// (joined/failed flags, partition components, remaining fault
    /// budget — all of which shape the enabled futures), and the
    /// in-flight pool hashed as an order-insensitive multiset of
    /// `(sender, destination, bytes, duplication budget)` — message
    /// identifiers are deliberately excluded so that commuting
    /// interleavings which reach the same configuration collide (the
    /// visited-set prune in the explorer depends on this).
    pub fn state_hash(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_len(self.parts.len());
        for p in &self.parts {
            p.state_hash_into(&mut h);
        }
        for armed in &self.armed {
            for &a in armed {
                h.write_bool(a);
            }
        }
        for i in 0..self.n as usize {
            h.write_bool(self.joined[i]);
            h.write_bool(self.failed[i]);
            h.write_u8(self.component[i]);
        }
        h.write_u8(self.fault_budget);
        let mut msg_digests: Vec<u64> = self
            .inflight
            .iter()
            .map(|m| {
                let mut mh = StateHasher::new();
                mh.write_u16(m.from);
                mh.write_u16(m.to);
                mh.write_u8(m.dup_left);
                mh.write(&wire::encode(&m.msg));
                mh.finish()
            })
            .collect();
        msg_digests.sort_unstable();
        h.write_len(msg_digests.len());
        for d in msg_digests {
            h.write_u64(d);
        }
        h.finish()
    }

    /// Runs every oracle against the state reached so far and returns
    /// all violations (empty when green). Non-destructive: the oracles
    /// keep accumulating afterwards.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut checker = self.checker.clone();
        match checker.check() {
            Ok(()) => {}
            Err(v) => out.extend(v),
        }
        let mut monitor = self.monitor.clone();
        match monitor.check() {
            Ok(()) => {}
            Err(v) => out.extend(v),
        }
        let mut split = self.split.clone();
        match split.check() {
            Ok(()) => {}
            Err(v) => out.extend(v),
        }
        out
    }

    /// Loss/duplication counters `(dropped, duplicated)`.
    pub fn chaos_counters(&self) -> (u64, u64) {
        (self.dropped, self.duplicated)
    }
}

/// What replaying a schedule produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Oracle violations at the end of the schedule.
    pub violations: Vec<String>,
    /// Steps applied (always the schedule's full length on success).
    pub steps_applied: u64,
    /// Delivery counts per host.
    pub deliveries: Vec<u64>,
    /// Final state fingerprint — equal across replays of the same
    /// schedule (the determinism the corpus tests pin down).
    pub final_hash: u64,
}

impl ReplayOutcome {
    /// Whether the outcome matches the schedule's recorded
    /// [`Expectation`].
    pub fn matches(&self, expect: Expectation) -> bool {
        match expect {
            Expectation::Clean => self.violations.is_empty(),
            Expectation::Violation => !self.violations.is_empty(),
        }
    }
}

/// Replays `schedule` from scratch and reports the outcome.
///
/// # Errors
///
/// Returns [`ScheduleError`] if the schedule's config is unknown or a
/// step is not applicable in the state it is reached in (which means
/// the schedule does not match the code under test anymore).
pub fn replay_schedule(schedule: &Schedule) -> Result<ReplayOutcome, ScheduleError> {
    let mut world = World::new_with_joiners(
        schedule.hosts,
        &schedule.joiners,
        &schedule.config,
        &schedule.submissions,
    )?;
    for step in &schedule.steps {
        world.apply_step(step)?;
    }
    Ok(ReplayOutcome {
        violations: world.violations(),
        steps_applied: world.steps_applied(),
        deliveries: world.deliveries().to_vec(),
        final_hash: world.state_hash(),
    })
}

/// Renders a ready-to-paste `#[test]` regression stub for a schedule
/// stored at `corpus_path` (relative to the repository root).
pub fn regression_stub(test_name: &str, corpus_path: &str, expect: Expectation) -> String {
    let expect_str = match expect {
        Expectation::Clean => "Expectation::Clean",
        Expectation::Violation => "Expectation::Violation",
    };
    let mut map = BTreeMap::new();
    map.insert("{name}", test_name.to_owned());
    map.insert("{path}", corpus_path.to_owned());
    map.insert("{expect}", expect_str.to_owned());
    let mut out = String::from(
        "#[test]\n\
         fn {name}() {\n    \
             use accelerated_ring::net::replay::{replay_schedule, Expectation, Schedule};\n    \
             let text = std::fs::read_to_string(\"{path}\").expect(\"corpus file\");\n    \
             let schedule = Schedule::from_json(&text).expect(\"valid schedule\");\n    \
             let outcome = replay_schedule(&schedule).expect(\"replayable\");\n    \
             assert!(outcome.matches({expect}), \"outcome diverged: {:?}\", outcome.violations);\n\
         }\n",
    );
    for (k, v) in map {
        out = out.replace(k, &v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schedule(steps: Vec<Step>) -> Schedule {
        Schedule {
            hosts: 3,
            joiners: vec![],
            config: "accelerated".into(),
            submissions: vec![
                Submission {
                    host: 0,
                    payload: "h0-m0".into(),
                    service: ServiceType::Agreed,
                },
                Submission {
                    host: 1,
                    payload: "h1-m0".into(),
                    service: ServiceType::Safe,
                },
            ],
            steps,
            expect: Expectation::Clean,
            note: "unit-test schedule".into(),
        }
    }

    #[test]
    fn schedule_json_roundtrip() {
        let s = demo_schedule(vec![
            Step::Deliver { msg: 0 },
            Step::Duplicate { msg: 2 },
            Step::Drop { msg: 3 },
            Step::Timer {
                host: 1,
                kind: TimerKind::TokenLoss,
            },
        ]);
        let text = s.to_json();
        let back = Schedule::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        assert!(matches!(
            Schedule::from_json("not json"),
            Err(ScheduleError::Json(_))
        ));
        assert!(matches!(
            Schedule::from_json("{}"),
            Err(ScheduleError::Malformed(_))
        ));
        let wrong_kind = r#"{"kind":"something-else","hosts":2}"#;
        assert!(matches!(
            Schedule::from_json(wrong_kind),
            Err(ScheduleError::Malformed(_))
        ));
    }

    #[test]
    fn world_starts_with_token_in_flight() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        // The representative processed the initial token and forwarded
        // it: exactly one message should be in flight, a token to host
        // 1.
        assert_eq!(w.inflight().len(), 1);
        assert_eq!(w.inflight()[0].to, 1);
        assert!(matches!(w.inflight()[0].msg, Message::Token(_)));
        assert!(w.violations().is_empty());
    }

    #[test]
    fn enabled_lists_every_adversary_move() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        let steps = w.enabled();
        // One in-flight token => deliver, duplicate, drop; plus every
        // armed timer.
        assert!(steps.contains(&Step::Deliver { msg: 0 }));
        assert!(steps.contains(&Step::Duplicate { msg: 0 }));
        assert!(steps.contains(&Step::Drop { msg: 0 }));
        assert!(
            steps.iter().any(|s| matches!(s, Step::Timer { .. })),
            "{steps:?}"
        );
    }

    #[test]
    fn token_circulation_by_explicit_delivery_stays_clean() {
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        // Deliver whatever is in flight, oldest first, for a while: the
        // token should circulate and no oracle should fire.
        for _ in 0..30 {
            let Some(first) = w.inflight().first().map(|m| m.id) else {
                break;
            };
            w.apply_step(&Step::Deliver { msg: first }).unwrap();
        }
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        assert!(w.steps_applied() > 0);
    }

    #[test]
    fn submissions_are_ordered_and_delivered() {
        let sched = demo_schedule(vec![]);
        let mut w = World::new(sched.hosts, &sched.config, &sched.submissions).unwrap();
        for _ in 0..200 {
            let Some(first) = w.inflight().first().map(|m| m.id) else {
                break;
            };
            w.apply_step(&Step::Deliver { msg: first }).unwrap();
        }
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        // Every host eventually delivers both payloads.
        assert!(
            w.deliveries().iter().all(|&d| d >= 2),
            "{:?}",
            w.deliveries()
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let sched = demo_schedule(vec![Step::Duplicate { msg: 0 }, Step::Deliver { msg: 0 }]);
        let a = replay_schedule(&sched).unwrap();
        let b = replay_schedule(&sched).unwrap();
        assert_eq!(a.final_hash, b.final_hash);
        assert_eq!(a.deliveries, b.deliveries);
        assert!(a.matches(Expectation::Clean), "{:?}", a.violations);
    }

    #[test]
    fn inapplicable_steps_are_reported() {
        let mut w = World::new(2, "accelerated", &[]).unwrap();
        assert_eq!(
            w.apply_step(&Step::Deliver { msg: 999 }),
            Err(ScheduleError::UnknownMessage(999))
        );
        let first = w.inflight()[0].id;
        w.apply_step(&Step::Duplicate { msg: first }).unwrap();
        // Budget spent: a second duplication of the same message fails.
        let err = w.apply_step(&Step::Duplicate { msg: first });
        assert_eq!(err, Err(ScheduleError::DuplicationExhausted(first)));
        assert_eq!(
            w.apply_step(&Step::Timer {
                host: 5,
                kind: TimerKind::Join
            }),
            Err(ScheduleError::HostOutOfRange(5))
        );
        assert!(matches!(
            World::new(2, "warp-speed", &[]),
            Err(ScheduleError::UnknownConfig(_))
        ));
    }

    #[test]
    fn state_hash_ignores_message_identities_but_not_content() {
        // Two worlds that reach the same configuration through
        // different commuting orders must collide.
        let mk = || World::new(3, "accelerated", &[]).unwrap();
        let mut a = mk();
        let mut b = mk();
        // In a fresh world only one message is in flight; deliver it in
        // both worlds, then compare: trivially equal.
        let id = a.inflight()[0].id;
        a.apply_step(&Step::Deliver { msg: id }).unwrap();
        b.apply_step(&Step::Deliver { msg: id }).unwrap();
        assert_eq!(a.state_hash(), b.state_hash());
        // Dropping vs delivering diverges the hash.
        let mut c = mk();
        c.apply_step(&Step::Drop { msg: id }).unwrap();
        assert_ne!(a.state_hash(), c.state_hash());
    }

    #[test]
    fn commuting_deliveries_reach_the_same_hash() {
        // Drive the world until two messages to *different* hosts are
        // simultaneously in flight, then apply them in both orders.
        let mut w = World::new(3, "accelerated", &demo_schedule(vec![]).submissions).unwrap();
        let pair = loop {
            let inf = w.inflight();
            let mut seen: Vec<(u64, u16)> = inf.iter().map(|m| (m.id, m.to)).collect();
            seen.sort_unstable();
            if let Some(p) = seen
                .iter()
                .flat_map(|&(i1, t1)| {
                    seen.iter()
                        .filter(move |&&(i2, t2)| i2 > i1 && t2 != t1)
                        .map(move |&(i2, _)| (i1, i2))
                })
                .next()
            {
                break Some(p);
            }
            let Some(first) = w.inflight().first().map(|m| m.id) else {
                break None;
            };
            w.apply_step(&Step::Deliver { msg: first }).unwrap();
        };
        let Some((m1, m2)) = pair else {
            panic!("never saw two concurrent messages to distinct hosts");
        };
        let mut ab = w.clone();
        ab.apply_step(&Step::Deliver { msg: m1 }).unwrap();
        ab.apply_step(&Step::Deliver { msg: m2 }).unwrap();
        let mut ba = w;
        ba.apply_step(&Step::Deliver { msg: m2 }).unwrap();
        ba.apply_step(&Step::Deliver { msg: m1 }).unwrap();
        assert_eq!(
            ab.state_hash(),
            ba.state_hash(),
            "deliveries to distinct hosts must commute"
        );
    }

    #[test]
    fn membership_ops_roundtrip_with_joiners() {
        let mut s = demo_schedule(vec![
            Step::Join { host: 2 },
            Step::Fail { host: 1 },
            Step::Partition { mask: 0b100 },
            Step::Merge,
        ]);
        s.joiners = vec![2];
        let text = s.to_json();
        assert!(text.contains("\"schema\":2"), "{text}");
        let back = Schedule::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn schema_one_schedules_without_joiners_still_parse() {
        // A pre-membership schedule has no `joiners` field at all.
        let text = r#"{"schema":1,"kind":"ar-explore-schedule","hosts":2,
            "config":"accelerated","note":"","expect":"clean",
            "submissions":[],"steps":[{"op":"deliver","msg":0}]}"#;
        let s = Schedule::from_json(text).unwrap();
        assert!(s.joiners.is_empty());
        assert_eq!(s.steps, vec![Step::Deliver { msg: 0 }]);
    }

    #[test]
    fn joiners_start_idle_and_join_on_demand() {
        let mut w = World::new_with_joiners(3, &[2], "accelerated", &[]).unwrap();
        assert!(w.is_unjoined(2));
        // The initial ring is hosts {0, 1}; nothing targets host 2 and
        // host 2 has no armed timers.
        assert!(w.inflight().iter().all(|m| m.to != 2));
        assert!(!w
            .enabled()
            .iter()
            .any(|s| matches!(s, Step::Timer { host: 2, .. })));
        assert!(w.enabled().contains(&Step::Join { host: 2 }));
        w.apply_step(&Step::Join { host: 2 }).unwrap();
        assert!(!w.is_unjoined(2));
        // The join multicast is now in flight to both ring members.
        let join_targets: Vec<u16> = w
            .inflight()
            .iter()
            .filter(|m| matches!(m.msg, Message::Join(_)))
            .map(|m| m.to)
            .collect();
        assert_eq!(join_targets, vec![0, 1]);
        // A second join of the same host is rejected.
        assert_eq!(
            w.apply_step(&Step::Join { host: 2 }),
            Err(ScheduleError::CannotJoin(2))
        );
    }

    #[test]
    fn bad_joiner_lists_are_rejected() {
        assert!(matches!(
            World::new_with_joiners(3, &[7], "accelerated", &[]),
            Err(ScheduleError::BadJoiners(_))
        ));
        assert!(matches!(
            World::new_with_joiners(3, &[2, 2], "accelerated", &[]),
            Err(ScheduleError::BadJoiners(_))
        ));
        assert!(matches!(
            World::new_with_joiners(2, &[0, 1], "accelerated", &[]),
            Err(ScheduleError::BadJoiners(_))
        ));
    }

    #[test]
    fn failed_host_stops_receiving_and_disarms() {
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        w.set_fault_budget(1);
        w.apply_step(&Step::Fail { host: 1 }).unwrap();
        assert!(w.is_failed(1));
        assert!(w.inflight().iter().all(|m| m.to != 1));
        assert!(!w
            .enabled()
            .iter()
            .any(|s| matches!(s, Step::Timer { host: 1, .. })));
        // Budget spent: no further fail or partition is enabled.
        assert!(!w
            .enabled()
            .iter()
            .any(|s| matches!(s, Step::Fail { .. } | Step::Partition { .. })));
        assert_eq!(
            w.apply_step(&Step::Fail { host: 0 }),
            Err(ScheduleError::FaultBudgetExhausted)
        );
        assert_eq!(
            w.apply_step(&Step::Fail { host: 1 }),
            Err(ScheduleError::HostAlreadyFailed(1))
        );
    }

    #[test]
    fn partition_cuts_flight_and_blocks_cross_sends() {
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        // Isolate host 2 from {0, 1}.
        w.apply_step(&Step::Partition { mask: 0b100 }).unwrap();
        assert!(w.is_partitioned());
        assert_eq!(w.component_of(0), w.component_of(1));
        assert_ne!(w.component_of(0), w.component_of(2));
        // Every surviving in-flight message stays within one component,
        // and so does everything sent from here on.
        for _ in 0..40 {
            let Some(first) = w.inflight().first().map(|m| m.id) else {
                break;
            };
            w.apply_step(&Step::Deliver { msg: first }).unwrap();
            assert!(w
                .inflight()
                .iter()
                .all(|m| w.component_of(m.from) == w.component_of(m.to)));
        }
        // Only one partition at a time; merge restores reachability.
        assert_eq!(
            w.apply_step(&Step::Partition { mask: 0b010 }),
            Err(ScheduleError::BadPartition(0b010))
        );
        w.apply_step(&Step::Merge).unwrap();
        assert!(!w.is_partitioned());
        assert_eq!(
            w.apply_step(&Step::Merge),
            Err(ScheduleError::NotPartitioned)
        );
    }

    #[test]
    fn non_canonical_partition_masks_are_rejected() {
        let masks = [0b000, 0b001, 0b011, 0b1000];
        for mask in masks {
            let mut w = World::new(3, "accelerated", &[]).unwrap();
            assert_eq!(
                w.apply_step(&Step::Partition { mask }),
                Err(ScheduleError::BadPartition(mask)),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn enabled_lists_membership_moves_under_budget() {
        let mut w = World::new_with_joiners(3, &[2], "accelerated", &[]).unwrap();
        w.set_fault_budget(1);
        let steps = w.enabled();
        assert!(steps.contains(&Step::Join { host: 2 }));
        assert!(steps.contains(&Step::Fail { host: 0 }));
        assert!(steps.contains(&Step::Partition { mask: 0b100 }));
        assert!(!steps.contains(&Step::Merge));
        // Masks with host 0's bit set never appear (canonical form).
        assert!(!steps
            .iter()
            .any(|s| matches!(s, Step::Partition { mask } if mask & 1 != 0)));
        w.set_fault_budget(0);
        let steps = w.enabled();
        assert!(!steps
            .iter()
            .any(|s| matches!(s, Step::Fail { .. } | Step::Partition { .. })));
        assert!(steps.contains(&Step::Join { host: 2 }));
    }

    #[test]
    fn state_hash_covers_membership_environment() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        let mut failed = w.clone();
        failed.set_fault_budget(1);
        failed.apply_step(&Step::Fail { host: 2 }).unwrap();
        assert_ne!(w.state_hash(), failed.state_hash());
        // Same protocol state, different remaining budgets: the hash
        // must diverge or the visited-prune would conflate futures.
        let mut tight = w.clone();
        tight.set_fault_budget(0);
        assert_ne!(w.state_hash(), tight.state_hash());
    }

    #[test]
    fn join_episode_converges_to_shared_ring() {
        // Boot a 2-host ring plus one joiner, fire the join, then let
        // the adversary play fair (deliver oldest, fire the oldest
        // armed gather timer when flight empties). Every host must end
        // on one common new ring that includes the joiner.
        let mut w = World::new_with_joiners(3, &[2], "accelerated", &[]).unwrap();
        w.apply_step(&Step::Join { host: 2 }).unwrap();
        for _ in 0..400 {
            let converged = (0..3).all(|h| {
                let r = w.participant(h).ring();
                r.id() == w.participant(0).ring().id() && r.members().len() == 3
            });
            if converged {
                break;
            }
            if let Some(first) = w.inflight().first().map(|m| m.id) {
                w.apply_step(&Step::Deliver { msg: first }).unwrap();
            } else if let Some(t) = w.enabled().into_iter().find(|s| {
                // Fire membership-advancing timers only — a TokenLoss
                // here would start a *new* episode instead of finishing
                // this one.
                matches!(
                    s,
                    Step::Timer {
                        kind: TimerKind::Join
                            | TimerKind::ConsensusTimeout
                            | TimerKind::CommitTimeout,
                        ..
                    }
                )
            }) {
                w.apply_step(&t).unwrap();
            } else {
                break;
            }
        }
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        let rings: Vec<_> = (0..3).map(|h| w.participant(h).ring().id()).collect();
        assert_eq!(rings[0], rings[1], "ring ids diverged: {rings:?}");
        assert_eq!(rings[0], rings[2], "joiner left out: {rings:?}");
        assert!(w
            .participant(0)
            .ring()
            .members()
            .contains(&ParticipantId::new(2)));
    }

    #[test]
    fn regression_stub_renders_compilable_shape() {
        let stub = regression_stub(
            "replays_corpus_001",
            "tests/corpus/001.json",
            Expectation::Clean,
        );
        assert!(stub.contains("fn replays_corpus_001()"));
        assert!(stub.contains("tests/corpus/001.json"));
        assert!(stub.contains("Expectation::Clean"));
    }
}
