//! UDP transport: the paper's dual-socket design over real sockets.
//!
//! Each participant binds **two** UDP sockets — one for token (and
//! commit-token) messages, one for data (and join) messages — on
//! distinct ports, exactly as Section III-D describes: "we accomplish
//! this by sending token and data messages on different ports and using
//! different sockets for receiving the two message types".
//!
//! Multicast is *logical*: data messages are fanned out by unicast to
//! every peer. The paper's implementations use IP-multicast when
//! available, with unicast fanout as Spread's built-in fallback; we
//! implement the fallback because it works on any network (including
//! loopback test setups) with no multicast routing or socket-option
//! requirements. The protocol is agnostic to the difference.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use ar_core::{Message, ParticipantId};

use crate::transport::{is_token_channel, Transport};

/// Address book for a UDP deployment: each participant's token and
/// data socket addresses.
#[derive(Debug, Clone, Default)]
pub struct PeerMap {
    peers: BTreeMap<ParticipantId, PeerAddrs>,
}

/// One participant's socket addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddrs {
    /// Where the peer receives token and commit-token messages.
    pub token: SocketAddr,
    /// Where the peer receives data and join messages.
    pub data: SocketAddr,
}

impl PeerMap {
    /// Creates an empty map.
    pub fn new() -> PeerMap {
        PeerMap::default()
    }

    /// A localhost address book for `n` participants starting at
    /// `base_port`: participant `i` receives tokens on
    /// `base_port + 2*i` and data on `base_port + 2*i + 1`.
    pub fn localhost(n: u16, base_port: u16) -> PeerMap {
        let mut map = PeerMap::new();
        for i in 0..n {
            let token_port = base_port + 2 * i;
            map.insert(
                ParticipantId::new(i),
                PeerAddrs {
                    token: SocketAddr::from(([127, 0, 0, 1], token_port)),
                    data: SocketAddr::from(([127, 0, 0, 1], token_port + 1)),
                },
            );
        }
        map
    }

    /// Adds or replaces a participant's addresses.
    pub fn insert(&mut self, pid: ParticipantId, addrs: PeerAddrs) -> &mut PeerMap {
        self.peers.insert(pid, addrs);
        self
    }

    /// Looks up a participant's addresses.
    pub fn get(&self, pid: ParticipantId) -> Option<PeerAddrs> {
        self.peers.get(&pid).copied()
    }

    /// Number of participants in the map.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Iterates over all participants and addresses.
    pub fn iter(&self) -> impl Iterator<Item = (ParticipantId, PeerAddrs)> + '_ {
        self.peers.iter().map(|(&p, &a)| (p, a))
    }
}

/// A dual-socket UDP transport for one participant.
#[derive(Debug)]
pub struct UdpTransport {
    pid: ParticipantId,
    token_sock: UdpSocket,
    data_sock: UdpSocket,
    peers: PeerMap,
    buf: Vec<u8>,
}

/// Largest datagram we send or receive (the 64 KiB UDP maximum, which
/// the paper's large-message experiments rely on).
const MAX_DATAGRAM: usize = 65_507;

impl UdpTransport {
    /// Binds the participant's two sockets per `peers[pid]` and
    /// connects the transport to the address book.
    ///
    /// # Errors
    ///
    /// Returns an error if `pid` is missing from the map or a socket
    /// cannot be bound.
    pub fn bind(pid: ParticipantId, peers: PeerMap) -> io::Result<UdpTransport> {
        let addrs = peers.get(pid).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{pid} not present in peer map"),
            )
        })?;
        let token_sock = UdpSocket::bind(addrs.token)?;
        let data_sock = UdpSocket::bind(addrs.data)?;
        token_sock.set_nonblocking(true)?;
        data_sock.set_nonblocking(true)?;
        Ok(UdpTransport {
            pid,
            token_sock,
            data_sock,
            peers,
            buf: vec![0u8; MAX_DATAGRAM],
        })
    }

    fn send_encoded(&self, to: ParticipantId, msg: &Message, bytes: &[u8]) -> io::Result<()> {
        let Some(addrs) = self.peers.get(to) else {
            return Ok(()); // unknown peer: silently dropped, like the network would
        };
        let (sock, addr) = if is_token_channel(msg) {
            (&self.token_sock, addrs.token)
        } else {
            (&self.data_sock, addrs.data)
        };
        match sock.send_to(bytes, addr) {
            Ok(_) => Ok(()),
            // Full buffers and unreachable peers are "loss"; the
            // protocol's retransmission machinery recovers.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn try_recv_sock(sock: &UdpSocket, buf: &mut [u8]) -> io::Result<Option<Message>> {
        match sock.recv_from(buf) {
            Ok((n, _)) => match ar_core::wire::decode(&buf[..n]) {
                Ok(msg) => Ok(Some(msg)),
                Err(_) => Ok(None), // malformed datagram: drop
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Transport for UdpTransport {
    fn local_pid(&self) -> ParticipantId {
        self.pid
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        let bytes = ar_core::wire::encode(msg);
        self.send_encoded(to, msg, &bytes)
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        let bytes = ar_core::wire::encode(msg);
        let targets: Vec<ParticipantId> = self
            .peers
            .iter()
            .map(|(p, _)| p)
            .filter(|&p| p != self.pid)
            .collect();
        for p in targets {
            self.send_encoded(p, msg, &bytes)?;
        }
        Ok(())
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        let deadline = Instant::now() + timeout;
        loop {
            // Non-blocking sweep in preference order.
            let order: [&UdpSocket; 2] = if prefer_token {
                [&self.token_sock, &self.data_sock]
            } else {
                [&self.data_sock, &self.token_sock]
            };
            for sock in order {
                if let Some(m) = Self::try_recv_sock(sock, &mut self.buf)? {
                    return Ok(Some(m));
                }
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            // Brief sleep instead of poll(2): keeps the implementation
            // dependency-free; granularity is fine for protocol timers.
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    /// Binds transports on OS-assigned ports by probing a base port.
    fn bind_pair(base: u16) -> (UdpTransport, UdpTransport) {
        for attempt in 0..50u16 {
            let map = PeerMap::localhost(2, base + attempt * 16);
            match (
                UdpTransport::bind(pid(0), map.clone()),
                UdpTransport::bind(pid(1), map),
            ) {
                (Ok(a), Ok(b)) => return (a, b),
                _ => continue,
            }
        }
        panic!("could not find free ports");
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    fn data_msg() -> Message {
        Message::Data(ar_core::DataMessage {
            ring_id: RingId::default(),
            seq: Seq::new(1),
            pid: pid(0),
            round: ar_core::Round::new(1),
            service: ar_core::ServiceType::Agreed,
            after_token: false,
            payload: bytes::Bytes::from_static(b"udp"),
        })
    }

    #[test]
    fn unicast_roundtrip() {
        let (mut a, mut b) = bind_pair(42000);
        a.send_to(pid(1), &token_msg()).unwrap();
        let got = b.recv(true, Duration::from_millis(500)).unwrap().unwrap();
        assert_eq!(got, token_msg());
    }

    #[test]
    fn multicast_fanout_roundtrip() {
        let (mut a, mut b) = bind_pair(43000);
        a.multicast(&data_msg()).unwrap();
        let got = b.recv(false, Duration::from_millis(500)).unwrap().unwrap();
        assert_eq!(got, data_msg());
    }

    #[test]
    fn priority_prefers_token_socket() {
        let (mut a, mut b) = bind_pair(44000);
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &token_msg()).unwrap();
        // Give both datagrams time to land.
        std::thread::sleep(Duration::from_millis(50));
        let first = b.recv(true, Duration::from_millis(500)).unwrap().unwrap();
        assert!(matches!(first, Message::Token(_)), "{first:?}");
    }

    #[test]
    fn recv_timeout_when_idle() {
        let (mut a, _b) = bind_pair(45000);
        let got = a.recv(true, Duration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn bind_requires_presence_in_map() {
        let map = PeerMap::localhost(1, 46000);
        let err = UdpTransport::bind(pid(5), map).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn peer_map_localhost_layout() {
        let map = PeerMap::localhost(3, 50000);
        assert_eq!(map.len(), 3);
        let p1 = map.get(pid(1)).unwrap();
        assert_eq!(p1.token.port(), 50002);
        assert_eq!(p1.data.port(), 50003);
    }
}
