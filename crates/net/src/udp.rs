//! UDP transport: the paper's dual-socket design over real sockets,
//! with a batched, event-driven datapath.
//!
//! Each participant binds **two** UDP sockets — one for token (and
//! commit-token) messages, one for data (and join) messages — on
//! distinct ports, exactly as Section III-D describes: "we accomplish
//! this by sending token and data messages on different ports and using
//! different sockets for receiving the two message types".
//!
//! Multicast is *logical*: data messages are fanned out by unicast to
//! every peer. The paper's implementations use IP-multicast when
//! available, with unicast fanout as Spread's built-in fallback; we
//! implement the fallback because it works on any network (including
//! loopback test setups) with no multicast routing or socket-option
//! requirements. The protocol is agnostic to the difference.
//!
//! ## Datapath
//!
//! The protocol's throughput ceiling is set by per-packet cost on the
//! hot path (§III, §IV-B), so the transport batches both directions:
//!
//! * **Send**: every outgoing message is encoded exactly once into a
//!   pooled [`BytesMut`] scratch buffer
//!   ([`ar_core::wire::encode_to_scratch`]); a fan-out reuses that one
//!   encoding for every peer. On Linux ([`DatapathMode::Batched`])
//!   queued datagrams go out via `sendmmsg(2)` — a multicast, or a
//!   whole pre-token burst inside a [`Transport::begin_batch`] /
//!   [`Transport::end_batch`] section, costs O(1) syscalls.
//! * **Receive**: `recv` waits on **both** sockets with `ppoll(2)` (no
//!   sleep loop, no artificial token-hop latency) and drains ready
//!   datagrams with `recvmmsg(2)` into two inbound queues (token
//!   channel, data channel), honoring the priority preference on pop.
//!
//! [`DatapathMode::Portable`] is the fallback for non-Linux platforms
//! (and for A/B benchmarking via `AR_UDP_PORTABLE=1`): a loop of
//! `send_to`/`recv_from` syscalls with the original 50 µs sleep-poll
//! wait. The protocol semantics are identical in both modes; only the
//! syscall count and wakeup latency differ. See DESIGN.md ("UDP
//! datapath") for the full fallback matrix.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use ar_core::{Message, ParticipantId};
use bytes::BytesMut;

use crate::metrics::NetMetrics;
use crate::transport::{is_token_channel, Transport};

/// Address book for a UDP deployment: each participant's token and
/// data socket addresses.
#[derive(Debug, Clone, Default)]
pub struct PeerMap {
    peers: BTreeMap<ParticipantId, PeerAddrs>,
}

/// One participant's socket addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddrs {
    /// Where the peer receives token and commit-token messages.
    pub token: SocketAddr,
    /// Where the peer receives data and join messages.
    pub data: SocketAddr,
}

impl PeerMap {
    /// Creates an empty map.
    pub fn new() -> PeerMap {
        PeerMap::default()
    }

    /// A localhost address book for `n` participants starting at
    /// `base_port`: participant `i` receives tokens on
    /// `base_port + 2*i` and data on `base_port + 2*i + 1`.
    ///
    /// Participants whose port pair would not fit below `u16::MAX` are
    /// omitted (the map simply ends early), so a base port near 65535
    /// yields a short map rather than an arithmetic panic.
    pub fn localhost(n: u16, base_port: u16) -> PeerMap {
        let mut map = PeerMap::new();
        for i in 0..n {
            let token_port = u32::from(base_port) + 2 * u32::from(i);
            let data_port = token_port + 1;
            let (Ok(token_port), Ok(data_port)) =
                (u16::try_from(token_port), u16::try_from(data_port))
            else {
                break; // port space exhausted: stop, don't wrap or panic
            };
            map.insert(
                ParticipantId::new(i),
                PeerAddrs {
                    token: SocketAddr::from(([127, 0, 0, 1], token_port)),
                    data: SocketAddr::from(([127, 0, 0, 1], data_port)),
                },
            );
        }
        map
    }

    /// Adds or replaces a participant's addresses.
    pub fn insert(&mut self, pid: ParticipantId, addrs: PeerAddrs) -> &mut PeerMap {
        self.peers.insert(pid, addrs);
        self
    }

    /// Looks up a participant's addresses.
    pub fn get(&self, pid: ParticipantId) -> Option<PeerAddrs> {
        self.peers.get(&pid).copied()
    }

    /// Number of participants in the map.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Iterates over all participants and addresses.
    pub fn iter(&self) -> impl Iterator<Item = (ParticipantId, PeerAddrs)> + '_ {
        self.peers.iter().map(|(&p, &a)| (p, a))
    }
}

/// How the transport talks to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathMode {
    /// Linux batched path: `ppoll(2)` readiness waits,
    /// `sendmmsg(2)`/`recvmmsg(2)` datagram batching.
    Batched,
    /// Portable path: one syscall per datagram and a 50 µs sleep-poll
    /// receive wait. Works everywhere `std` does.
    Portable,
}

impl DatapathMode {
    /// The default for this platform: [`Batched`](DatapathMode::Batched)
    /// on Linux, [`Portable`](DatapathMode::Portable) elsewhere. Setting
    /// the environment variable `AR_UDP_PORTABLE=1` forces the portable
    /// path (used by CI to exercise the fallback, and by the
    /// `udp_datapath` bench as the baseline).
    pub fn auto() -> DatapathMode {
        if cfg!(target_os = "linux") && std::env::var_os("AR_UDP_PORTABLE").is_none_or(|v| v != "1")
        {
            DatapathMode::Batched
        } else {
            DatapathMode::Portable
        }
    }
}

/// Datapath counters, exposed for benches and tests via
/// [`UdpTransport::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Datagrams handed to the kernel (one per peer per fan-out).
    pub datagrams_tx: u64,
    /// Datagrams received and decoded successfully.
    pub datagrams_rx: u64,
    /// Inbound datagrams dropped because they failed to decode.
    pub decode_drops: u64,
    /// Send-side syscalls issued (`sendmmsg` calls or `send_to` calls).
    pub send_syscalls: u64,
    /// Receive-side syscalls issued (`recvmmsg` or `recv_from` calls),
    /// excluding readiness waits.
    pub recv_syscalls: u64,
    /// Hard send errors surfaced to the caller.
    pub send_errors: u64,
}

/// Which of the two sockets a datagram travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chan {
    Token,
    Data,
}

fn chan_of(msg: &Message) -> Chan {
    if is_token_channel(msg) {
        Chan::Token
    } else {
        Chan::Data
    }
}

/// One queued outbound datagram: an index into the scratch-buffer
/// arena plus its destination.
#[derive(Debug, Clone, Copy)]
struct QueuedSend {
    chan: Chan,
    buf: usize,
    addr: SocketAddr,
}

/// Largest datagram we send or receive (the 64 KiB UDP maximum, which
/// the paper's large-message experiments rely on).
const MAX_DATAGRAM: usize = 65_507;

/// Datagrams per `recvmmsg(2)` call (also the number of preallocated
/// receive buffers in batched mode).
const RECV_BATCH: usize = 16;

/// Datagrams per `sendmmsg(2)` call.
const SEND_BATCH: usize = 64;

/// Cap on datagrams drained from one socket per sweep, so a flooded
/// data socket cannot starve the token socket (or timers) forever.
const SWEEP_CAP: usize = 256;

/// Pending-send queue length that forces a flush even inside a batch
/// section.
const MAX_PENDING: usize = 1024;

/// Scratch buffers kept pooled between sends.
const BUF_POOL_MAX: usize = 64;

/// Sleep quantum of the portable receive wait.
const PORTABLE_POLL: Duration = Duration::from_micros(50);

/// A dual-socket UDP transport for one participant.
#[derive(Debug)]
pub struct UdpTransport {
    pid: ParticipantId,
    token_sock: UdpSocket,
    data_sock: UdpSocket,
    peers: PeerMap,
    mode: DatapathMode,
    /// Decoded inbound messages by arrival socket, awaiting pop.
    inbound_token: VecDeque<Message>,
    inbound_data: VecDeque<Message>,
    /// Receive buffers: `RECV_BATCH` in batched mode, 1 in portable.
    recv_bufs: Vec<Vec<u8>>,
    /// Outbound datagrams queued for the next flush.
    pending: Vec<QueuedSend>,
    /// Arena of encoded messages the queue entries point into (one
    /// buffer per logical message, shared by its whole fan-out).
    pending_bufs: Vec<BytesMut>,
    /// Recycled scratch buffers.
    buf_pool: Vec<BytesMut>,
    /// True between `begin_batch` and `end_batch`: sends are deferred.
    batching: bool,
    stats: UdpStats,
    /// Wire-decode drop counter mirrored into [`NetMetrics`], when
    /// instrumented.
    decode_drop_metric: Option<ar_telemetry::Counter>,
}

impl UdpTransport {
    /// Binds the participant's two sockets per `peers[pid]` and
    /// connects the transport to the address book, using the platform's
    /// default [`DatapathMode`].
    ///
    /// # Errors
    ///
    /// Returns an error if `pid` is missing from the map or a socket
    /// cannot be bound.
    pub fn bind(pid: ParticipantId, peers: PeerMap) -> io::Result<UdpTransport> {
        UdpTransport::bind_with_mode(pid, peers, DatapathMode::auto())
    }

    /// [`bind`](UdpTransport::bind) with an explicit datapath mode.
    /// Requesting [`DatapathMode::Batched`] on a non-Linux platform
    /// silently uses the portable path instead.
    ///
    /// # Errors
    ///
    /// As for [`bind`](UdpTransport::bind).
    pub fn bind_with_mode(
        pid: ParticipantId,
        peers: PeerMap,
        mode: DatapathMode,
    ) -> io::Result<UdpTransport> {
        let addrs = peers.get(pid).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{pid} not present in peer map"),
            )
        })?;
        let mode = if cfg!(target_os = "linux") {
            mode
        } else {
            DatapathMode::Portable
        };
        let token_sock = UdpSocket::bind(addrs.token)?;
        let data_sock = UdpSocket::bind(addrs.data)?;
        token_sock.set_nonblocking(true)?;
        data_sock.set_nonblocking(true)?;
        let n_bufs = match mode {
            DatapathMode::Batched => RECV_BATCH,
            DatapathMode::Portable => 1,
        };
        Ok(UdpTransport {
            pid,
            token_sock,
            data_sock,
            peers,
            mode,
            inbound_token: VecDeque::new(),
            inbound_data: VecDeque::new(),
            recv_bufs: (0..n_bufs).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            pending: Vec::new(),
            pending_bufs: Vec::new(),
            buf_pool: Vec::new(),
            batching: false,
            stats: UdpStats::default(),
            decode_drop_metric: None,
        })
    }

    /// The active datapath mode.
    pub fn mode(&self) -> DatapathMode {
        self.mode
    }

    /// A snapshot of the datapath counters.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }

    /// Mirrors transport-level drop counters into the node's
    /// [`NetMetrics`] (currently: malformed-datagram decode drops).
    pub fn set_metrics(&mut self, metrics: &NetMetrics) {
        self.decode_drop_metric = Some(metrics.wire_decode_drops.clone());
    }

    fn sock(&self, chan: Chan) -> &UdpSocket {
        match chan {
            Chan::Token => &self.token_sock,
            Chan::Data => &self.data_sock,
        }
    }

    /// Encodes `msg` once into a pooled scratch buffer and queues one
    /// datagram per target. Outside a batch section this flushes
    /// immediately (a multicast is still one `sendmmsg`).
    fn queue_send(
        &mut self,
        msg: &Message,
        targets: impl Iterator<Item = SocketAddr>,
    ) -> io::Result<()> {
        let chan = chan_of(msg);
        let mut queued = false;
        let mut buf_idx = 0;
        for addr in targets {
            if !queued {
                let mut buf = self.buf_pool.pop().unwrap_or_default();
                ar_core::wire::encode_to_scratch(msg, &mut buf);
                buf_idx = self.pending_bufs.len();
                self.pending_bufs.push(buf);
                queued = true;
            }
            self.pending.push(QueuedSend {
                chan,
                buf: buf_idx,
                addr,
            });
        }
        if !self.batching || self.pending.len() >= MAX_PENDING {
            self.flush_pending()
        } else {
            Ok(())
        }
    }

    /// Sends everything queued, batching contiguous same-socket runs
    /// into `sendmmsg(2)` calls (batched mode) or looping `send_to`
    /// (portable mode). Every datagram is attempted; the first hard
    /// error is surfaced only after the whole queue has been tried, so
    /// one refusing peer cannot starve the rest of a fan-out.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending);
        let mut first_err: Option<io::Error> = None;
        let mut i = 0;
        while i < pending.len() {
            let chan = pending[i].chan;
            let mut j = i;
            while j < pending.len() && pending[j].chan == chan {
                j += 1;
            }
            self.flush_run(chan, &pending[i..j], &mut first_err);
            i = j;
        }
        // Recycle the arena.
        for buf in self.pending_bufs.drain(..) {
            if self.buf_pool.len() < BUF_POOL_MAX {
                self.buf_pool.push(buf);
            }
        }
        match first_err {
            Some(e) => {
                self.stats.send_errors += 1;
                Err(e)
            }
            None => Ok(()),
        }
    }

    /// Sends one contiguous same-socket run.
    fn flush_run(&mut self, chan: Chan, run: &[QueuedSend], first_err: &mut Option<io::Error>) {
        match self.mode {
            #[cfg(target_os = "linux")]
            DatapathMode::Batched => self.flush_run_batched(chan, run, first_err),
            #[cfg(not(target_os = "linux"))]
            DatapathMode::Batched => unreachable!("batched mode is Linux-only"),
            DatapathMode::Portable => self.flush_run_portable(chan, run, first_err),
        }
    }

    fn flush_run_portable(
        &mut self,
        chan: Chan,
        run: &[QueuedSend],
        first_err: &mut Option<io::Error>,
    ) {
        for q in run {
            let bytes = &self.pending_bufs[q.buf];
            self.stats.send_syscalls += 1;
            match self.sock(chan).send_to(bytes, q.addr) {
                Ok(_) => self.stats.datagrams_tx += 1,
                // Full buffers and unreachable peers are "loss"; the
                // protocol's retransmission machinery recovers.
                Err(e) if is_soft_send_error(&e) => {}
                // Hard error: remember it, keep fanning out.
                Err(e) => {
                    if first_err.is_none() {
                        *first_err = Some(e);
                    }
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn flush_run_batched(
        &mut self,
        chan: Chan,
        run: &[QueuedSend],
        first_err: &mut Option<io::Error>,
    ) {
        use crate::sys;
        use std::os::fd::AsRawFd;

        let fd = self.sock(chan).as_raw_fd();
        for chunk in run.chunks(SEND_BATCH) {
            // Build the mmsghdr array only after the addr and iovec
            // vectors are complete (no reallocation moves the memory
            // the headers point into).
            let mut addrs: Vec<sys::RawSockAddr> =
                chunk.iter().map(|q| sys::raw_sockaddr(&q.addr)).collect();
            let mut iovs: Vec<sys::IoVec> = chunk
                .iter()
                .map(|q| {
                    let bytes = &self.pending_bufs[q.buf];
                    sys::IoVec {
                        base: bytes.as_ptr() as *mut u8,
                        len: bytes.len(),
                    }
                })
                .collect();
            let mut hdrs: Vec<sys::MMsgHdr> = (0..chunk.len())
                .map(|k| {
                    let mut h = sys::MsgHdr::zeroed();
                    h.name = addrs[k].bytes.as_mut_ptr();
                    h.namelen = addrs[k].len;
                    h.iov = &mut iovs[k];
                    h.iovlen = 1;
                    sys::MMsgHdr { hdr: h, len: 0 }
                })
                .collect();
            // Attempt the whole chunk: a failing datagram is skipped
            // (soft errors are loss, hard errors are remembered) and
            // the remainder is retried from the next slot.
            let mut off = 0;
            while off < hdrs.len() {
                self.stats.send_syscalls += 1;
                match sys::sendmmsg_once(fd, &mut hdrs[off..]) {
                    Ok(sent) => {
                        self.stats.datagrams_tx += sent as u64;
                        off += sent.max(1);
                    }
                    Err(e) if is_soft_send_error(&e) => off += 1,
                    Err(e) => {
                        if first_err.is_none() {
                            *first_err = Some(e);
                        }
                        off += 1;
                    }
                }
            }
        }
    }

    /// Pops the next inbound message honoring the channel preference.
    fn pop_inbound(&mut self, prefer_token: bool) -> Option<Message> {
        if prefer_token {
            self.inbound_token
                .pop_front()
                .or_else(|| self.inbound_data.pop_front())
        } else {
            self.inbound_data
                .pop_front()
                .or_else(|| self.inbound_token.pop_front())
        }
    }

    fn inbound_is_empty(&self) -> bool {
        self.inbound_token.is_empty() && self.inbound_data.is_empty()
    }

    fn note_decode_drop(&mut self) {
        self.stats.decode_drops += 1;
        if let Some(c) = &self.decode_drop_metric {
            c.inc();
        }
    }

    /// Drains every ready datagram on both sockets (non-blocking) into
    /// the inbound queues. A malformed datagram is dropped and counted,
    /// and the drain continues — queued valid datagrams behind it are
    /// still surfaced in the same sweep.
    fn sweep_sockets(&mut self, prefer_token: bool) -> io::Result<()> {
        let order = if prefer_token {
            [Chan::Token, Chan::Data]
        } else {
            [Chan::Data, Chan::Token]
        };
        for chan in order {
            match self.mode {
                #[cfg(target_os = "linux")]
                DatapathMode::Batched => self.sweep_sock_batched(chan)?,
                #[cfg(not(target_os = "linux"))]
                DatapathMode::Batched => unreachable!("batched mode is Linux-only"),
                DatapathMode::Portable => self.sweep_sock_portable(chan)?,
            }
        }
        Ok(())
    }

    /// Decodes one received datagram and queues it on its channel.
    fn queue_decoded(&mut self, chan: Chan, bytes: &[u8]) {
        match ar_core::wire::decode(bytes) {
            Ok(msg) => {
                self.stats.datagrams_rx += 1;
                match chan {
                    Chan::Token => self.inbound_token.push_back(msg),
                    Chan::Data => self.inbound_data.push_back(msg),
                }
            }
            Err(_) => self.note_decode_drop(),
        }
    }

    fn sweep_sock_portable(&mut self, chan: Chan) -> io::Result<()> {
        let mut bufs = std::mem::take(&mut self.recv_bufs);
        let res = self.sweep_sock_portable_inner(chan, &mut bufs[0]);
        self.recv_bufs = bufs;
        res
    }

    fn sweep_sock_portable_inner(&mut self, chan: Chan, buf: &mut [u8]) -> io::Result<()> {
        let mut drained = 0;
        while drained < SWEEP_CAP {
            self.stats.recv_syscalls += 1;
            match self.sock(chan).recv_from(buf) {
                Ok((n, _)) => {
                    self.queue_decoded(chan, &buf[..n]);
                    drained += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A previous send to a dead peer can surface here as
                // ECONNREFUSED; it carries no datagram. Treat the
                // socket as drained for this sweep.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => break,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    #[cfg(target_os = "linux")]
    fn sweep_sock_batched(&mut self, chan: Chan) -> io::Result<()> {
        let mut bufs = std::mem::take(&mut self.recv_bufs);
        let res = self.sweep_sock_batched_inner(chan, &mut bufs);
        self.recv_bufs = bufs;
        res
    }

    #[cfg(target_os = "linux")]
    fn sweep_sock_batched_inner(&mut self, chan: Chan, bufs: &mut [Vec<u8>]) -> io::Result<()> {
        use crate::sys;
        use std::os::fd::AsRawFd;

        let fd = self.sock(chan).as_raw_fd();
        let mut drained = 0;
        while drained < SWEEP_CAP {
            let mut iovs: Vec<sys::IoVec> = bufs
                .iter_mut()
                .map(|b| sys::IoVec {
                    base: b.as_mut_ptr(),
                    len: b.len(),
                })
                .collect();
            let mut hdrs: Vec<sys::MMsgHdr> = iovs
                .iter_mut()
                .map(|iov| {
                    let mut h = sys::MsgHdr::zeroed();
                    h.iov = iov;
                    h.iovlen = 1;
                    sys::MMsgHdr { hdr: h, len: 0 }
                })
                .collect();
            self.stats.recv_syscalls += 1;
            let got = match sys::recvmmsg_once(fd, &mut hdrs) {
                Ok(got) => got,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => break,
                Err(e) => return Err(e),
            };
            for (idx, hdr) in hdrs[..got].iter().enumerate() {
                self.queue_decoded(chan, &bufs[idx][..hdr.len as usize]);
                drained += 1;
            }
            if got < bufs.len() {
                break; // short batch: socket is drained
            }
        }
        Ok(())
    }

    /// Blocks until a socket is readable or `timeout` elapses.
    fn wait_readable(&mut self, timeout: Duration) -> io::Result<()> {
        match self.mode {
            #[cfg(target_os = "linux")]
            DatapathMode::Batched => {
                use crate::sys;
                use std::os::fd::AsRawFd;
                let mut fds = [
                    sys::PollFd {
                        fd: self.token_sock.as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    },
                    sys::PollFd {
                        fd: self.data_sock.as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    },
                ];
                sys::poll_readable(&mut fds, timeout)?;
                Ok(())
            }
            #[cfg(not(target_os = "linux"))]
            DatapathMode::Batched => unreachable!("batched mode is Linux-only"),
            DatapathMode::Portable => {
                // Brief sleep instead of poll(2): the dependency-free
                // fallback for platforms without the FFI shim.
                std::thread::sleep(timeout.min(PORTABLE_POLL));
                Ok(())
            }
        }
    }
}

fn is_soft_send_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::ConnectionRefused
    )
}

impl Transport for UdpTransport {
    fn local_pid(&self) -> ParticipantId {
        self.pid
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        let Some(addrs) = self.peers.get(to) else {
            return Ok(()); // unknown peer: silently dropped, like the network would
        };
        let addr = match chan_of(msg) {
            Chan::Token => addrs.token,
            Chan::Data => addrs.data,
        };
        self.queue_send(msg, std::iter::once(addr))
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        let chan = chan_of(msg);
        let me = self.pid;
        let targets: Vec<SocketAddr> = self
            .peers
            .iter()
            .filter(|&(p, _)| p != me)
            .map(|(_, a)| match chan {
                Chan::Token => a.token,
                Chan::Data => a.data,
            })
            .collect();
        self.queue_send(msg, targets.into_iter())
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        // Never wait for replies while our own sends sit queued.
        self.flush_pending()?;
        if let Some(m) = self.pop_inbound(prefer_token) {
            return Ok(Some(m));
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.sweep_sockets(prefer_token)?;
            if let Some(m) = self.pop_inbound(prefer_token) {
                return Ok(Some(m));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.wait_readable(remaining)?;
        }
    }

    fn recv_batch(
        &mut self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> io::Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        self.flush_pending()?;
        let deadline = Instant::now() + timeout;
        loop {
            self.sweep_sockets(prefer_token)?;
            if !self.inbound_is_empty() {
                break;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(0);
            }
            self.wait_readable(remaining)?;
        }
        let mut n = 0;
        while n < max {
            match self.pop_inbound(prefer_token) {
                Some(m) => {
                    out.push(m);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    fn begin_batch(&mut self) {
        self.batching = true;
    }

    fn end_batch(&mut self) -> io::Result<()> {
        self.batching = false;
        self.flush_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    /// Binds transports on OS-assigned ports by probing a base port
    /// (checked arithmetic: probing near the top of the port space
    /// skips out-of-range candidates instead of wrapping).
    fn bind_pair_mode(base: u16, mode: DatapathMode) -> (UdpTransport, UdpTransport) {
        for attempt in 0..50u16 {
            let Some(probe) = attempt.checked_mul(16).and_then(|o| base.checked_add(o)) else {
                continue;
            };
            let map = PeerMap::localhost(2, probe);
            if map.len() < 2 {
                continue;
            }
            match (
                UdpTransport::bind_with_mode(pid(0), map.clone(), mode),
                UdpTransport::bind_with_mode(pid(1), map, mode),
            ) {
                (Ok(a), Ok(b)) => return (a, b),
                _ => continue,
            }
        }
        panic!("could not find free ports");
    }

    fn both_modes() -> Vec<DatapathMode> {
        if cfg!(target_os = "linux") {
            vec![DatapathMode::Batched, DatapathMode::Portable]
        } else {
            vec![DatapathMode::Portable]
        }
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    fn data_msg() -> Message {
        Message::Data(ar_core::DataMessage {
            ring_id: RingId::default(),
            seq: Seq::new(1),
            pid: pid(0),
            round: ar_core::Round::new(1),
            service: ar_core::ServiceType::Agreed,
            after_token: false,
            payload: bytes::Bytes::from_static(b"udp"),
        })
    }

    #[test]
    fn unicast_roundtrip() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(42000, mode);
            a.send_to(pid(1), &token_msg()).unwrap();
            let got = b.recv(true, Duration::from_millis(500)).unwrap().unwrap();
            assert_eq!(got, token_msg(), "{mode:?}");
        }
    }

    #[test]
    fn multicast_fanout_roundtrip() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(43000, mode);
            a.multicast(&data_msg()).unwrap();
            let got = b.recv(false, Duration::from_millis(500)).unwrap().unwrap();
            assert_eq!(got, data_msg(), "{mode:?}");
        }
    }

    #[test]
    fn priority_prefers_token_socket() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(44000, mode);
            a.send_to(pid(1), &data_msg()).unwrap();
            a.send_to(pid(1), &token_msg()).unwrap();
            // Give both datagrams time to land.
            std::thread::sleep(Duration::from_millis(50));
            let first = b.recv(true, Duration::from_millis(500)).unwrap().unwrap();
            assert!(matches!(first, Message::Token(_)), "{mode:?}: {first:?}");
        }
    }

    #[test]
    fn recv_timeout_when_idle() {
        for mode in both_modes() {
            let (mut a, _b) = bind_pair_mode(45000, mode);
            let got = a.recv(true, Duration::from_millis(20)).unwrap();
            assert!(got.is_none(), "{mode:?}");
        }
    }

    #[test]
    fn bind_requires_presence_in_map() {
        let map = PeerMap::localhost(1, 46000);
        let err = UdpTransport::bind(pid(5), map).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn peer_map_localhost_layout() {
        let map = PeerMap::localhost(3, 50000);
        assert_eq!(map.len(), 3);
        let p1 = map.get(pid(1)).unwrap();
        assert_eq!(p1.token.port(), 50002);
        assert_eq!(p1.data.port(), 50003);
    }

    /// Regression: `localhost` near the top of the port space must not
    /// wrap or panic in debug builds — participants whose ports do not
    /// fit are simply omitted.
    #[test]
    fn peer_map_localhost_stops_at_port_space_end() {
        // 65530/65531, 65532/65533, 65534/65535 fit; the 4th pair does not.
        let map = PeerMap::localhost(10, 65530);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(pid(2)).unwrap().data.port(), 65535);
        // Token port fits but data port would overflow: pair omitted.
        let map = PeerMap::localhost(3, 65533);
        assert_eq!(map.len(), 1);
        // Degenerate base: nothing fits beyond the first pair.
        assert_eq!(PeerMap::localhost(u16::MAX, 65534).len(), 1);
    }

    /// Regression: a hard send error for one peer must not abort the
    /// fan-out — every remaining peer is attempted, and the first error
    /// surfaces only after the loop.
    #[test]
    fn multicast_attempts_all_peers_and_surfaces_first_error() {
        for mode in both_modes() {
            let mut found = None;
            for attempt in 0..50u16 {
                let base = 52000 + attempt * 16;
                let mut map = PeerMap::new();
                map.insert(
                    pid(0),
                    PeerAddrs {
                        token: SocketAddr::from(([127, 0, 0, 1], base)),
                        data: SocketAddr::from(([127, 0, 0, 1], base + 1)),
                    },
                );
                // pid(1) sorts before pid(2) in the fan-out and its
                // port-0 addresses make every send fail hard (EINVAL).
                map.insert(
                    pid(1),
                    PeerAddrs {
                        token: SocketAddr::from(([127, 0, 0, 1], 0)),
                        data: SocketAddr::from(([127, 0, 0, 1], 0)),
                    },
                );
                map.insert(
                    pid(2),
                    PeerAddrs {
                        token: SocketAddr::from(([127, 0, 0, 1], base + 2)),
                        data: SocketAddr::from(([127, 0, 0, 1], base + 3)),
                    },
                );
                match (
                    UdpTransport::bind_with_mode(pid(0), map.clone(), mode),
                    UdpTransport::bind_with_mode(pid(2), map, mode),
                ) {
                    (Ok(a), Ok(c)) => {
                        found = Some((a, c));
                        break;
                    }
                    _ => continue,
                }
            }
            let (mut a, mut c) = found.expect("free ports");
            let err = a
                .multicast(&data_msg())
                .expect_err("port 0 is a hard error");
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{mode:?}");
            assert_eq!(a.stats().send_errors, 1);
            // The peer *after* the failing one still got the message.
            let got = c.recv(false, Duration::from_millis(500)).unwrap();
            assert_eq!(got, Some(data_msg()), "{mode:?}: fan-out continued");
        }
    }

    /// Regression: a malformed datagram must not make the socket look
    /// empty for the sweep — a valid datagram queued behind it is
    /// surfaced in the same sweep, and the drop is counted.
    #[test]
    fn malformed_datagram_does_not_mask_queued_valid_one() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(53000, mode);
            let b_token_addr = b.peers.get(pid(1)).unwrap().token;
            let garbage_tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            garbage_tx
                .send_to(b"\xFFnot a message", b_token_addr)
                .unwrap();
            a.send_to(pid(1), &token_msg()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            // A single zero-timeout sweep must get past the garbage.
            let got = b.recv(true, Duration::ZERO).unwrap();
            assert_eq!(got, Some(token_msg()), "{mode:?}");
            assert_eq!(b.stats().decode_drops, 1, "{mode:?}");
            assert_eq!(b.stats().datagrams_rx, 1, "{mode:?}");
        }
    }

    /// A batch section defers sends until `end_batch`, then flushes the
    /// whole burst (in batched mode: as O(1) syscalls per run).
    #[test]
    fn batch_section_defers_and_flushes_burst() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(54000, mode);
            a.begin_batch();
            for _ in 0..3 {
                a.multicast(&data_msg()).unwrap();
            }
            assert_eq!(a.stats().datagrams_tx, 0, "{mode:?}: deferred");
            assert!(
                b.recv(false, Duration::from_millis(30)).unwrap().is_none(),
                "{mode:?}: nothing on the wire before end_batch"
            );
            let syscalls_before = a.stats().send_syscalls;
            a.end_batch().unwrap();
            assert_eq!(a.stats().datagrams_tx, 3, "{mode:?}");
            if mode == DatapathMode::Batched {
                assert_eq!(
                    a.stats().send_syscalls - syscalls_before,
                    1,
                    "one sendmmsg for the whole burst"
                );
            }
            for i in 0..3 {
                let got = b.recv(false, Duration::from_millis(500)).unwrap();
                assert_eq!(got, Some(data_msg()), "{mode:?}: message {i}");
            }
        }
    }

    /// `recv_batch` drains everything ready in one call, tokens first
    /// when the token channel is preferred.
    #[test]
    fn recv_batch_drains_ready_messages_token_first() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(55000, mode);
            for _ in 0..3 {
                a.send_to(pid(1), &data_msg()).unwrap();
            }
            a.send_to(pid(1), &token_msg()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            let mut out = Vec::new();
            let n = b
                .recv_batch(true, Duration::from_millis(500), 16, &mut out)
                .unwrap();
            assert_eq!(n, 4, "{mode:?}");
            assert!(matches!(out[0], Message::Token(_)), "{mode:?}: {out:?}");
            assert_eq!(out.len(), 4);
        }
    }

    /// `recv_batch` respects `max` and keeps the rest queued.
    #[test]
    fn recv_batch_respects_max() {
        for mode in both_modes() {
            let (mut a, mut b) = bind_pair_mode(56000, mode);
            for _ in 0..5 {
                a.send_to(pid(1), &data_msg()).unwrap();
            }
            std::thread::sleep(Duration::from_millis(50));
            let mut out = Vec::new();
            let n = b
                .recv_batch(false, Duration::from_millis(500), 2, &mut out)
                .unwrap();
            assert_eq!(n, 2, "{mode:?}");
            // The remaining three are still queued locally.
            let mut rest = Vec::new();
            let m = b
                .recv_batch(false, Duration::from_millis(500), 16, &mut rest)
                .unwrap();
            assert_eq!(m, 3, "{mode:?}");
        }
    }

    #[test]
    fn non_linux_coerces_batched_to_portable() {
        let (a, _b) = bind_pair_mode(57000, DatapathMode::Batched);
        if cfg!(target_os = "linux") {
            assert_eq!(a.mode(), DatapathMode::Batched);
        } else {
            assert_eq!(a.mode(), DatapathMode::Portable);
        }
    }
}
