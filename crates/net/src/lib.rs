//! # ar-net — real transports for the Accelerated Ring protocol
//!
//! The sans-io protocol core (`ar-core`) needs an environment that
//! moves bytes and runs timers. This crate provides the real-world
//! environments:
//!
//! * [`Transport`] — the dual-channel transport abstraction (token
//!   channel + data channel, mirroring the paper's two sockets on two
//!   ports, Section III-D);
//! * [`UdpTransport`] — UDP over two sockets, with logical multicast by
//!   unicast fanout (Spread's no-IP-multicast fallback mode);
//! * [`LoopbackNet`] / [`LoopbackTransport`] — an in-process channel
//!   hub for concurrent tests and examples;
//! * [`Runtime`] — the single-threaded daemon main loop: receive with
//!   the protocol's current priority preference, handle, execute
//!   actions, fire timers;
//! * [`spawn`] / [`NodeHandle`] — one-thread-per-participant wrapper
//!   with channel-based submit/deliver.
//!
//! ## Example: a ring of three on in-process transports
//!
//! ```
//! use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
//! use ar_net::{spawn, AppEvent, LoopbackNet};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let net = LoopbackNet::new();
//! let members: Vec<ParticipantId> = (0..3).map(ParticipantId::new).collect();
//! let ring_id = RingId::new(members[0], 1);
//! let nodes: Vec<_> = members.iter().map(|&p| {
//!     let part = Participant::new(p, ProtocolConfig::accelerated(),
//!                                 ring_id, members.clone()).unwrap();
//!     spawn(part, net.endpoint(p))
//! }).collect();
//! nodes[1].submit(Bytes::from_static(b"hello"), ServiceType::Agreed).unwrap();
//! let ev = nodes[2].recv_event(Duration::from_secs(5));
//! assert!(matches!(ev, Some(AppEvent::Delivered(_))));
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod loopback;
pub mod lossy;
pub mod metrics;
pub mod nemesis;
pub mod node;
pub mod poll;
pub mod replay;
pub mod runtime;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub mod transport;
pub mod udp;

pub use chaos::{ChaosConfig, ChaosControl, ChaosStats, ChaosTransport, KindStats, MsgKind};
pub use loopback::{LoopbackNet, LoopbackTransport};
pub use lossy::LossyTransport;
pub use metrics::NetMetrics;
pub use nemesis::{NemesisOutcome, NemesisPlan, NemesisRunner};
pub use node::{spawn, NodeHandle};
pub use poll::PollSet;
pub use replay::{
    replay_schedule, Expectation, ReplayOutcome, Schedule, ScheduleError, Step, Submission, World,
};
pub use runtime::{AppEvent, Runtime};
pub use transport::Transport;
pub use udp::{DatapathMode, PeerAddrs, PeerMap, UdpStats, UdpTransport};
