//! Public readiness polling over raw file descriptors.
//!
//! The batched UDP datapath waits on its two sockets with `ppoll(2)`
//! (see `crate::sys`). The client service tier (`ar-svc`) has the same
//! problem at a different scale: one thread multiplexing thousands of
//! client sockets plus a couple of listeners. This module exposes that
//! ppoll loop as a reusable [`PollSet`]: register any `AsRawFd`
//! descriptors, wait once, inspect per-descriptor readability.
//!
//! On non-Linux targets (where `crate::sys` is not compiled) the set
//! degrades to a bounded sleep that reports every descriptor as
//! possibly-readable; callers use non-blocking reads anyway, so the
//! fallback costs spurious wakeups, not correctness.

use std::io;
use std::time::Duration;

/// A reusable set of descriptors polled for readability.
///
/// The intended pattern is rebuild-per-iteration (registration is just
/// a `Vec` push, far cheaper than a syscall):
///
/// ```ignore
/// let mut set = PollSet::new();
/// loop {
///     set.clear();
///     let listener_slot = set.register(listener.as_raw_fd());
///     let slots: Vec<usize> = conns.iter().map(|c| set.register(c.fd())).collect();
///     set.wait(Duration::from_millis(5))?;
///     if set.is_readable(listener_slot) { /* accept */ }
///     for (i, slot) in slots.iter().enumerate() {
///         if set.is_readable(*slot) { /* read conns[i] */ }
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct PollSet {
    #[cfg(target_os = "linux")]
    fds: Vec<crate::sys::PollFd>,
    #[cfg(not(target_os = "linux"))]
    len: usize,
}

impl PollSet {
    /// Creates an empty set.
    pub fn new() -> PollSet {
        PollSet::default()
    }

    /// Removes every registered descriptor (capacity is kept).
    pub fn clear(&mut self) {
        #[cfg(target_os = "linux")]
        self.fds.clear();
        #[cfg(not(target_os = "linux"))]
        {
            self.len = 0;
        }
    }

    /// Registers a descriptor for readability and returns its slot
    /// index (valid until the next [`clear`](PollSet::clear)).
    pub fn register(&mut self, fd: i32) -> usize {
        #[cfg(target_os = "linux")]
        {
            self.fds.push(crate::sys::PollFd {
                fd,
                events: crate::sys::POLLIN,
                revents: 0,
            });
            self.fds.len() - 1
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = fd;
            self.len += 1;
            self.len - 1
        }
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        #[cfg(target_os = "linux")]
        {
            self.fds.len()
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.len
        }
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Waits until some registered descriptor is readable (or has an
    /// error/hangup pending) or `timeout` elapses. Returns `true` when
    /// at least one slot needs attention.
    ///
    /// # Errors
    ///
    /// Propagates the kernel error (`EINTR` is retried internally).
    pub fn wait(&mut self, timeout: Duration) -> io::Result<bool> {
        #[cfg(target_os = "linux")]
        {
            if self.fds.is_empty() {
                std::thread::sleep(timeout);
                return Ok(false);
            }
            crate::sys::poll_readable(&mut self.fds, timeout)
        }
        #[cfg(not(target_os = "linux"))]
        {
            // Portable fallback: bounded sleep; every descriptor then
            // reports readable and the caller's non-blocking reads sort
            // out which ones actually have data.
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            Ok(self.len > 0)
        }
    }

    /// True when the slot returned by [`register`](PollSet::register)
    /// was readable (or hung up / errored — states a read will
    /// surface) at the last [`wait`](PollSet::wait).
    pub fn is_readable(&self, slot: usize) -> bool {
        #[cfg(target_os = "linux")]
        {
            self.fds.get(slot).is_some_and(|fd| fd.revents != 0)
        }
        #[cfg(not(target_os = "linux"))]
        {
            slot < self.len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    #[test]
    fn empty_set_times_out() {
        let mut set = PollSet::new();
        let start = std::time::Instant::now();
        assert!(!set.wait(Duration::from_millis(20)).unwrap());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn readable_socket_is_flagged() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let idle = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(b"ping", rx.local_addr().unwrap()).unwrap();

        let mut set = PollSet::new();
        let rx_slot = set.register(rx.as_raw_fd());
        let idle_slot = set.register(idle.as_raw_fd());
        assert_eq!(set.len(), 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut ready = false;
        while !ready && std::time::Instant::now() < deadline {
            ready = set.wait(Duration::from_millis(50)).unwrap();
        }
        assert!(ready);
        assert!(set.is_readable(rx_slot));
        #[cfg(target_os = "linux")]
        assert!(!set.is_readable(idle_slot), "idle socket not flagged");
        let _ = idle_slot;

        set.clear();
        assert!(set.is_empty());
    }
}
