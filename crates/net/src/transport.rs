//! The transport abstraction the runtime drives the protocol over.

use std::io;
use std::time::Duration;

use ar_core::{Message, ParticipantId};

/// A bidirectional transport for one protocol participant.
///
/// Implementations maintain **two logical channels** — one for token
/// (and commit-token) messages, one for data (and join) messages — so
/// the receiver can honor the protocol's priority preference
/// (Section III-C/III-D of the paper: separate sockets and ports).
pub trait Transport {
    /// This endpoint's participant identifier.
    fn local_pid(&self) -> ParticipantId;

    /// Sends a message to a single peer on the appropriate channel
    /// (token channel for `Token`/`Commit`, data channel otherwise).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the underlying send fails; transient
    /// full-buffer conditions should be handled inside the transport
    /// (messages may be dropped — the protocol recovers).
    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()>;

    /// Multicasts a message to every peer (logical multicast; may be
    /// implemented as unicast fanout).
    ///
    /// # Errors
    ///
    /// As for [`send_to`](Self::send_to).
    fn multicast(&mut self, msg: &Message) -> io::Result<()>;

    /// Receives the next message, preferring the token channel when
    /// `prefer_token` is true (and the data channel otherwise), waiting
    /// up to `timeout`. Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the underlying receive fails for a
    /// reason other than timeout.
    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>>;

    /// Receives a batch: waits up to `timeout` for the first message,
    /// then drains whatever else is already queued — up to `max`
    /// messages total, appended to `out` — without waiting further.
    /// Messages are appended in channel-priority order per sweep
    /// (preferred channel first), so a caller that processes the batch
    /// front-to-back preserves the priority-method semantics. Returns
    /// the number of messages appended (0 on timeout).
    ///
    /// The default implementation receives a single message; batching
    /// transports override this to drain their ready queue in O(1)
    /// syscalls.
    ///
    /// # Errors
    ///
    /// As for [`recv`](Self::recv).
    fn recv_batch(
        &mut self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> io::Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        match self.recv(prefer_token, timeout)? {
            Some(m) => {
                out.push(m);
                Ok(1)
            }
            None => Ok(0),
        }
    }

    /// Opens a send batch: until [`end_batch`](Self::end_batch), the
    /// transport may defer sends and coalesce them into batched
    /// syscalls. Purely a performance hint — non-batching transports
    /// ignore it. Calls do not nest.
    fn begin_batch(&mut self) {}

    /// Closes a send batch and flushes everything deferred since
    /// [`begin_batch`](Self::begin_batch).
    ///
    /// # Errors
    ///
    /// Surfaces the first hard send error encountered while flushing
    /// (remaining datagrams are still attempted first).
    fn end_batch(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Routes a message kind to the channel it travels on.
///
/// Token and commit-token messages use the token channel; data and join
/// messages use the data channel.
pub fn is_token_channel(msg: &Message) -> bool {
    matches!(msg, Message::Token(_) | Message::Commit(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{CommitToken, JoinMessage, RingId, Seq, Token};

    #[test]
    fn channel_routing() {
        let ring = RingId::default();
        assert!(is_token_channel(&Message::Token(Token::initial(
            ring,
            Seq::ZERO
        ))));
        assert!(is_token_channel(&Message::Commit(CommitToken::new(
            ring,
            &[ParticipantId::new(0)]
        ))));
        assert!(!is_token_channel(&Message::Join(JoinMessage {
            sender: ParticipantId::new(0),
            proc_set: vec![],
            fail_set: vec![],
            ring_seq: 0,
        })));
    }
}
