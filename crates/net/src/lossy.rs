//! A loss-injecting transport wrapper for resilience testing.
//!
//! Wraps any [`Transport`] and drops messages with a seeded,
//! per-message probability — deterministic given the seed, independent
//! of timing. Loss applies to **both** paths: outbound sends and
//! inbound receives, modelling a lossy wire rather than a lossy NIC
//! queue. Per-message-kind counters (token vs data vs membership) are
//! available through [`LossyTransport::stats`].
//!
//! This is a convenience facade over [`crate::chaos::ChaosTransport`]
//! configured with loss only; reach for the chaos transport directly
//! when duplication, reordering, delay, or dynamic faults are needed.

use std::io;
use std::time::Duration;

use ar_core::{Message, ParticipantId};

use crate::chaos::{ChaosConfig, ChaosStats, ChaosTransport};
use crate::transport::Transport;

/// Transport wrapper that randomly drops messages in both directions.
#[derive(Debug)]
pub struct LossyTransport<T: Transport> {
    chaos: ChaosTransport<T>,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner`, dropping each message copy (outbound per send
    /// call, inbound per received message) with probability
    /// `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside `[0, 1)` — a transport that
    /// drops everything can never make progress.
    pub fn new(inner: T, drop_prob: f64, seed: u64) -> LossyTransport<T> {
        LossyTransport {
            chaos: ChaosTransport::new(inner, ChaosConfig::quiet(seed).with_loss(drop_prob)),
        }
    }

    /// Outbound messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.chaos.stats().total_dropped()
    }

    /// Outbound messages passed through so far.
    pub fn sent(&self) -> u64 {
        self.chaos.stats().total_sent()
    }

    /// Inbound messages dropped so far.
    pub fn recv_dropped(&self) -> u64 {
        self.chaos.stats().total_recv_dropped()
    }

    /// Inbound messages surfaced so far.
    pub fn received(&self) -> u64 {
        self.chaos.stats().total_received()
    }

    /// Per-message-kind counters.
    pub fn stats(&self) -> ChaosStats {
        self.chaos.stats()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        self.chaos.inner()
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn local_pid(&self) -> ParticipantId {
        self.chaos.local_pid()
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        self.chaos.send_to(to, msg)
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        self.chaos.multicast(msg)
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        self.chaos.recv(prefer_token, timeout)
    }

    fn recv_batch(
        &mut self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> io::Result<usize> {
        self.chaos.recv_batch(prefer_token, timeout, max, out)
    }

    fn begin_batch(&mut self) {
        self.chaos.begin_batch();
    }

    fn end_batch(&mut self) -> io::Result<()> {
        self.chaos.end_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::MsgKind;
    use crate::loopback::LoopbackNet;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    #[test]
    fn zero_loss_passes_everything() {
        let net = LoopbackNet::new();
        let mut a = LossyTransport::new(net.endpoint(pid(0)), 0.0, 1);
        let mut b = net.endpoint(pid(1));
        for _ in 0..50 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        assert_eq!(a.sent(), 50);
        assert_eq!(a.dropped(), 0);
        let mut got = 0;
        while b.recv(true, Duration::from_millis(5)).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 50);
    }

    #[test]
    fn half_loss_drops_roughly_half() {
        let net = LoopbackNet::new();
        let mut a = LossyTransport::new(net.endpoint(pid(0)), 0.5, 42);
        for _ in 0..400 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        let dropped = a.dropped();
        assert!((120..280).contains(&dropped), "dropped {dropped} of 400");
        assert_eq!(a.sent() + a.dropped(), 400);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let net = LoopbackNet::new();
            let mut t = LossyTransport::new(net.endpoint(pid(0)), 0.3, seed);
            for _ in 0..100 {
                t.send_to(pid(1), &token_msg()).unwrap();
            }
            t.dropped()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn loss_applies_inbound_symmetrically() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = LossyTransport::new(net.endpoint(pid(1)), 0.5, 11);
        for _ in 0..200 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        let mut got = 0u64;
        while b.recv(true, Duration::from_millis(2)).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(b.received(), got);
        assert!(b.recv_dropped() > 0, "inbound drops applied");
        assert_eq!(b.received() + b.recv_dropped(), 200);
        assert!(
            (60..140).contains(&b.recv_dropped()),
            "{}",
            b.recv_dropped()
        );
    }

    #[test]
    fn per_kind_stats_distinguish_token_traffic() {
        let net = LoopbackNet::new();
        let mut a = LossyTransport::new(net.endpoint(pid(0)), 0.3, 9);
        for _ in 0..100 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        let stats = a.stats();
        let tok = stats.kind(MsgKind::Token);
        assert_eq!(tok.sent + tok.dropped, 100);
        assert_eq!(stats.kind(MsgKind::Data).sent, 0);
        assert_eq!(stats.kind(MsgKind::Join).sent, 0);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_loss_rejected() {
        let net = LoopbackNet::new();
        let _ = LossyTransport::new(net.endpoint(pid(0)), 1.0, 1);
    }
}
