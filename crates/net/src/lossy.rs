//! A loss-injecting transport wrapper for resilience testing.
//!
//! Wraps any [`Transport`] and drops outbound messages with a seeded,
//! per-message probability — deterministic given the seed, independent
//! of timing. Useful for exercising the protocol's retransmission and
//! membership machinery over otherwise reliable transports (e.g. the
//! in-process loopback).

use std::io;
use std::time::Duration;

use ar_core::{Message, ParticipantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::Transport;

/// Transport wrapper that randomly drops outbound messages.
#[derive(Debug)]
pub struct LossyTransport<T: Transport> {
    inner: T,
    rng: StdRng,
    drop_prob: f64,
    dropped: u64,
    sent: u64,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner`, dropping each outbound message (each copy, for
    /// multicasts counts once per send call) with probability
    /// `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside `[0, 1)` — a transport that
    /// drops everything can never make progress.
    pub fn new(inner: T, drop_prob: f64, seed: u64) -> LossyTransport<T> {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0, 1)"
        );
        LossyTransport {
            inner,
            rng: StdRng::seed_from_u64(seed),
            drop_prob,
            dropped: 0,
            sent: 0,
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages passed through so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn drop_now(&mut self) -> bool {
        if self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
            self.dropped += 1;
            true
        } else {
            self.sent += 1;
            false
        }
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn local_pid(&self) -> ParticipantId {
        self.inner.local_pid()
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        if self.drop_now() {
            return Ok(());
        }
        self.inner.send_to(to, msg)
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        if self.drop_now() {
            return Ok(());
        }
        self.inner.multicast(msg)
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        self.inner.recv(prefer_token, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNet;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    #[test]
    fn zero_loss_passes_everything() {
        let net = LoopbackNet::new();
        let mut a = LossyTransport::new(net.endpoint(pid(0)), 0.0, 1);
        let mut b = net.endpoint(pid(1));
        for _ in 0..50 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        assert_eq!(a.sent(), 50);
        assert_eq!(a.dropped(), 0);
        let mut got = 0;
        while b
            .recv(true, Duration::from_millis(5))
            .unwrap()
            .is_some()
        {
            got += 1;
        }
        assert_eq!(got, 50);
    }

    #[test]
    fn half_loss_drops_roughly_half() {
        let net = LoopbackNet::new();
        let mut a = LossyTransport::new(net.endpoint(pid(0)), 0.5, 42);
        for _ in 0..400 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        let dropped = a.dropped();
        assert!((120..280).contains(&dropped), "dropped {dropped} of 400");
        assert_eq!(a.sent() + a.dropped(), 400);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let net = LoopbackNet::new();
            let mut t = LossyTransport::new(net.endpoint(pid(0)), 0.3, seed);
            for _ in 0..100 {
                t.send_to(pid(1), &token_msg()).unwrap();
            }
            t.dropped()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn recv_is_unaffected() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = LossyTransport::new(net.endpoint(pid(1)), 0.99, 1);
        a.send_to(pid(1), &token_msg()).unwrap();
        assert!(b
            .recv(true, Duration::from_millis(100))
            .unwrap()
            .is_some());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_loss_rejected() {
        let net = LoopbackNet::new();
        let _ = LossyTransport::new(net.endpoint(pid(0)), 1.0, 1);
    }
}
