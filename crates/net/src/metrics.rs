//! Runtime instrumentation: the metric set exported by a live node.
//!
//! [`NetMetrics`] bundles the handles a [`Runtime`](crate::Runtime)
//! updates while it runs — token-rotation and token-hop latency
//! histograms, the local delivery-latency histogram, and queue/counter
//! gauges. Register one per node against a
//! [`MetricsRegistry`](ar_telemetry::MetricsRegistry) and pass it to
//! [`Runtime::set_metrics`](crate::Runtime::set_metrics); the registry
//! end renders Prometheus text or JSON (served by `ar-daemon`'s
//! `--metrics-addr` endpoint).

use ar_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Metric handles updated by an instrumented [`Runtime`](crate::Runtime).
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Full token rotation time as observed locally: nanoseconds
    /// between consecutive token receipts.
    pub token_rotation_ns: Histogram,
    /// Local token hop time: nanoseconds from receiving the token to
    /// finishing the resulting sends.
    pub token_hop_ns: Histogram,
    /// Submission-to-delivery latency for messages this node initiated,
    /// in nanoseconds.
    pub delivery_latency_ns: Histogram,
    /// Depth of the pending send queue after each step.
    pub queue_depth: Gauge,
    /// Tokens received.
    pub tokens_rx: Counter,
    /// Messages delivered to the application (all origins).
    pub deliveries: Counter,
    /// Inbound datagrams dropped because they failed to decode.
    pub wire_decode_drops: Counter,
    /// Token-loss timeout currently in force (ns); moves when the
    /// adaptive controller is enabled.
    pub adaptive_token_loss_ns: Gauge,
    /// Accelerated window currently in force (AIMD-degraded when the
    /// controller is enabled; 0 = original Ring behaviour).
    pub effective_accel_window: Gauge,
    /// Members currently quarantined by flap damping.
    pub quarantined_members: Gauge,
    /// Records appended to the durable log.
    pub log_appends: Counter,
    /// fsync(2) calls issued by the durable log.
    pub log_syncs: Counter,
    /// Safe deliveries currently held back awaiting local durability
    /// (only moves when the log gates Safe delivery).
    pub log_held_safe: Gauge,
    /// Records recovered from disk at the last log attach.
    pub log_recovered_records: Gauge,
}

impl NetMetrics {
    /// Registers the standard node metric set (names prefixed
    /// `ar_node_`) and returns the handles.
    pub fn register(reg: &MetricsRegistry) -> NetMetrics {
        NetMetrics::register_labeled(reg, "")
    }

    /// Registers the node metric set with every series carrying a
    /// label set (e.g. `shard="2"`), so several runtimes hosted by one
    /// process export side by side instead of silently sharing
    /// counters. An empty label set is the plain [`register`] shape.
    ///
    /// [`register`]: NetMetrics::register
    pub fn register_labeled(reg: &MetricsRegistry, labels: &str) -> NetMetrics {
        NetMetrics {
            token_rotation_ns: reg.histogram_labeled(
                "ar_node_token_rotation_ns",
                labels,
                "Time between consecutive token receipts (ns)",
            ),
            token_hop_ns: reg.histogram_labeled(
                "ar_node_token_hop_ns",
                labels,
                "Local token processing time, receipt to sends complete (ns)",
            ),
            delivery_latency_ns: reg.histogram_labeled(
                "ar_node_delivery_latency_ns",
                labels,
                "Submission-to-delivery latency for locally initiated messages (ns)",
            ),
            queue_depth: reg.gauge_labeled(
                "ar_node_queue_depth",
                labels,
                "Pending application messages awaiting ordering",
            ),
            tokens_rx: reg.counter_labeled("ar_node_tokens_rx_total", labels, "Tokens received"),
            deliveries: reg.counter_labeled(
                "ar_node_deliveries_total",
                labels,
                "Messages delivered",
            ),
            wire_decode_drops: reg.counter_labeled(
                "ar_node_wire_decode_drops_total",
                labels,
                "Inbound datagrams dropped (decode failure)",
            ),
            adaptive_token_loss_ns: reg.gauge_labeled(
                "ar_node_adaptive_token_loss_timeout_ns",
                labels,
                "Token-loss timeout currently in force (ns)",
            ),
            effective_accel_window: reg.gauge_labeled(
                "ar_node_effective_accelerated_window",
                labels,
                "Accelerated window currently in force (0 = original Ring)",
            ),
            quarantined_members: reg.gauge_labeled(
                "ar_node_quarantined_members",
                labels,
                "Members currently quarantined by flap damping",
            ),
            log_appends: reg.counter_labeled(
                "ar_node_log_appends_total",
                labels,
                "Records appended to the durable log",
            ),
            log_syncs: reg.counter_labeled(
                "ar_node_log_syncs_total",
                labels,
                "fsync calls issued by the durable log",
            ),
            log_held_safe: reg.gauge_labeled(
                "ar_node_log_held_safe",
                labels,
                "Safe deliveries held back awaiting local durability",
            ),
            log_recovered_records: reg.gauge_labeled(
                "ar_node_log_recovered_records",
                labels,
                "Records recovered from disk at the last log attach",
            ),
        }
    }

    /// The canonical label set for ring shard `k`: `shard="k"`.
    pub fn shard_labels(shard: usize) -> String {
        format!("shard=\"{shard}\"")
    }

    /// Unregistered handles (recordings are kept but not exported);
    /// useful in tests.
    pub fn detached() -> NetMetrics {
        NetMetrics {
            token_rotation_ns: Histogram::default(),
            token_hop_ns: Histogram::default(),
            delivery_latency_ns: Histogram::default(),
            queue_depth: Gauge::default(),
            tokens_rx: Counter::default(),
            deliveries: Counter::default(),
            wire_decode_drops: Counter::default(),
            adaptive_token_loss_ns: Gauge::default(),
            effective_accel_window: Gauge::default(),
            quarantined_members: Gauge::default(),
            log_appends: Counter::default(),
            log_syncs: Counter::default(),
            log_held_safe: Gauge::default(),
            log_recovered_records: Gauge::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_labeled_sets_are_independent() {
        let reg = MetricsRegistry::new();
        let s0 = NetMetrics::register_labeled(&reg, &NetMetrics::shard_labels(0));
        let s1 = NetMetrics::register_labeled(&reg, &NetMetrics::shard_labels(1));
        s0.tokens_rx.add(2);
        s1.tokens_rx.add(9);
        assert_eq!(s0.tokens_rx.get(), 2);
        assert_eq!(s1.tokens_rx.get(), 9);
        let text = reg.render_prometheus();
        assert!(
            text.contains("ar_node_tokens_rx_total{shard=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ar_node_tokens_rx_total{shard=\"1\"} 9"),
            "{text}"
        );
    }

    #[test]
    fn register_is_idempotent_per_registry() {
        let reg = MetricsRegistry::new();
        let a = NetMetrics::register(&reg);
        let b = NetMetrics::register(&reg);
        a.tokens_rx.inc();
        assert_eq!(b.tokens_rx.get(), 1, "handles share state");
        let text = reg.render_prometheus();
        assert!(text.contains("ar_node_tokens_rx_total 1"));
        assert!(text.contains("# TYPE ar_node_token_rotation_ns summary"));
    }
}
