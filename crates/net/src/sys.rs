//! Minimal, dependency-free Linux syscall FFI for the batched UDP
//! datapath: `ppoll(2)` readiness waits and `sendmmsg(2)` /
//! `recvmmsg(2)` datagram batching.
//!
//! The workspace is self-contained (no crates.io access), so instead of
//! pulling in `libc` we declare the four symbols and three structs the
//! datapath needs, with layouts matching the Linux x86-64/aarch64 glibc
//! and musl ABIs (`struct pollfd`, `struct iovec`, `struct msghdr`,
//! `struct mmsghdr`, `struct timespec`). Errno handling goes through
//! [`std::io::Error::last_os_error`], which reads the thread-local
//! errno the C library maintains.
//!
//! Everything here is `pub(crate)`: the only consumer is
//! [`crate::udp`], and the portable fallback path never touches this
//! module (it is compiled only on Linux — see `crate::lib`).

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// `poll(2)` "readable" event bit.
pub(crate) const POLLIN: i16 = 0x001;

/// `MSG_DONTWAIT`: per-call non-blocking receive.
pub(crate) const MSG_DONTWAIT: i32 = 0x40;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;

/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

/// `struct timespec` (64-bit time ABI).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

impl Timespec {
    fn from_duration(d: Duration) -> Timespec {
        Timespec {
            tv_sec: i64::try_from(d.as_secs()).unwrap_or(i64::MAX),
            tv_nsec: i64::from(d.subsec_nanos()),
        }
    }
}

/// `struct iovec`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct IoVec {
    pub base: *mut u8,
    pub len: usize,
}

/// `struct msghdr` (userspace layout: `size_t` iovlen/controllen).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct MsgHdr {
    pub name: *mut u8,
    pub namelen: u32,
    pub iov: *mut IoVec,
    pub iovlen: usize,
    pub control: *mut u8,
    pub controllen: usize,
    pub flags: i32,
}

impl MsgHdr {
    /// A zeroed header with no name, control data, or iovecs.
    pub(crate) fn zeroed() -> MsgHdr {
        MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: std::ptr::null_mut(),
            iovlen: 0,
            control: std::ptr::null_mut(),
            controllen: 0,
            flags: 0,
        }
    }
}

/// `struct mmsghdr`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct MMsgHdr {
    pub hdr: MsgHdr,
    /// Bytes transferred for this slot (set by the kernel).
    pub len: u32,
}

extern "C" {
    fn ppoll(fds: *mut PollFd, nfds: u64, timeout: *const Timespec, sigmask: *const u8) -> i32;
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn recvmmsg(
        fd: i32,
        msgvec: *mut MMsgHdr,
        vlen: u32,
        flags: i32,
        timeout: *mut Timespec,
    ) -> i32;
}

/// Largest serialized socket address we pass to the kernel
/// (`sockaddr_in6` is 28 bytes; `sockaddr_in` is 16).
pub(crate) const SOCKADDR_MAX: usize = 28;

/// A socket address serialized to the kernel's `sockaddr` layout.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawSockAddr {
    pub bytes: [u8; SOCKADDR_MAX],
    pub len: u32,
}

/// Serializes `addr` as a `sockaddr_in` / `sockaddr_in6`.
pub(crate) fn raw_sockaddr(addr: &SocketAddr) -> RawSockAddr {
    let mut bytes = [0u8; SOCKADDR_MAX];
    match addr {
        SocketAddr::V4(v4) => {
            bytes[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
            bytes[2..4].copy_from_slice(&v4.port().to_be_bytes());
            bytes[4..8].copy_from_slice(&v4.ip().octets());
            RawSockAddr { bytes, len: 16 }
        }
        SocketAddr::V6(v6) => {
            bytes[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
            bytes[2..4].copy_from_slice(&v6.port().to_be_bytes());
            bytes[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            bytes[8..24].copy_from_slice(&v6.ip().octets());
            bytes[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            RawSockAddr { bytes, len: 28 }
        }
    }
}

/// Waits until one of `fds` is readable or `timeout` elapses. Returns
/// `true` if any descriptor became ready, `false` on timeout. `EINTR`
/// is retried with the remaining time.
pub(crate) fn poll_readable(fds: &mut [PollFd], timeout: Duration) -> io::Result<bool> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        for fd in fds.iter_mut() {
            fd.events = POLLIN;
            fd.revents = 0;
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        let ts = Timespec::from_duration(remaining);
        let rc = unsafe { ppoll(fds.as_mut_ptr(), fds.len() as u64, &ts, std::ptr::null()) };
        match rc {
            0 => return Ok(false),
            n if n > 0 => return Ok(true),
            _ => {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    if remaining.is_zero() {
                        return Ok(false);
                    }
                    continue;
                }
                return Err(err);
            }
        }
    }
}

/// One `sendmmsg(2)` call: sends a prefix of `msgs`, returning how many
/// were sent. An error pertains to `msgs[0]` (nothing was sent).
///
/// # Errors
///
/// Propagates the kernel error (`EINTR` is retried internally).
pub(crate) fn sendmmsg_once(fd: i32, msgs: &mut [MMsgHdr]) -> io::Result<usize> {
    debug_assert!(!msgs.is_empty());
    loop {
        let rc = unsafe { sendmmsg(fd, msgs.as_mut_ptr(), msgs.len() as u32, 0) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// One non-blocking `recvmmsg(2)` call: fills a prefix of `msgs`
/// (lengths land in each slot's `len`), returning how many datagrams
/// arrived.
///
/// # Errors
///
/// Propagates the kernel error (`EINTR` is retried internally);
/// `WouldBlock` means the socket is drained.
pub(crate) fn recvmmsg_once(fd: i32, msgs: &mut [MMsgHdr]) -> io::Result<usize> {
    debug_assert!(!msgs.is_empty());
    loop {
        let rc = unsafe {
            recvmmsg(
                fd,
                msgs.as_mut_ptr(),
                msgs.len() as u32,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    #[test]
    fn raw_sockaddr_v4_layout() {
        let a: SocketAddr = "127.0.0.1:47123".parse().unwrap();
        let raw = raw_sockaddr(&a);
        assert_eq!(raw.len, 16);
        assert_eq!(&raw.bytes[0..2], &AF_INET.to_ne_bytes());
        assert_eq!(&raw.bytes[2..4], &47123u16.to_be_bytes());
        assert_eq!(&raw.bytes[4..8], &[127, 0, 0, 1]);
    }

    #[test]
    fn raw_sockaddr_v6_layout() {
        let a: SocketAddr = "[::1]:9".parse().unwrap();
        let raw = raw_sockaddr(&a);
        assert_eq!(raw.len, 28);
        assert_eq!(&raw.bytes[0..2], &AF_INET6.to_ne_bytes());
        assert_eq!(raw.bytes[23], 1, "::1 low byte");
    }

    #[test]
    fn poll_times_out_on_idle_socket() {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd {
            fd: sock.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let start = std::time::Instant::now();
        let ready = poll_readable(&mut fds, Duration::from_millis(20)).unwrap();
        assert!(!ready);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn poll_wakes_on_datagram() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(b"ping", rx.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd {
            fd: rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let ready = poll_readable(&mut fds, Duration::from_secs(2)).unwrap();
        assert!(ready, "datagram makes the socket readable");
    }

    #[test]
    fn sendmmsg_recvmmsg_roundtrip_batch() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_nonblocking(true).unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dst = raw_sockaddr(&rx.local_addr().unwrap());

        // Three datagrams in one syscall.
        let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4 + i as usize]).collect();
        let mut addrs = [dst; 3];
        let mut iovs: Vec<IoVec> = payloads
            .iter()
            .map(|p| IoVec {
                base: p.as_ptr() as *mut u8,
                len: p.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..3)
            .map(|i| {
                let mut h = MsgHdr::zeroed();
                h.name = addrs[i].bytes.as_mut_ptr();
                h.namelen = addrs[i].len;
                h.iov = &mut iovs[i];
                h.iovlen = 1;
                MMsgHdr { hdr: h, len: 0 }
            })
            .collect();
        let sent = sendmmsg_once(tx.as_raw_fd(), &mut hdrs).unwrap();
        assert_eq!(sent, 3);

        // Drain them in one syscall.
        std::thread::sleep(Duration::from_millis(20));
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 64]).collect();
        let mut riovs: Vec<IoVec> = bufs
            .iter_mut()
            .map(|b| IoVec {
                base: b.as_mut_ptr(),
                len: b.len(),
            })
            .collect();
        let mut rhdrs: Vec<MMsgHdr> = riovs
            .iter_mut()
            .map(|iov| {
                let mut h = MsgHdr::zeroed();
                h.iov = iov;
                h.iovlen = 1;
                MMsgHdr { hdr: h, len: 0 }
            })
            .collect();
        let got = recvmmsg_once(rx.as_raw_fd(), &mut rhdrs).unwrap();
        assert_eq!(got, 3);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(rhdrs[i].len as usize, p.len());
            assert_eq!(&bufs[i][..p.len()], &p[..]);
        }
        // Socket is now drained.
        let err = recvmmsg_once(rx.as_raw_fd(), &mut rhdrs).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
