//! In-process loopback transport: a hub of crossbeam channels.
//!
//! Useful for multi-threaded integration tests and examples that want a
//! real concurrent ring without touching the network stack. Each
//! endpoint owns two receivers (token channel, data channel), matching
//! the dual-socket design of the UDP transport.

use std::io;
use std::time::{Duration, Instant};

use ar_core::{Message, ParticipantId};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::transport::{is_token_channel, Transport};

struct Hub {
    /// Per-participant (token_tx, data_tx).
    peers: HashMap<ParticipantId, (Sender<Message>, Sender<Message>)>,
}

/// A shared in-process network that endpoints attach to.
///
/// ```
/// use ar_net::loopback::LoopbackNet;
/// use ar_core::ParticipantId;
///
/// let net = LoopbackNet::new();
/// let a = net.endpoint(ParticipantId::new(0));
/// let b = net.endpoint(ParticipantId::new(1));
/// # let _ = (a, b);
/// ```
#[derive(Debug, Clone)]
pub struct LoopbackNet {
    hub: Arc<Mutex<Hub>>,
}

impl Default for LoopbackNet {
    fn default() -> Self {
        LoopbackNet::new()
    }
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hub({} peers)", self.peers.len())
    }
}

impl LoopbackNet {
    /// Creates an empty network.
    pub fn new() -> LoopbackNet {
        LoopbackNet {
            hub: Arc::new(Mutex::new(Hub {
                peers: HashMap::new(),
            })),
        }
    }

    /// Attaches an endpoint for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already attached.
    pub fn endpoint(&self, pid: ParticipantId) -> LoopbackTransport {
        let (token_tx, token_rx) = unbounded();
        let (data_tx, data_rx) = unbounded();
        let mut hub = self.hub.lock();
        let prev = hub.peers.insert(pid, (token_tx, data_tx));
        assert!(prev.is_none(), "{pid} already attached");
        LoopbackTransport {
            pid,
            hub: Arc::clone(&self.hub),
            token_rx,
            data_rx,
        }
    }

    /// Detaches an endpoint (its queued messages are dropped once the
    /// transport is also dropped).
    pub fn detach(&self, pid: ParticipantId) {
        self.hub.lock().peers.remove(&pid);
    }

    /// Number of attached endpoints.
    pub fn len(&self) -> usize {
        self.hub.lock().peers.len()
    }

    /// True if no endpoints are attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One endpoint of a [`LoopbackNet`].
#[derive(Debug)]
pub struct LoopbackTransport {
    pid: ParticipantId,
    hub: Arc<Mutex<Hub>>,
    token_rx: Receiver<Message>,
    data_rx: Receiver<Message>,
}

impl LoopbackTransport {
    fn try_channel(rx: &Receiver<Message>) -> io::Result<Option<Message>> {
        match rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Ok(None),
        }
    }
}

impl Transport for LoopbackTransport {
    fn local_pid(&self) -> ParticipantId {
        self.pid
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        let hub = self.hub.lock();
        if let Some((token_tx, data_tx)) = hub.peers.get(&to) {
            let tx = if is_token_channel(msg) { token_tx } else { data_tx };
            let _ = tx.send(msg.clone()); // receiver gone = peer down; drop
        }
        Ok(())
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        let hub = self.hub.lock();
        for (&pid, (token_tx, data_tx)) in hub.peers.iter() {
            if pid == self.pid {
                continue;
            }
            let tx = if is_token_channel(msg) { token_tx } else { data_tx };
            let _ = tx.send(msg.clone());
        }
        Ok(())
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        let (first, second) = if prefer_token {
            (&self.token_rx, &self.data_rx)
        } else {
            (&self.data_rx, &self.token_rx)
        };
        if let Some(m) = Self::try_channel(first)? {
            return Ok(Some(m));
        }
        if let Some(m) = Self::try_channel(second)? {
            return Ok(Some(m));
        }
        // Nothing waiting: block on both up to the deadline, then apply
        // the preference once more.
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            crossbeam::channel::select! {
                recv(self.token_rx) -> m => {
                    if let Ok(m) = m { return Ok(Some(m)); }
                }
                recv(self.data_rx) -> m => {
                    if let Ok(m) = m { return Ok(Some(m)); }
                }
                default(remaining) => return Ok(None),
            }
        }
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        self.hub.lock().peers.remove(&self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    fn data_msg() -> Message {
        Message::Data(ar_core::DataMessage {
            ring_id: RingId::default(),
            seq: Seq::new(1),
            pid: pid(0),
            round: ar_core::Round::new(1),
            service: ar_core::ServiceType::Agreed,
            after_token: false,
            payload: bytes::Bytes::from_static(b"x"),
        })
    }

    #[test]
    fn unicast_reaches_only_target() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        let mut c = net.endpoint(pid(2));
        a.send_to(pid(1), &token_msg()).unwrap();
        assert!(b
            .recv(true, Duration::from_millis(10))
            .unwrap()
            .is_some());
        assert!(c.recv(true, Duration::from_millis(1)).unwrap().is_none());
    }

    #[test]
    fn multicast_reaches_everyone_but_sender() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        let mut c = net.endpoint(pid(2));
        a.multicast(&data_msg()).unwrap();
        assert!(b.recv(false, Duration::from_millis(10)).unwrap().is_some());
        assert!(c.recv(false, Duration::from_millis(10)).unwrap().is_some());
        assert!(a.recv(false, Duration::from_millis(1)).unwrap().is_none());
    }

    #[test]
    fn priority_prefers_requested_channel() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &token_msg()).unwrap();
        // Data arrived first, but token preference pulls the token.
        let m = b.recv(true, Duration::from_millis(10)).unwrap().unwrap();
        assert!(matches!(m, Message::Token(_)));
        let m = b.recv(true, Duration::from_millis(10)).unwrap().unwrap();
        assert!(matches!(m, Message::Data(_)));
    }

    #[test]
    fn recv_times_out_when_idle() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let start = Instant::now();
        assert!(a.recv(true, Duration::from_millis(20)).unwrap().is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_silently() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        a.send_to(pid(9), &token_msg()).unwrap();
    }

    #[test]
    fn drop_detaches_endpoint() {
        let net = LoopbackNet::new();
        {
            let _a = net.endpoint(pid(0));
            assert_eq!(net.len(), 1);
        }
        assert_eq!(net.len(), 0);
        // Re-attach after drop is allowed.
        let _a2 = net.endpoint(pid(0));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_attach_panics() {
        let net = LoopbackNet::new();
        let _a = net.endpoint(pid(0));
        let _b = net.endpoint(pid(0));
    }
}
