//! In-process loopback transport: a hub of per-endpoint mailboxes.
//!
//! Useful for multi-threaded integration tests and examples that want a
//! real concurrent ring without touching the network stack. Each
//! endpoint owns a mailbox with two queues (token, data), matching the
//! dual-socket design of the UDP transport; a single condition variable
//! covers both so `recv` can block on either without a `select!`.

use std::collections::VecDeque;
use std::io;
use std::time::{Duration, Instant};

use ar_core::{Message, ParticipantId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

use crate::transport::{is_token_channel, Transport};

#[derive(Default)]
struct MailboxState {
    token: VecDeque<Message>,
    data: VecDeque<Message>,
}

/// One endpoint's inbound queues plus the condvar that signals arrival
/// on either of them.
struct Mailbox {
    state: Mutex<MailboxState>,
    available: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            state: Mutex::new(MailboxState::default()),
            available: Condvar::new(),
        }
    }

    fn push(&self, msg: Message) {
        let mut st = self.state.lock();
        if is_token_channel(&msg) {
            st.token.push_back(msg);
        } else {
            st.data.push_back(msg);
        }
        drop(st);
        self.available.notify_one();
    }

    fn take(st: &mut MailboxState, prefer_token: bool) -> Option<Message> {
        if prefer_token {
            st.token.pop_front().or_else(|| st.data.pop_front())
        } else {
            st.data.pop_front().or_else(|| st.token.pop_front())
        }
    }

    fn pop(&self, prefer_token: bool, timeout: Duration) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(m) = Self::take(&mut st, prefer_token) {
                return Some(m);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            self.available.wait_for(&mut st, remaining);
        }
    }

    /// Waits up to `timeout` for the first message, then drains up to
    /// `max` already-queued messages without waiting further (preferred
    /// channel first). Returns the number appended to `out`.
    fn pop_batch(
        &self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.token.is_empty() && st.data.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return 0;
            }
            self.available.wait_for(&mut st, remaining);
        }
        let mut n = 0;
        while n < max {
            match Self::take(&mut st, prefer_token) {
                Some(m) => {
                    out.push(m);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "Mailbox({} token, {} data)",
            st.token.len(),
            st.data.len()
        )
    }
}

struct Hub {
    peers: HashMap<ParticipantId, Arc<Mailbox>>,
}

/// A shared in-process network that endpoints attach to.
///
/// ```
/// use ar_net::loopback::LoopbackNet;
/// use ar_core::ParticipantId;
///
/// let net = LoopbackNet::new();
/// let a = net.endpoint(ParticipantId::new(0));
/// let b = net.endpoint(ParticipantId::new(1));
/// # let _ = (a, b);
/// ```
#[derive(Debug, Clone)]
pub struct LoopbackNet {
    hub: Arc<Mutex<Hub>>,
}

impl Default for LoopbackNet {
    fn default() -> Self {
        LoopbackNet::new()
    }
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hub({} peers)", self.peers.len())
    }
}

impl LoopbackNet {
    /// Creates an empty network.
    pub fn new() -> LoopbackNet {
        LoopbackNet {
            hub: Arc::new(Mutex::new(Hub {
                peers: HashMap::new(),
            })),
        }
    }

    /// Attaches an endpoint for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already attached.
    pub fn endpoint(&self, pid: ParticipantId) -> LoopbackTransport {
        let mailbox = Arc::new(Mailbox::new());
        let mut hub = self.hub.lock();
        let prev = hub.peers.insert(pid, Arc::clone(&mailbox));
        assert!(prev.is_none(), "{pid} already attached");
        LoopbackTransport {
            pid,
            hub: Arc::clone(&self.hub),
            mailbox,
        }
    }

    /// Detaches an endpoint (its queued messages are dropped once the
    /// transport is also dropped).
    pub fn detach(&self, pid: ParticipantId) {
        self.hub.lock().peers.remove(&pid);
    }

    /// Number of attached endpoints.
    pub fn len(&self) -> usize {
        self.hub.lock().peers.len()
    }

    /// True if no endpoints are attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One endpoint of a [`LoopbackNet`].
#[derive(Debug)]
pub struct LoopbackTransport {
    pid: ParticipantId,
    hub: Arc<Mutex<Hub>>,
    mailbox: Arc<Mailbox>,
}

impl Transport for LoopbackTransport {
    fn local_pid(&self) -> ParticipantId {
        self.pid
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        let target = self.hub.lock().peers.get(&to).cloned();
        if let Some(mailbox) = target {
            mailbox.push(msg.clone());
        }
        Ok(())
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        let targets: Vec<Arc<Mailbox>> = {
            let hub = self.hub.lock();
            hub.peers
                .iter()
                .filter(|(&pid, _)| pid != self.pid)
                .map(|(_, m)| Arc::clone(m))
                .collect()
        };
        for mailbox in targets {
            mailbox.push(msg.clone());
        }
        Ok(())
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        Ok(self.mailbox.pop(prefer_token, timeout))
    }

    fn recv_batch(
        &mut self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> io::Result<usize> {
        Ok(self.mailbox.pop_batch(prefer_token, timeout, max, out))
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        self.hub.lock().peers.remove(&self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_core::{RingId, Seq, Token};

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    fn data_msg() -> Message {
        Message::Data(ar_core::DataMessage {
            ring_id: RingId::default(),
            seq: Seq::new(1),
            pid: pid(0),
            round: ar_core::Round::new(1),
            service: ar_core::ServiceType::Agreed,
            after_token: false,
            payload: bytes::Bytes::from_static(b"x"),
        })
    }

    #[test]
    fn unicast_reaches_only_target() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        let mut c = net.endpoint(pid(2));
        a.send_to(pid(1), &token_msg()).unwrap();
        assert!(b.recv(true, Duration::from_millis(10)).unwrap().is_some());
        assert!(c.recv(true, Duration::from_millis(1)).unwrap().is_none());
    }

    #[test]
    fn multicast_reaches_everyone_but_sender() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        let mut c = net.endpoint(pid(2));
        a.multicast(&data_msg()).unwrap();
        assert!(b.recv(false, Duration::from_millis(10)).unwrap().is_some());
        assert!(c.recv(false, Duration::from_millis(10)).unwrap().is_some());
        assert!(a.recv(false, Duration::from_millis(1)).unwrap().is_none());
    }

    #[test]
    fn priority_prefers_requested_channel() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &token_msg()).unwrap();
        // Data arrived first, but token preference pulls the token.
        let m = b.recv(true, Duration::from_millis(10)).unwrap().unwrap();
        assert!(matches!(m, Message::Token(_)));
        let m = b.recv(true, Duration::from_millis(10)).unwrap().unwrap();
        assert!(matches!(m, Message::Data(_)));
    }

    #[test]
    fn recv_times_out_when_idle() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let start = Instant::now();
        assert!(a.recv(true, Duration::from_millis(20)).unwrap().is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn send_to_unknown_peer_is_dropped_silently() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        a.send_to(pid(9), &token_msg()).unwrap();
    }

    #[test]
    fn drop_detaches_endpoint() {
        let net = LoopbackNet::new();
        {
            let _a = net.endpoint(pid(0));
            assert_eq!(net.len(), 1);
        }
        assert_eq!(net.len(), 0);
        // Re-attach after drop is allowed.
        let _a2 = net.endpoint(pid(0));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_attach_panics() {
        let net = LoopbackNet::new();
        let _a = net.endpoint(pid(0));
        let _b = net.endpoint(pid(0));
    }

    #[test]
    fn recv_batch_drains_ready_preferred_first() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &token_msg()).unwrap();
        let mut out = Vec::new();
        let n = b
            .recv_batch(true, Duration::from_millis(100), 10, &mut out)
            .unwrap();
        assert_eq!(n, 3);
        assert!(matches!(out[0], Message::Token(_)));
        // max caps the drain; the remainder stays queued.
        a.send_to(pid(1), &data_msg()).unwrap();
        a.send_to(pid(1), &data_msg()).unwrap();
        let mut out = Vec::new();
        let n = b
            .recv_batch(false, Duration::from_millis(100), 1, &mut out)
            .unwrap();
        assert_eq!(n, 1);
        assert!(b.recv(false, Duration::from_millis(100)).unwrap().is_some());
    }

    #[test]
    fn cross_thread_wakeup() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = net.endpoint(pid(1));
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            a.send_to(pid(1), &token_msg()).unwrap();
        });
        let m = b.recv(true, Duration::from_secs(5)).unwrap();
        assert!(m.is_some(), "blocked recv woke on arrival");
        t.join().unwrap();
    }
}
