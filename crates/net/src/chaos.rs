//! A chaos-injecting transport wrapper: seeded, composable loss,
//! duplication, reordering, bounded delay, crashes, and one-way
//! partitions, applied to both the inbound and outbound paths.
//!
//! [`ChaosTransport`] generalizes [`crate::lossy::LossyTransport`]: it
//! wraps any [`Transport`] and perturbs traffic according to a
//! [`ChaosConfig`]. Static perturbations (loss, duplication,
//! reordering, delay) are rolled from a seeded RNG so a run is
//! reproducible given the seed; dynamic faults (crash, one-way blocks)
//! are flipped at runtime through the shared [`ChaosControl`] handle,
//! which is how the nemesis runner injects a [`ar_core::fault`] plan
//! into a live ring. Per-message-kind counters distinguish token
//! traffic from data and membership traffic, so a test can assert e.g.
//! "the partition dropped tokens" rather than staring at a single
//! aggregate number.
//!
//! ## Partition fidelity
//!
//! Unicast sends know their destination, so outbound one-way blocks
//! apply exactly. The [`Transport::multicast`] entry point is
//! destination-blind; when the peer set is declared via
//! [`ChaosTransport::with_peers`], an active outbound block decomposes
//! multicasts into per-peer unicasts so partitions filter them too.
//! Inbound blocks filter by the sender carried in the message (data and
//! join messages); tokens and commit tokens carry no sender, so token
//! partitions must be expressed as outbound blocks on the sending side
//! — which is what [`crate::nemesis`] does when translating a
//! [`ar_core::fault::Connectivity`] matrix.

use std::collections::HashSet;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ar_core::{Message, ParticipantId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::Transport;

/// The four wire-message kinds chaos statistics are broken down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Regular ordering tokens.
    Token,
    /// Multicast data messages.
    Data,
    /// Membership join messages.
    Join,
    /// Membership commit tokens.
    Commit,
}

impl MsgKind {
    /// Classifies a wire message.
    pub fn of(msg: &Message) -> MsgKind {
        match msg {
            Message::Token(_) => MsgKind::Token,
            Message::Data(_) => MsgKind::Data,
            Message::Join(_) => MsgKind::Join,
            Message::Commit(_) => MsgKind::Commit,
        }
    }

    fn index(self) -> usize {
        match self {
            MsgKind::Token => 0,
            MsgKind::Data => 1,
            MsgKind::Join => 2,
            MsgKind::Commit => 3,
        }
    }
}

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Outbound messages passed through to the inner transport.
    pub sent: u64,
    /// Outbound messages dropped (loss roll, crash, or block).
    pub dropped: u64,
    /// Extra outbound copies injected by duplication.
    pub duplicated: u64,
    /// Outbound messages held back by delay or reordering.
    pub delayed: u64,
    /// Inbound messages surfaced to the caller.
    pub received: u64,
    /// Inbound messages dropped (loss roll, crash, or block).
    pub recv_dropped: u64,
}

/// Per-kind chaos counters, indexable by [`MsgKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    per_kind: [KindStats; 4],
}

impl ChaosStats {
    /// Counters for one message kind.
    pub fn kind(&self, kind: MsgKind) -> &KindStats {
        &self.per_kind[kind.index()]
    }

    fn kind_mut(&mut self, kind: MsgKind) -> &mut KindStats {
        &mut self.per_kind[kind.index()]
    }

    /// Total outbound messages dropped across kinds.
    pub fn total_dropped(&self) -> u64 {
        self.per_kind.iter().map(|k| k.dropped).sum()
    }

    /// Total outbound messages passed through across kinds.
    pub fn total_sent(&self) -> u64 {
        self.per_kind.iter().map(|k| k.sent).sum()
    }

    /// Total inbound messages dropped across kinds.
    pub fn total_recv_dropped(&self) -> u64 {
        self.per_kind.iter().map(|k| k.recv_dropped).sum()
    }

    /// Total inbound messages surfaced across kinds.
    pub fn total_received(&self) -> u64 {
        self.per_kind.iter().map(|k| k.received).sum()
    }
}

/// Static perturbation probabilities and the RNG seed.
///
/// All probabilities are per message copy. The default injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability of dropping a copy, applied on both paths.
    pub drop_prob: f64,
    /// Probability of sending an outbound copy twice.
    pub dup_prob: f64,
    /// Probability of holding an outbound copy until the next send
    /// passes it (an adjacent-pair swap).
    pub reorder_prob: f64,
    /// Probability of delaying an outbound copy.
    pub delay_prob: f64,
    /// Upper bound on an injected delay (also bounds how long a
    /// reordered message can be held).
    pub max_delay: Duration,
    /// RNG seed; equal seeds give equal perturbation sequences.
    pub seed: u64,
}

impl ChaosConfig {
    /// A configuration that injects nothing (seeded for later rolls).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::from_millis(2),
            seed,
        }
    }

    /// Sets the per-copy drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        self.drop_prob = p;
        self
    }

    /// Sets the duplication probability.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "dup probability must be in [0, 1)");
        self.dup_prob = p;
        self
    }

    /// Sets the reordering probability.
    #[must_use]
    pub fn with_reordering(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "reorder probability must be in [0, 1)"
        );
        self.reorder_prob = p;
        self
    }

    /// Sets the delay probability and the delay bound.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max: Duration) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "delay probability must be in [0, 1)"
        );
        self.delay_prob = p;
        self.max_delay = max;
        self
    }
}

#[derive(Debug, Default)]
struct ControlState {
    crashed: bool,
    blocked_to: HashSet<ParticipantId>,
    blocked_from: HashSet<ParticipantId>,
    stats: ChaosStats,
}

/// Shared handle for flipping dynamic faults on a [`ChaosTransport`]
/// and reading its counters, safe to use from another thread while the
/// transport is in a running daemon.
#[derive(Debug, Clone, Default)]
pub struct ChaosControl {
    state: Arc<Mutex<ControlState>>,
}

impl ChaosControl {
    /// A control with no faults active.
    pub fn new() -> ChaosControl {
        ChaosControl::default()
    }

    /// Blackholes the endpoint: everything in and out is dropped.
    pub fn crash(&self) {
        self.state.lock().crashed = true;
    }

    /// Clears a [`crash`](ChaosControl::crash): traffic flows again.
    pub fn restart(&self) {
        self.state.lock().crashed = false;
    }

    /// True while the endpoint is blackholed.
    pub fn is_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Blocks outbound traffic towards `pid` (one-way).
    pub fn block_to(&self, pid: ParticipantId) {
        self.state.lock().blocked_to.insert(pid);
    }

    /// Blocks inbound traffic from `pid` (one-way; sender-carrying
    /// messages only — see the module docs).
    pub fn block_from(&self, pid: ParticipantId) {
        self.state.lock().blocked_from.insert(pid);
    }

    /// Replaces the outbound block set wholesale.
    pub fn set_blocked_to(&self, pids: impl IntoIterator<Item = ParticipantId>) {
        let mut st = self.state.lock();
        st.blocked_to = pids.into_iter().collect();
    }

    /// Clears every block in both directions.
    pub fn heal(&self) {
        let mut st = self.state.lock();
        st.blocked_to.clear();
        st.blocked_from.clear();
    }

    /// A snapshot of the per-kind counters.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().stats
    }
}

/// Where an outbound message was headed, for the delay/reorder queues.
#[derive(Debug, Clone, Copy)]
enum Target {
    Unicast(ParticipantId),
    Multicast,
}

/// Transport wrapper that perturbs traffic according to a
/// [`ChaosConfig`] and a [`ChaosControl`].
#[derive(Debug)]
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cfg: ChaosConfig,
    rng: StdRng,
    control: ChaosControl,
    /// Delayed outbound messages, flushed once their release time
    /// passes.
    delayed: Vec<(Instant, Target, Message)>,
    /// A message held back to swap with the next send.
    reorder_slot: Option<(Instant, Target, Message)>,
    peers: Option<Vec<ParticipantId>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the given chaos configuration.
    pub fn new(inner: T, cfg: ChaosConfig) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            control: ChaosControl::new(),
            delayed: Vec::new(),
            reorder_slot: None,
            peers: None,
        }
    }

    /// Declares the full peer set, enabling partition-aware multicast
    /// (decomposed into unicasts while an outbound block is active).
    #[must_use]
    pub fn with_peers(mut self, peers: Vec<ParticipantId>) -> Self {
        self.peers = Some(peers);
        self
    }

    /// The shared control handle (cloneable, thread-safe).
    pub fn control(&self) -> ChaosControl {
        self.control.clone()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// A snapshot of the per-kind counters.
    pub fn stats(&self) -> ChaosStats {
        self.control.stats()
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Sends straight to the inner transport, bypassing further rolls.
    fn send_raw(&mut self, target: Target, msg: &Message) -> io::Result<()> {
        match target {
            Target::Unicast(to) => self.inner.send_to(to, msg),
            Target::Multicast => self.inner.multicast(msg),
        }
    }

    /// Releases every queued message whose time has come. Reordered
    /// messages past the delay bound are released too, so nothing is
    /// held forever.
    fn flush_due(&mut self) -> io::Result<()> {
        let now = Instant::now();
        let mut due = Vec::new();
        self.delayed.retain(|(release, target, msg)| {
            if *release <= now {
                due.push((*target, msg.clone()));
                false
            } else {
                true
            }
        });
        if let Some((held_at, target, msg)) = self.reorder_slot.take() {
            if held_at + self.cfg.max_delay <= now {
                due.push((target, msg));
            } else {
                self.reorder_slot = Some((held_at, target, msg));
            }
        }
        for (target, msg) in due {
            self.send_raw(target, &msg)?;
        }
        Ok(())
    }

    fn send_chaotic(&mut self, target: Target, msg: &Message) -> io::Result<()> {
        self.flush_due()?;
        let kind = MsgKind::of(msg);

        // Multicast under an active outbound block: decompose into
        // per-peer unicasts when the peer set is known.
        if matches!(target, Target::Multicast) {
            let has_blocks = !self.control.state.lock().blocked_to.is_empty();
            if let (true, Some(peers)) = (has_blocks, self.peers.clone()) {
                let me = self.inner.local_pid();
                for peer in peers {
                    if peer != me {
                        // Blocked peers are dropped (and counted) by the
                        // per-copy path's blocked_to check.
                        self.send_chaotic_copy(Target::Unicast(peer), msg, kind)?;
                    }
                }
                return Ok(());
            }
        }
        self.send_chaotic_copy(target, msg, kind)
    }

    fn send_chaotic_copy(
        &mut self,
        target: Target,
        msg: &Message,
        kind: MsgKind,
    ) -> io::Result<()> {
        {
            let mut st = self.control.state.lock();
            let blocked =
                st.crashed || matches!(target, Target::Unicast(to) if st.blocked_to.contains(&to));
            if blocked {
                st.stats.kind_mut(kind).dropped += 1;
                return Ok(());
            }
        }
        if self.roll(self.cfg.drop_prob) {
            self.control.state.lock().stats.kind_mut(kind).dropped += 1;
            return Ok(());
        }
        let duplicate = self.roll(self.cfg.dup_prob);
        let delay = self.roll(self.cfg.delay_prob);
        let reorder = !delay && self.roll(self.cfg.reorder_prob);

        if delay {
            let nanos = self
                .rng
                .gen_range(0..self.cfg.max_delay.as_nanos().max(1) as u64);
            let release = Instant::now() + Duration::from_nanos(nanos);
            self.delayed.push((release, target, msg.clone()));
            let mut st = self.control.state.lock();
            let k = st.stats.kind_mut(kind);
            k.delayed += 1;
            k.sent += 1;
        } else if reorder && self.reorder_slot.is_none() {
            self.reorder_slot = Some((Instant::now(), target, msg.clone()));
            let mut st = self.control.state.lock();
            let k = st.stats.kind_mut(kind);
            k.delayed += 1;
            k.sent += 1;
        } else {
            self.send_raw(target, msg)?;
            // The held-back message goes out *after* this one: the
            // adjacent pair is swapped.
            if let Some((_, held_target, held)) = self.reorder_slot.take() {
                self.send_raw(held_target, &held)?;
            }
            self.control.state.lock().stats.kind_mut(kind).sent += 1;
        }
        if duplicate {
            self.send_raw(target, msg)?;
            self.control.state.lock().stats.kind_mut(kind).duplicated += 1;
        }
        Ok(())
    }

    /// True if an inbound message should be dropped.
    fn drop_inbound(&mut self, msg: &Message) -> bool {
        let sender = match msg {
            Message::Data(d) => Some(d.pid),
            Message::Join(j) => Some(j.sender),
            Message::Token(_) | Message::Commit(_) => None,
        };
        {
            let st = self.control.state.lock();
            if st.crashed {
                return true;
            }
            if let Some(from) = sender {
                if st.blocked_from.contains(&from) {
                    return true;
                }
            }
        }
        self.roll(self.cfg.drop_prob)
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn local_pid(&self) -> ParticipantId {
        self.inner.local_pid()
    }

    fn send_to(&mut self, to: ParticipantId, msg: &Message) -> io::Result<()> {
        self.send_chaotic(Target::Unicast(to), msg)
    }

    fn multicast(&mut self, msg: &Message) -> io::Result<()> {
        self.send_chaotic(Target::Multicast, msg)
    }

    fn recv(&mut self, prefer_token: bool, timeout: Duration) -> io::Result<Option<Message>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.flush_due()?;
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match self.inner.recv(prefer_token, remaining)? {
                Some(m) => m,
                None => return Ok(None),
            };
            let kind = MsgKind::of(&msg);
            if self.drop_inbound(&msg) {
                self.control.state.lock().stats.kind_mut(kind).recv_dropped += 1;
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                continue;
            }
            self.control.state.lock().stats.kind_mut(kind).received += 1;
            return Ok(Some(msg));
        }
    }

    fn recv_batch(
        &mut self,
        prefer_token: bool,
        timeout: Duration,
        max: usize,
        out: &mut Vec<Message>,
    ) -> io::Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.flush_due()?;
            let remaining = deadline.saturating_duration_since(Instant::now());
            let mut batch = Vec::new();
            if self
                .inner
                .recv_batch(prefer_token, remaining, max, &mut batch)?
                == 0
            {
                return Ok(0);
            }
            // Inbound chaos applies per message: drops thin the batch
            // (and are counted) without discarding what survived.
            let mut appended = 0;
            for msg in batch {
                let kind = MsgKind::of(&msg);
                if self.drop_inbound(&msg) {
                    self.control.state.lock().stats.kind_mut(kind).recv_dropped += 1;
                } else {
                    self.control.state.lock().stats.kind_mut(kind).received += 1;
                    out.push(msg);
                    appended += 1;
                }
            }
            if appended > 0 || Instant::now() >= deadline {
                return Ok(appended);
            }
        }
    }

    fn begin_batch(&mut self) {
        self.inner.begin_batch();
    }

    fn end_batch(&mut self) -> io::Result<()> {
        self.inner.end_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNet;
    use ar_core::{DataMessage, RingId, Round, Seq, ServiceType, Token};
    use bytes::Bytes;

    fn pid(v: u16) -> ParticipantId {
        ParticipantId::new(v)
    }

    fn token_msg() -> Message {
        Message::Token(Token::initial(RingId::default(), Seq::ZERO))
    }

    fn data_msg(from: u16) -> Message {
        Message::Data(DataMessage {
            ring_id: RingId::default(),
            seq: Seq::new(1),
            pid: pid(from),
            round: Round::new(1),
            service: ServiceType::Agreed,
            after_token: false,
            payload: Bytes::from_static(b"x"),
        })
    }

    fn drain(t: &mut impl Transport) -> usize {
        let mut got = 0;
        while t.recv(false, Duration::from_millis(2)).unwrap().is_some() {
            got += 1;
        }
        got
    }

    #[test]
    fn quiet_config_is_transparent() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(net.endpoint(pid(0)), ChaosConfig::quiet(1));
        let mut b = net.endpoint(pid(1));
        for _ in 0..20 {
            a.send_to(pid(1), &token_msg()).unwrap();
        }
        let mut got = 0;
        while b.recv(true, Duration::from_millis(2)).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 20);
        assert_eq!(a.stats().kind(MsgKind::Token).sent, 20);
        assert_eq!(a.stats().total_dropped(), 0);
    }

    #[test]
    fn loss_applies_outbound_and_counts_per_kind() {
        let net = LoopbackNet::new();
        let mut a =
            ChaosTransport::new(net.endpoint(pid(0)), ChaosConfig::quiet(42).with_loss(0.5));
        for _ in 0..200 {
            a.send_to(pid(1), &token_msg()).unwrap();
            a.multicast(&data_msg(0)).unwrap();
        }
        let stats = a.stats();
        let tok = stats.kind(MsgKind::Token);
        let dat = stats.kind(MsgKind::Data);
        assert_eq!(tok.sent + tok.dropped, 200);
        assert_eq!(dat.sent + dat.dropped, 200);
        assert!(
            (60..140).contains(&tok.dropped),
            "token drops {}",
            tok.dropped
        );
        assert!(
            (60..140).contains(&dat.dropped),
            "data drops {}",
            dat.dropped
        );
        assert_eq!(stats.kind(MsgKind::Join).sent, 0);
    }

    #[test]
    fn loss_applies_inbound_too() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = ChaosTransport::new(net.endpoint(pid(1)), ChaosConfig::quiet(7).with_loss(0.5));
        for _ in 0..200 {
            a.send_to(pid(1), &data_msg(0)).unwrap();
        }
        let got = drain(&mut b);
        let stats = b.stats();
        assert_eq!(stats.kind(MsgKind::Data).received, got as u64);
        assert!(stats.kind(MsgKind::Data).recv_dropped > 0, "{stats:?}");
        assert_eq!(
            stats.kind(MsgKind::Data).received + stats.kind(MsgKind::Data).recv_dropped,
            200
        );
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(
            net.endpoint(pid(0)),
            ChaosConfig::quiet(3).with_duplication(0.5),
        );
        let mut b = net.endpoint(pid(1));
        for _ in 0..100 {
            a.send_to(pid(1), &data_msg(0)).unwrap();
        }
        let got = drain(&mut b);
        let dup = a.stats().kind(MsgKind::Data).duplicated;
        assert!(dup > 10, "duplicated {dup}");
        assert_eq!(got as u64, 100 + dup);
    }

    #[test]
    fn reordering_swaps_adjacent_pairs_without_losing() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(
            net.endpoint(pid(0)),
            ChaosConfig::quiet(5).with_reordering(0.4),
        );
        let mut b = net.endpoint(pid(1));
        let n = 100;
        for i in 0..n {
            let mut m = data_msg(0);
            if let Message::Data(d) = &mut m {
                d.seq = Seq::new(i + 1);
            }
            a.send_to(pid(1), &m).unwrap();
        }
        // Force out anything still held.
        std::thread::sleep(a.cfg.max_delay);
        a.flush_due().unwrap();
        let mut seqs = Vec::new();
        while let Some(Message::Data(d)) = b.recv(false, Duration::from_millis(2)).unwrap() {
            seqs.push(d.seq.as_u64());
        }
        assert_eq!(seqs.len(), n as usize, "nothing lost");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "some pair was reordered");
        assert_eq!(sorted, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn delay_holds_then_releases_everything() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(
            net.endpoint(pid(0)),
            ChaosConfig::quiet(9).with_delay(0.8, Duration::from_millis(5)),
        );
        let mut b = net.endpoint(pid(1));
        for _ in 0..50 {
            a.send_to(pid(1), &data_msg(0)).unwrap();
        }
        assert!(a.stats().kind(MsgKind::Data).delayed > 10);
        std::thread::sleep(Duration::from_millis(6));
        a.flush_due().unwrap();
        assert_eq!(drain(&mut b), 50, "bounded delay: all messages arrive");
    }

    #[test]
    fn crash_blackholes_both_directions() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(net.endpoint(pid(0)), ChaosConfig::quiet(1));
        let mut b = net.endpoint(pid(1));
        let control = a.control();
        control.crash();
        a.send_to(pid(1), &token_msg()).unwrap();
        assert_eq!(drain(&mut b), 0, "outbound blackholed");
        b.send_to(pid(0), &data_msg(1)).unwrap();
        assert!(a.recv(false, Duration::from_millis(5)).unwrap().is_none());
        assert_eq!(a.stats().kind(MsgKind::Data).recv_dropped, 1);
        control.restart();
        a.send_to(pid(1), &token_msg()).unwrap();
        assert_eq!(drain(&mut b), 1, "restart clears the blackhole");
    }

    #[test]
    fn one_way_partition_blocks_only_one_direction() {
        let net = LoopbackNet::new();
        let mut a = ChaosTransport::new(net.endpoint(pid(0)), ChaosConfig::quiet(1));
        let mut b = net.endpoint(pid(1));
        a.control().block_to(pid(1));
        a.send_to(pid(1), &token_msg()).unwrap();
        assert_eq!(drain(&mut b), 0, "a→b blocked");
        b.send_to(pid(0), &data_msg(1)).unwrap();
        assert!(
            a.recv(false, Duration::from_millis(20)).unwrap().is_some(),
            "b→a still open"
        );
        a.control().heal();
        a.send_to(pid(1), &token_msg()).unwrap();
        assert_eq!(drain(&mut b), 1);
    }

    #[test]
    fn partition_filters_multicast_with_known_peers() {
        let net = LoopbackNet::new();
        let peers: Vec<ParticipantId> = (0..3).map(pid).collect();
        let mut a =
            ChaosTransport::new(net.endpoint(pid(0)), ChaosConfig::quiet(1)).with_peers(peers);
        let mut b = net.endpoint(pid(1));
        let mut c = net.endpoint(pid(2));
        a.control().block_to(pid(2));
        a.multicast(&data_msg(0)).unwrap();
        assert_eq!(drain(&mut b), 1, "unblocked peer receives");
        assert_eq!(drain(&mut c), 0, "blocked peer filtered out");
        assert_eq!(a.stats().kind(MsgKind::Data).dropped, 1);
    }

    #[test]
    fn inbound_block_filters_by_sender() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = ChaosTransport::new(net.endpoint(pid(1)), ChaosConfig::quiet(1));
        b.control().block_from(pid(0));
        a.send_to(pid(1), &data_msg(0)).unwrap();
        assert!(b.recv(false, Duration::from_millis(5)).unwrap().is_none());
        assert_eq!(b.stats().kind(MsgKind::Data).recv_dropped, 1);
    }

    #[test]
    fn recv_batch_filters_inbound_per_message() {
        let net = LoopbackNet::new();
        let mut a = net.endpoint(pid(0));
        let mut b = ChaosTransport::new(net.endpoint(pid(1)), ChaosConfig::quiet(7).with_loss(0.5));
        for _ in 0..200 {
            a.send_to(pid(1), &data_msg(0)).unwrap();
        }
        let mut got = Vec::new();
        loop {
            let mut batch = Vec::new();
            if b.recv_batch(false, Duration::from_millis(5), 16, &mut batch)
                .unwrap()
                == 0
            {
                break;
            }
            got.extend(batch);
        }
        let stats = b.stats().kind(MsgKind::Data).to_owned();
        assert_eq!(stats.received, got.len() as u64);
        assert!(stats.recv_dropped > 0, "{stats:?}");
        assert_eq!(stats.received + stats.recv_dropped, 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let net = LoopbackNet::new();
            let mut t = ChaosTransport::new(
                net.endpoint(pid(0)),
                ChaosConfig::quiet(seed)
                    .with_loss(0.3)
                    .with_duplication(0.2),
            );
            for _ in 0..100 {
                t.send_to(pid(1), &token_msg()).unwrap();
            }
            let s = t.stats();
            (
                s.kind(MsgKind::Token).dropped,
                s.kind(MsgKind::Token).duplicated,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
