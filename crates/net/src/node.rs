//! A threaded wrapper around the runtime: one OS thread per
//! participant, with channel-based submit and delivery, for
//! applications and tests that want a concurrent ring.

use std::io;
use std::thread::JoinHandle;
use std::time::Duration;

use ar_core::{Participant, ServiceType};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use crate::runtime::{AppEvent, Runtime};
use crate::transport::Transport;

/// Capacity of the submit channel (backpressure boundary between the
/// application thread and the protocol thread).
const SUBMIT_CAPACITY: usize = 1024;

/// Handle to a participant running on its own thread.
///
/// Dropping the handle shuts the node down and joins the thread.
#[derive(Debug)]
pub struct NodeHandle {
    submit_tx: Sender<(Bytes, ServiceType)>,
    events_rx: Receiver<AppEvent>,
    shutdown_tx: Sender<()>,
    join: Option<JoinHandle<io::Result<()>>>,
}

/// Spawns a node thread driving `part` over `transport`.
pub fn spawn<T: Transport + Send + 'static>(part: Participant, transport: T) -> NodeHandle {
    let (submit_tx, submit_rx) = bounded::<(Bytes, ServiceType)>(SUBMIT_CAPACITY);
    let (events_tx, events_rx) = unbounded::<AppEvent>();
    let (shutdown_tx, shutdown_rx) = bounded::<()>(1);
    let join = std::thread::spawn(move || -> io::Result<()> {
        let mut rt = Runtime::new(part, transport);
        for ev in rt.start()? {
            let _ = events_tx.send(ev);
        }
        loop {
            if shutdown_rx.try_recv().is_ok() {
                return Ok(());
            }
            // Drain submissions (stop early on protocol backpressure).
            while let Ok((payload, service)) = submit_rx.try_recv() {
                if rt.submit(payload, service).is_err() {
                    break;
                }
            }
            for ev in rt.step()? {
                let _ = events_tx.send(ev);
            }
        }
    });
    NodeHandle {
        submit_tx,
        events_rx,
        shutdown_tx,
        join: Some(join),
    }
}

impl NodeHandle {
    /// Submits a message for totally ordered multicast.
    ///
    /// # Errors
    ///
    /// Returns the payload back if the node has shut down or the
    /// submit channel is full (backpressure).
    pub fn submit(&self, payload: Bytes, service: ServiceType) -> Result<(), Bytes> {
        match self.submit_tx.try_send((payload, service)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full((p, _)) | TrySendError::Disconnected((p, _))) => Err(p),
        }
    }

    /// Receives the next application event, waiting up to `timeout`.
    pub fn recv_event(&self, timeout: Duration) -> Option<AppEvent> {
        self.events_rx.recv_timeout(timeout).ok()
    }

    /// Drains any already-queued events without waiting.
    pub fn drain_events(&self) -> Vec<AppEvent> {
        self.events_rx.try_iter().collect()
    }

    /// Stops the node thread and returns its result.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the node loop hit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_now()
    }

    fn shutdown_now(&mut self) -> io::Result<()> {
        let _ = self.shutdown_tx.send(());
        match self.join.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("node thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNet;
    use ar_core::{ParticipantId, ProtocolConfig, RingId};
    use std::time::Instant;

    #[test]
    fn threaded_ring_delivers_everywhere() {
        let net = LoopbackNet::new();
        let members: Vec<ParticipantId> = (0..4).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let nodes: Vec<NodeHandle> = members
            .iter()
            .map(|&p| {
                let part =
                    Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                        .unwrap();
                spawn(part, net.endpoint(p))
            })
            .collect();
        for (i, n) in nodes.iter().enumerate() {
            n.submit(Bytes::from(format!("msg-{i}")), ServiceType::Agreed)
                .unwrap();
        }
        let mut logs: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let deadline = Instant::now() + Duration::from_secs(10);
        while logs.iter().any(|l| l.len() < 4) && Instant::now() < deadline {
            for (i, n) in nodes.iter().enumerate() {
                while let Some(ev) = n.recv_event(Duration::from_millis(10)) {
                    if let AppEvent::Delivered(d) = ev {
                        logs[i].push(d.seq.as_u64());
                    }
                }
            }
        }
        for log in &logs {
            assert_eq!(log.len(), 4, "{logs:?}");
            assert_eq!(log, &logs[0], "same total order everywhere");
        }
        for n in nodes {
            n.shutdown().unwrap();
        }
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let net = LoopbackNet::new();
        let p = ParticipantId::new(0);
        let part =
            Participant::new(p, ProtocolConfig::accelerated(), RingId::new(p, 1), vec![p]).unwrap();
        let node = spawn(part, net.endpoint(p));
        drop(node); // must not hang or panic
    }
}
