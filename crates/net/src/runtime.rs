//! The single-threaded event loop that drives a [`Participant`] over a
//! [`Transport`] with real (wall-clock) timers — the daemon main loop
//! of the paper's implementations.

use std::collections::VecDeque;
use std::io;
use std::time::{Duration, Instant};

use ar_core::{
    Action, AdaptiveTimeouts, ConfigChange, ConfigChangeKind, Delivery, Message, Participant,
    PriorityMode, RingId, Seq, ServiceType, TimerKind,
};
use ar_log::{DeliveryRecord, LogRecord, Lsn, SegmentedLog};
use bytes::Bytes;

use crate::metrics::NetMetrics;
use crate::transport::Transport;

/// Events surfaced to the embedding application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// An ordered message was delivered.
    Delivered(Delivery),
    /// A configuration change (transitional or regular) was delivered.
    ConfigChanged(ConfigChange),
}

/// Upper bound on one receive wait, so timers stay responsive even when
/// the computed deadline is far away.
const MAX_POLL: Duration = Duration::from_millis(5);

/// Upper bound on how many ready messages one [`Runtime::step`] drains
/// from the transport. Bounds the time between timer checks while still
/// letting a batching transport hand over a whole burst per syscall
/// sweep.
const RECV_BATCH_MAX: usize = 32;

/// Cap on the retransmission backoff exponent (2^6 = 64x the base
/// interval; the token-loss timeout clamps the result anyway).
const MAX_RETRANSMIT_SHIFT: u32 = 6;

use ar_core::backoff::ExpShift;

/// Surfaced deliveries between persisted cursor records. A cursor is a
/// redelivery watermark, not a correctness requirement (replaying a
/// suffix twice is idempotent for the daemon), so it is amortized.
const CURSOR_EVERY: u64 = 128;

/// Durable-log state attached to a runtime: the log itself plus the
/// Safe-delivery gate.
#[derive(Debug)]
struct DurableState {
    log: SegmentedLog,
    /// When true, Safe deliveries are withheld from the application
    /// until their log record is fsynced — "Safe" then means replicated
    /// **and** locally durable. Deliveries ordered behind a withheld
    /// Safe message queue behind it so the surfaced order stays the
    /// total order.
    gate_safe: bool,
    /// Deliveries appended but not yet surfaced, in order.
    held: VecDeque<(Lsn, Delivery)>,
    /// Surfaced watermark not yet persisted as a cursor record.
    cursor: Option<(RingId, Seq)>,
    /// Deliveries surfaced since the last cursor record.
    since_cursor: u64,
    /// Sync count already exported to the metrics counter.
    syncs_exported: u64,
}

/// A protocol participant bound to a transport and a clock.
pub struct Runtime<T: Transport> {
    part: Participant,
    transport: T,
    timers: [Option<Instant>; 5],
    events: Vec<AppEvent>,
    /// Consecutive token-retransmission firings without hearing a
    /// token. Each firing doubles the retransmit interval (capped by
    /// the token-loss timeout) so a long outage does not flood a
    /// recovering peer with duplicate tokens; any received token or
    /// commit resets the backoff (shared [`ExpShift`] machinery).
    retransmit_backoff: ExpShift,
    /// Metric handles, when instrumented via
    /// [`set_metrics`](Runtime::set_metrics).
    metrics: Option<NetMetrics>,
    /// Zero point for the nanosecond timestamps injected into the
    /// participant's observer.
    epoch: Instant,
    /// When the previous token arrived (rotation measurement).
    last_token_at: Option<Instant>,
    /// Rotation-informed failure-detection controller; when enabled,
    /// each observed rotation feeds it and changed timeout policies are
    /// installed into the participant.
    adaptive: Option<AdaptiveTimeouts>,
    /// Submission instants of locally initiated messages, oldest first;
    /// matched FIFO against local deliveries of our own messages
    /// (FIFO is sound because a participant's own messages deliver in
    /// submission order).
    submit_times: VecDeque<Instant>,
    /// Reusable scratch for the per-step receive batch.
    inbound: Vec<Message>,
    /// Durable log, when attached via
    /// [`attach_durable_log`](Runtime::attach_durable_log).
    durable: Option<DurableState>,
    /// Shared copy of the participant's observer, for runtime-level
    /// events (durable-log recovery) that the core does not see.
    observer: Option<std::sync::Arc<dyn ar_core::Observer>>,
}

impl<T: Transport + std::fmt::Debug> std::fmt::Debug for Runtime<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("part", &self.part)
            .field("transport", &self.transport)
            .field("durable", &self.durable)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

fn kind_idx(kind: TimerKind) -> usize {
    match kind {
        TimerKind::TokenLoss => 0,
        TimerKind::TokenRetransmit => 1,
        TimerKind::Join => 2,
        TimerKind::ConsensusTimeout => 3,
        TimerKind::CommitTimeout => 4,
    }
}

const KINDS: [TimerKind; 5] = [
    TimerKind::TokenLoss,
    TimerKind::TokenRetransmit,
    TimerKind::Join,
    TimerKind::ConsensusTimeout,
    TimerKind::CommitTimeout,
];

impl<T: Transport> Runtime<T> {
    /// Wraps a participant and transport; call
    /// [`start`](Runtime::start) before stepping.
    pub fn new(part: Participant, transport: T) -> Runtime<T> {
        Runtime {
            part,
            transport,
            timers: [None; 5],
            events: Vec::new(),
            retransmit_backoff: ExpShift::new(MAX_RETRANSMIT_SHIFT),
            metrics: None,
            epoch: Instant::now(),
            last_token_at: None,
            adaptive: None,
            submit_times: VecDeque::new(),
            inbound: Vec::with_capacity(RECV_BATCH_MAX),
            durable: None,
            observer: None,
        }
    }

    /// Attaches a durable log: every delivery is appended at ordering
    /// time, and — when `gate_safe` is set — Safe deliveries are
    /// surfaced only once their record is fsynced, so a kill -9 right
    /// after the application observes a Safe message cannot lose it.
    pub fn attach_durable_log(&mut self, log: SegmentedLog, gate_safe: bool) {
        if let Some(m) = &self.metrics {
            m.log_recovered_records
                .set(i64::try_from(log.stats().recovered_records).unwrap_or(i64::MAX));
        }
        if let Some(obs) = &self.observer {
            let stats = log.stats();
            obs.on_event(
                self.elapsed_nanos(),
                &ar_core::ProtoEvent::LogRecovered {
                    records: stats.recovered_records,
                    torn_bytes: stats.torn_bytes_truncated,
                },
            );
        }
        self.durable = Some(DurableState {
            log,
            gate_safe,
            held: VecDeque::new(),
            cursor: None,
            since_cursor: 0,
            syncs_exported: 0,
        });
    }

    /// The attached durable log, if any.
    pub fn durable_log(&self) -> Option<&SegmentedLog> {
        self.durable.as_ref().map(|d| &d.log)
    }

    /// Forces the durable log's buffered tail to disk: syncs, surfaces
    /// any Safe deliveries that were awaiting durability, persists the
    /// delivery cursor, and syncs again. Returns the surfaced events
    /// (plus anything else pending). The daemon's graceful-shutdown
    /// drain calls this so a clean exit never leaves a buffered tail
    /// behind.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or syncing the log.
    pub fn flush_durable_log(&mut self) -> io::Result<Vec<AppEvent>> {
        if self.durable.is_none() {
            return Ok(Vec::new());
        }
        if let Some(d) = self.durable.as_mut() {
            d.log.sync()?;
        }
        self.release_held();
        if let Some(d) = self.durable.as_mut() {
            if let Some((ring, seq)) = d.cursor.take() {
                d.log.append(&LogRecord::Cursor { ring, seq })?;
                d.since_cursor = 0;
            }
            d.log.sync()?;
        }
        self.export_log_metrics();
        Ok(std::mem::take(&mut self.events))
    }

    /// Appends `d` to the durable log if one is attached. Returns true
    /// if the delivery must be withheld (gated on durability, or queued
    /// behind an already-withheld one).
    fn durable_append(&mut self, d: &Delivery) -> io::Result<bool> {
        let Some(dur) = self.durable.as_mut() else {
            return Ok(false);
        };
        let lsn = dur.log.append(&LogRecord::Delivery(DeliveryRecord {
            ring: d.ring_id,
            seq: d.seq,
            pid: d.pid,
            service: d.service,
            payload: d.payload.clone(),
        }))?;
        if let Some(m) = &self.metrics {
            m.log_appends.inc();
        }
        let must_hold = dur.gate_safe
            && (!dur.held.is_empty()
                || (d.service == ServiceType::Safe && lsn > dur.log.durable_lsn()));
        if must_hold {
            dur.held.push_back((lsn, d.clone()));
            if let Some(m) = &self.metrics {
                m.log_held_safe
                    .set(i64::try_from(dur.held.len()).unwrap_or(i64::MAX));
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Surfaces every held delivery whose gate has cleared: Safe
    /// messages whose record is durable, and anything queued behind a
    /// Safe message that just cleared.
    fn release_held(&mut self) {
        let Some(dur) = self.durable.as_mut() else {
            return;
        };
        if dur.held.is_empty() {
            return;
        }
        let durable = dur.log.durable_lsn();
        let mut released = Vec::new();
        while let Some((lsn, d)) = dur.held.front() {
            if d.service == ServiceType::Safe && *lsn > durable {
                break;
            }
            let (_, d) = dur.held.pop_front().expect("front exists");
            released.push(d);
        }
        if let Some(m) = &self.metrics {
            m.log_held_safe
                .set(i64::try_from(dur.held.len()).unwrap_or(i64::MAX));
        }
        for d in released {
            self.surface_delivery(d);
        }
    }

    /// Hands one delivery to the application: metric accounting, cursor
    /// bookkeeping, event push.
    fn surface_delivery(&mut self, d: Delivery) {
        if let Some(m) = &self.metrics {
            m.deliveries.inc();
            if d.pid == self.part.pid() {
                if let Some(submitted) = self.submit_times.pop_front() {
                    m.delivery_latency_ns
                        .record(u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
            }
        }
        if let Some(dur) = self.durable.as_mut() {
            dur.cursor = Some((d.ring_id, d.seq));
            dur.since_cursor += 1;
        }
        self.events.push(AppEvent::Delivered(d));
    }

    /// Mirrors the log's monotone sync count into the metrics counter.
    fn export_log_metrics(&mut self) {
        if let (Some(m), Some(dur)) = (&self.metrics, &mut self.durable) {
            let syncs = dur.log.stats().syncs;
            m.log_syncs.add(syncs.saturating_sub(dur.syncs_exported));
            dur.syncs_exported = syncs;
        }
    }

    /// Attaches metric handles; the runtime records token rotation and
    /// hop times, local delivery latency, and queue depth from here on.
    pub fn set_metrics(&mut self, metrics: NetMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached metric handles, when instrumented.
    pub fn metrics(&self) -> Option<&NetMetrics> {
        self.metrics.as_ref()
    }

    /// Enables rotation-informed failure detection: every observed token
    /// rotation feeds `ctl`, and whenever its derived timeout policy
    /// changes it is installed into the participant (counted and
    /// observable via `ProtoEvent::TimeoutsAdapted`).
    pub fn enable_adaptive_timeouts(&mut self, ctl: AdaptiveTimeouts) {
        self.adaptive = Some(ctl);
    }

    /// The adaptive controller, when enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveTimeouts> {
        self.adaptive.as_ref()
    }

    /// Attaches a protocol-event observer (e.g. an
    /// [`ar_telemetry::FlightRecorder`]) to the wrapped participant.
    /// The runtime injects its monotonic clock (nanoseconds since
    /// creation) before every participant call.
    pub fn set_observer(&mut self, obs: std::sync::Arc<dyn ar_core::Observer>) {
        self.observer = Some(obs.clone());
        self.part.set_observer(obs);
    }

    /// Nanoseconds since this runtime was created; the timestamp domain
    /// used for the participant's observer events.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Injects the current wall-clock offset into the participant's
    /// observer (no-op when no observer is attached).
    fn sync_observer_clock(&mut self) {
        if self.part.has_observer() {
            let now = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.part.observe_now(now);
        }
    }

    /// The wrapped participant (for inspection).
    pub fn participant(&self) -> &Participant {
        &self.part
    }

    /// Depth of the protocol send queue: messages submitted for
    /// ordering that have not yet been multicast. The client service
    /// tier reads this (via the daemon's shared pressure gauge) to
    /// throttle publish-credit grants before the queue — and the
    /// daemon's memory — can grow without bound.
    pub fn send_queue_depth(&self) -> usize {
        self.part.pending_len()
    }

    /// The transport (for inspection).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Begins operation (the ring representative injects the first
    /// token).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if sending fails.
    pub fn start(&mut self) -> io::Result<Vec<AppEvent>> {
        self.sync_observer_clock();
        let actions = self.part.start();
        self.execute(actions)?;
        Ok(std::mem::take(&mut self.events))
    }

    /// Submits an application message for ordering.
    ///
    /// # Errors
    ///
    /// Returns the queue-full error on backpressure.
    pub fn submit(
        &mut self,
        payload: Bytes,
        service: ServiceType,
    ) -> Result<(), ar_core::QueueFull> {
        self.sync_observer_clock();
        self.part.submit(payload, service)?;
        if self.metrics.is_some() {
            self.submit_times.push_back(Instant::now());
        }
        Ok(())
    }

    /// Runs one iteration: waits (briefly) for a message, handles it
    /// and any expired timers, and returns application events.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the transport.
    pub fn step(&mut self) -> io::Result<Vec<AppEvent>> {
        self.step_with_wait(MAX_POLL)
    }

    /// The earliest pending timer deadline, if any. A driver hosting
    /// several runtimes on one poll loop uses this to budget each
    /// instance's [`step_with_wait`] so no ring's timer fires late.
    ///
    /// [`step_with_wait`]: Runtime::step_with_wait
    pub fn next_timer_deadline(&self) -> Option<Instant> {
        self.timers.iter().flatten().min().copied()
    }

    /// [`step`](Runtime::step) with an explicit cap on the transport
    /// wait. This is the factoring that lets one thread drive N
    /// runtime instances round-robin: give each instance a slice of
    /// the poll budget (e.g. `MAX_POLL / n`, or `Duration::ZERO` for
    /// every instance but the one with the nearest timer deadline) and
    /// no ring stalls behind another ring's quiet socket.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the transport.
    pub fn step_with_wait(&mut self, max_wait: Duration) -> io::Result<Vec<AppEvent>> {
        let now = Instant::now();
        let next_deadline = self.timers.iter().flatten().min().copied();
        let wait = match next_deadline {
            Some(d) if d <= now => Duration::ZERO,
            Some(d) => (d - now).min(max_wait),
            None => max_wait,
        };
        let prefer_token = self.part.priority_mode() == PriorityMode::TokenHigh;
        // Drain everything the transport already has ready (one batched
        // sweep on batching transports) and process it front-to-back;
        // the transport appends preferred-channel messages first, so
        // the priority-method semantics (§III-C) are preserved.
        let mut batch = std::mem::take(&mut self.inbound);
        batch.clear();
        let drained = self
            .transport
            .recv_batch(prefer_token, wait, RECV_BATCH_MAX, &mut batch);
        let mut result = drained.map(|_| ());
        if result.is_ok() {
            for msg in batch.drain(..) {
                if let Err(e) = self.handle_incoming(msg) {
                    result = Err(e);
                    break;
                }
            }
        }
        batch.clear();
        self.inbound = batch;
        result?;
        // Fire expired timers.
        let now = Instant::now();
        for kind in KINDS {
            let idx = kind_idx(kind);
            if matches!(self.timers[idx], Some(d) if d <= now) {
                self.timers[idx] = None;
                if kind == TimerKind::TokenRetransmit {
                    self.retransmit_backoff.step();
                }
                self.sync_observer_clock();
                let actions = self.part.handle_timer(kind);
                self.execute(actions)?;
            }
        }
        // Durable-log housekeeping: interval-policy sync, releasing
        // Safe deliveries whose records became durable (any policy may
        // have synced during this step's appends), and the amortized
        // delivery-cursor record.
        if self.durable.is_some() {
            let now = self.elapsed_nanos();
            if let Some(dur) = self.durable.as_mut() {
                dur.log.maybe_sync(now)?;
                // A withheld Safe delivery bounds the gate's latency at
                // one step: sync now instead of waiting out a lazy
                // background policy (one fsync covers the whole burst
                // this step ordered).
                if !dur.held.is_empty() {
                    dur.log.sync()?;
                }
            }
            self.release_held();
            if let Some(dur) = self.durable.as_mut() {
                if dur.since_cursor >= CURSOR_EVERY {
                    if let Some((ring, seq)) = dur.cursor.take() {
                        dur.log.append(&LogRecord::Cursor { ring, seq })?;
                    }
                    dur.since_cursor = 0;
                }
            }
            self.export_log_metrics();
        }
        if let Some(m) = &self.metrics {
            m.queue_depth
                .set(i64::try_from(self.part.pending_len()).unwrap_or(i64::MAX));
            m.adaptive_token_loss_ns
                .set(i64::try_from(self.part.timeouts().token_loss).unwrap_or(i64::MAX));
            m.effective_accel_window
                .set(i64::from(self.part.effective_accelerated_window()));
            m.quarantined_members
                .set(i64::try_from(self.part.quarantined_count()).unwrap_or(i64::MAX));
        }
        Ok(std::mem::take(&mut self.events))
    }

    /// Handles one received message: backoff reset, per-token rotation
    /// and hop metrics, protocol handling, action execution.
    fn handle_incoming(&mut self, msg: Message) -> io::Result<()> {
        if matches!(msg, Message::Token(_) | Message::Commit(_)) {
            self.retransmit_backoff.reset();
        }
        let is_token = matches!(msg, Message::Token(_));
        let hop_start = if is_token && (self.metrics.is_some() || self.adaptive.is_some()) {
            let now = Instant::now();
            let rotation = self
                .last_token_at
                .map(|prev| u64::try_from((now - prev).as_nanos()).unwrap_or(u64::MAX));
            if let Some(m) = &self.metrics {
                if let Some(rot) = rotation {
                    m.token_rotation_ns.record(rot);
                }
                m.tokens_rx.inc();
            }
            if let (Some(ctl), Some(rot)) = (self.adaptive.as_mut(), rotation) {
                if ctl.record_rotation(rot) {
                    // An invalid derived policy cannot happen (the
                    // controller clamps and orders its outputs), but a
                    // rejected install must not kill the event loop.
                    let _ = self.part.adapt_timeouts(ctl.current());
                }
            }
            self.last_token_at = Some(now);
            Some(now)
        } else {
            None
        };
        self.sync_observer_clock();
        let actions = self.part.handle_message(msg);
        self.execute(actions)?;
        if let (Some(start), Some(m)) = (hop_start, &self.metrics) {
            m.token_hop_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Ok(())
    }

    fn execute(&mut self, actions: Vec<Action>) -> io::Result<()> {
        // One action list is one burst (typically: a round's multicasts
        // followed by the token hand-off). A batching transport defers
        // the sends and flushes them as O(1) syscalls at `end_batch`;
        // every send is still attempted even if an early one fails.
        self.transport.begin_batch();
        let mut first_err: Option<io::Error> = None;
        for action in actions {
            let sent = match action {
                Action::Multicast(m) => self.transport.multicast(&Message::Data(m)),
                Action::SendToken { to, token } => {
                    self.transport.send_to(to, &Message::Token(token))
                }
                Action::MulticastJoin(j) => self.transport.multicast(&Message::Join(j)),
                Action::SendCommit { to, token } => {
                    self.transport.send_to(to, &Message::Commit(token))
                }
                Action::Deliver(d) => match self.durable_append(&d) {
                    Ok(true) => Ok(()), // withheld until its record is durable
                    Ok(false) => {
                        self.surface_delivery(d);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                Action::DeliverConfigChange(c) => {
                    // A membership change may drop locally submitted
                    // messages that never got ordered; their queued
                    // submission instants would otherwise mismatch
                    // against *later* deliveries and permanently skew
                    // every subsequent latency sample.
                    self.submit_times.clear();
                    // EVS confines messages to the configuration they
                    // were ordered in: anything still gated on
                    // durability must surface *before* the view change,
                    // so force the log down and release the queue.
                    let mut log_result = Ok(());
                    if let Some(dur) = self.durable.as_mut() {
                        if !dur.held.is_empty() {
                            log_result = dur.log.sync();
                        }
                    }
                    if log_result.is_ok() {
                        self.release_held();
                        if let Some(dur) = self.durable.as_mut() {
                            if c.kind == ConfigChangeKind::Regular {
                                log_result = dur
                                    .log
                                    .append(&LogRecord::Ring {
                                        ring: c.ring_id,
                                        members: c.members.clone(),
                                    })
                                    .map(|_| ());
                            }
                        }
                    }
                    self.events.push(AppEvent::ConfigChanged(c));
                    log_result
                }
                Action::SetTimer(kind) => {
                    let dur = self.timer_duration(kind);
                    self.timers[kind_idx(kind)] = Some(Instant::now() + dur);
                    Ok(())
                }
                Action::CancelTimer(kind) => {
                    self.timers[kind_idx(kind)] = None;
                    Ok(())
                }
            };
            if let Err(e) = sent {
                first_err.get_or_insert(e);
            }
        }
        let flushed = self.transport.end_batch();
        match first_err {
            Some(e) => Err(e),
            None => flushed,
        }
    }

    fn timer_duration(&self, kind: TimerKind) -> Duration {
        let t = self.part.timeouts();
        Duration::from_nanos(match kind {
            TimerKind::TokenLoss => t.token_loss,
            TimerKind::TokenRetransmit => self
                .retransmit_backoff
                .scale(t.token_retransmit, t.token_loss),
            TimerKind::Join => t.join,
            TimerKind::ConsensusTimeout => t.consensus,
            TimerKind::CommitTimeout => t.commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNet;
    use crate::metrics::NetMetrics;
    use ar_core::{ParticipantId, ProtocolConfig, RingId};

    fn pids(n: u16) -> Vec<ParticipantId> {
        (0..n).map(ParticipantId::new).collect()
    }

    fn build_ring(n: u16) -> Vec<Runtime<crate::loopback::LoopbackTransport>> {
        let net = LoopbackNet::new();
        let members = pids(n);
        let ring_id = RingId::new(members[0], 1);
        members
            .iter()
            .map(|&p| {
                let part =
                    Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                        .unwrap();
                Runtime::new(part, net.endpoint(p))
            })
            .collect()
    }

    #[test]
    fn three_node_ring_delivers_in_total_order_single_thread() {
        let mut ring = build_ring(3);
        ring[1]
            .submit(Bytes::from_static(b"one"), ServiceType::Agreed)
            .unwrap();
        ring[2]
            .submit(Bytes::from_static(b"two"), ServiceType::Safe)
            .unwrap();
        for rt in ring.iter_mut() {
            rt.start().unwrap();
        }
        let mut logs: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 3];
        let deadline = Instant::now() + Duration::from_secs(5);
        while logs.iter().any(|l| l.len() < 2) && Instant::now() < deadline {
            for (i, rt) in ring.iter_mut().enumerate() {
                for ev in rt.step().unwrap() {
                    if let AppEvent::Delivered(d) = ev {
                        logs[i].push((d.seq.as_u64(), d.payload));
                    }
                }
            }
        }
        assert_eq!(logs[0].len(), 2, "{logs:?}");
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
    }

    #[test]
    fn instrumented_ring_populates_metrics_and_observer() {
        use ar_telemetry::{FlightRecorder, MetricsRegistry};

        let reg = MetricsRegistry::new();
        let flight = FlightRecorder::shared(256);
        let mut ring = build_ring(3);
        ring[0].set_metrics(NetMetrics::register(&reg));
        ring[0].part.set_observer(flight.clone());
        ring[0]
            .submit(Bytes::from_static(b"mine"), ServiceType::Agreed)
            .unwrap();
        for rt in ring.iter_mut() {
            rt.start().unwrap();
        }
        // Run until node 0 has received the token over the wire at
        // least twice (one full rotation measurement) and delivered its
        // own message.
        let m = NetMetrics::register(&reg);
        let deadline = Instant::now() + Duration::from_secs(5);
        while (m.tokens_rx.get() < 2 || ring[0].participant().stats().messages_delivered == 0)
            && Instant::now() < deadline
        {
            for rt in ring.iter_mut() {
                rt.step().unwrap();
            }
        }
        assert!(m.tokens_rx.get() >= 2, "tokens counted");
        assert!(m.deliveries.get() > 0, "deliveries counted");
        assert!(
            m.delivery_latency_ns.count() > 0,
            "local submit matched to delivery"
        );
        assert!(m.token_rotation_ns.count() > 0, "rotation recorded");
        assert!(m.token_hop_ns.count() > 0, "hop time recorded");
        assert!(flight.total() > 0, "observer events recorded");
        // The participant's own stats invariant holds under the real loop.
        assert!(ring[0].participant().stats().send_split_consistent());
    }

    /// Two independent rings make progress when a single thread
    /// interleaves all their runtimes through `step_with_wait`, each
    /// instance getting a slice of the poll budget — the factoring the
    /// sharded daemon relies on to host N rings in one process.
    #[test]
    fn two_rings_interleave_on_one_poll_loop() {
        let mut rings = [build_ring(2), build_ring(2)];
        for (r, ring) in rings.iter_mut().enumerate() {
            // Submit from the non-representative member: the
            // representative's own pre-start submission surfaces its
            // delivery in start() events, which this loop discards.
            ring[1]
                .submit(Bytes::from(format!("ring-{r}")), ServiceType::Agreed)
                .unwrap();
            for rt in ring.iter_mut() {
                rt.start().unwrap();
            }
        }
        let slice = MAX_POLL / 4;
        let mut delivered = [Vec::new(), Vec::new()];
        let deadline = Instant::now() + Duration::from_secs(5);
        while delivered.iter().any(|log| log.len() < 2) && Instant::now() < deadline {
            for (r, ring) in rings.iter_mut().enumerate() {
                for rt in ring.iter_mut() {
                    for ev in rt.step_with_wait(slice).unwrap() {
                        if let AppEvent::Delivered(d) = ev {
                            delivered[r].push(d.payload.clone());
                        }
                    }
                }
            }
        }
        // Each ring delivered its own message to both members, and the
        // rings stayed isolated (no cross-ring payloads).
        for (r, log) in delivered.iter().enumerate() {
            let want = Bytes::from(format!("ring-{r}"));
            assert_eq!(log.len(), 2, "ring {r}: {log:?}");
            assert!(log.iter().all(|p| *p == want), "ring {r}: {log:?}");
        }
    }

    #[test]
    fn retransmit_interval_backs_off_and_caps_at_token_loss() {
        let mut ring = build_ring(2);
        let rt = &mut ring[0];
        let t = rt.part.timeouts();
        let base = Duration::from_nanos(t.token_retransmit);
        let cap = Duration::from_nanos(t.token_loss);
        assert_eq!(rt.timer_duration(TimerKind::TokenRetransmit), base);
        rt.retransmit_backoff.step();
        assert_eq!(
            rt.timer_duration(TimerKind::TokenRetransmit),
            (base * 2).min(cap)
        );
        for _ in 0..MAX_RETRANSMIT_SHIFT {
            rt.retransmit_backoff.step();
        }
        let backed_off = rt.timer_duration(TimerKind::TokenRetransmit);
        assert!(backed_off <= cap, "{backed_off:?} > {cap:?}");
        assert!(backed_off >= base * 2);
        // Other timers are unaffected by the backoff state.
        assert_eq!(
            rt.timer_duration(TimerKind::TokenLoss),
            Duration::from_nanos(t.token_loss)
        );
    }

    /// Regression: a config change may drop locally submitted messages
    /// without delivering them; stale entries left in the latency FIFO
    /// would then pair with *later* deliveries and inflate every
    /// subsequent latency sample. The FIFO must be cleared when the
    /// change is delivered.
    #[test]
    fn config_change_clears_latency_fifo() {
        let mut ring = build_ring(2);
        let rt = &mut ring[0];
        rt.set_metrics(NetMetrics::detached());
        rt.submit(Bytes::from_static(b"doomed"), ServiceType::Agreed)
            .unwrap();
        assert_eq!(rt.submit_times.len(), 1);
        let change = ar_core::ConfigChange {
            kind: ar_core::ConfigChangeKind::Regular,
            ring_id: RingId::new(ParticipantId::new(0), 2),
            members: pids(2),
        };
        rt.execute(vec![Action::DeliverConfigChange(change)])
            .unwrap();
        assert!(
            rt.submit_times.is_empty(),
            "stale submission instants cleared on membership change"
        );
    }

    /// One `step` drains a whole ready burst from the transport rather
    /// than one message per iteration.
    #[test]
    fn step_drains_ready_burst_in_one_call() {
        let net = LoopbackNet::new();
        let members = pids(2);
        let ring_id = RingId::new(members[0], 1);
        let part = Participant::new(
            members[1],
            ProtocolConfig::accelerated(),
            ring_id,
            members.clone(),
        )
        .unwrap();
        let mut rt = Runtime::new(part, net.endpoint(members[1]));
        let mut peer = net.endpoint(members[0]);
        for seq in 1..=3u64 {
            peer.send_to(
                members[1],
                &Message::Data(ar_core::DataMessage {
                    ring_id,
                    seq: ar_core::Seq::new(seq),
                    pid: members[0],
                    round: ar_core::Round::new(1),
                    service: ServiceType::Agreed,
                    after_token: false,
                    payload: Bytes::from_static(b"burst"),
                }),
            )
            .unwrap();
        }
        rt.step().unwrap();
        assert_eq!(rt.participant().stats().messages_received, 3);
    }

    #[test]
    fn adaptive_controller_tightens_timeouts_from_live_rotations() {
        use ar_core::{AdaptiveConfig, AdaptiveTimeouts, TimeoutConfig};

        let mut ring = build_ring(2);
        let base = TimeoutConfig::default();
        let policy = AdaptiveConfig {
            min_samples: 4,
            ..AdaptiveConfig::default()
        };
        ring[0].enable_adaptive_timeouts(AdaptiveTimeouts::new(base, policy).unwrap());
        ring[0].set_metrics(NetMetrics::detached());
        for rt in ring.iter_mut() {
            rt.start().unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while ring[0].participant().stats().timeouts_adapted == 0 && Instant::now() < deadline {
            for rt in ring.iter_mut() {
                rt.step().unwrap();
            }
        }
        let p = ring[0].participant();
        assert!(p.stats().timeouts_adapted > 0, "policy installed");
        assert!(
            p.timeouts().token_loss < base.token_loss,
            "loopback rotations are far below the static 50ms default"
        );
        let ctl = ring[0].adaptive().unwrap();
        assert!(ctl.updates() > 0);
        assert_eq!(ctl.current(), *p.timeouts());
        // The gauge mirrors the installed policy after a step.
        let m = ring[0].metrics().unwrap().clone();
        assert_eq!(
            m.adaptive_token_loss_ns.get(),
            i64::try_from(p.timeouts().token_loss).unwrap()
        );
    }

    #[test]
    fn durable_log_records_deliveries_and_gates_safe() {
        use ar_log::{read_log_dir, FsyncPolicy, LogConfig};

        let dir = std::env::temp_dir().join(format!(
            "ar-net-durable-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ring = build_ring(2);
        let (log, recovered) =
            ar_log::SegmentedLog::open(LogConfig::new(&dir).with_fsync(FsyncPolicy::Never))
                .unwrap();
        assert_eq!(recovered.records, 0);
        ring[0].set_metrics(NetMetrics::detached());
        ring[0].attach_durable_log(log, true);
        ring[0]
            .submit(Bytes::from_static(b"agreed"), ServiceType::Agreed)
            .unwrap();
        ring[0]
            .submit(Bytes::from_static(b"safe"), ServiceType::Safe)
            .unwrap();
        let mut delivered: Vec<Bytes> = Vec::new();
        // The representative can deliver its own pre-token submissions
        // already during start(): collect those events too.
        for rt in ring.iter_mut() {
            for ev in rt.start().unwrap() {
                if let AppEvent::Delivered(d) = ev {
                    if rt.participant().pid() == ParticipantId::new(0) {
                        delivered.push(d.payload);
                    }
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while delivered.len() < 2 && Instant::now() < deadline {
            for rt in ring.iter_mut() {
                for ev in rt.step().unwrap() {
                    if let AppEvent::Delivered(d) = ev {
                        if rt.participant().pid() == ParticipantId::new(0) {
                            delivered.push(d.payload);
                        }
                    }
                }
            }
        }
        assert_eq!(delivered.len(), 2, "both messages surfaced");
        let log = ring[0].durable_log().unwrap();
        assert!(log.stats().appends >= 2, "{:?}", log.stats());
        assert!(
            log.stats().syncs >= 1,
            "gated Safe delivery forced a sync under FsyncPolicy::Never: {:?}",
            log.stats()
        );
        // Everything surfaced is on disk: kill -9 from here loses nothing.
        let m = ring[0].metrics().unwrap().clone();
        assert_eq!(m.log_held_safe.get(), 0);
        assert!(m.log_appends.get() >= 2);
        drop(ring);
        let on_disk = read_log_dir(&dir).unwrap();
        let payloads: Vec<&[u8]> = on_disk
            .deliveries
            .iter()
            .map(|(_, d)| d.payload.as_ref())
            .collect();
        assert!(payloads.contains(&b"safe".as_ref()), "{payloads:?}");
        assert!(payloads.contains(&b"agreed".as_ref()), "{payloads:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_durable_log_persists_cursor_and_tail() {
        use ar_log::{read_log_dir, FsyncPolicy, LogConfig};

        let dir = std::env::temp_dir().join(format!(
            "ar-net-flush-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ring = build_ring(2);
        let (log, _) =
            ar_log::SegmentedLog::open(LogConfig::new(&dir).with_fsync(FsyncPolicy::Never))
                .unwrap();
        ring[0].attach_durable_log(log, false);
        ring[0]
            .submit(Bytes::from_static(b"tail"), ServiceType::Agreed)
            .unwrap();
        for rt in ring.iter_mut() {
            rt.start().unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = false;
        while !got && Instant::now() < deadline {
            for rt in ring.iter_mut() {
                got |= rt
                    .step()
                    .unwrap()
                    .iter()
                    .any(|e| matches!(e, AppEvent::Delivered(_)));
            }
        }
        assert!(got);
        ring[0].flush_durable_log().unwrap();
        drop(ring);
        let on_disk = read_log_dir(&dir).unwrap();
        assert!(on_disk.cursor.is_some(), "flush persisted the cursor");
        assert_eq!(
            on_disk.undelivered().len(),
            0,
            "cursor covers everything surfaced"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn receiving_a_token_resets_retransmit_backoff() {
        let net = LoopbackNet::new();
        let members = pids(2);
        let ring_id = RingId::new(members[0], 1);
        let part = Participant::new(
            members[1],
            ProtocolConfig::accelerated(),
            ring_id,
            members.clone(),
        )
        .unwrap();
        let mut rt = Runtime::new(part, net.endpoint(members[1]));
        let mut peer = net.endpoint(members[0]);
        for _ in 0..4 {
            rt.retransmit_backoff.step();
        }
        peer.send_to(
            members[1],
            &Message::Token(ar_core::Token::initial(ring_id, ar_core::Seq::ZERO)),
        )
        .unwrap();
        rt.step().unwrap();
        assert_eq!(rt.retransmit_backoff.shift(), 0);
    }
}
