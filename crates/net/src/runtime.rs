//! The single-threaded event loop that drives a [`Participant`] over a
//! [`Transport`] with real (wall-clock) timers — the daemon main loop
//! of the paper's implementations.

use std::io;
use std::time::{Duration, Instant};

use ar_core::{
    Action, ConfigChange, Delivery, Message, Participant, PriorityMode, ServiceType, TimerKind,
};
use bytes::Bytes;

use crate::transport::Transport;

/// Events surfaced to the embedding application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// An ordered message was delivered.
    Delivered(Delivery),
    /// A configuration change (transitional or regular) was delivered.
    ConfigChanged(ConfigChange),
}

/// Upper bound on one receive wait, so timers stay responsive even when
/// the computed deadline is far away.
const MAX_POLL: Duration = Duration::from_millis(5);

/// Cap on the retransmission backoff exponent (2^6 = 64x the base
/// interval; the token-loss timeout clamps the result anyway).
const MAX_RETRANSMIT_SHIFT: u32 = 6;

/// A protocol participant bound to a transport and a clock.
#[derive(Debug)]
pub struct Runtime<T: Transport> {
    part: Participant,
    transport: T,
    timers: [Option<Instant>; 5],
    events: Vec<AppEvent>,
    /// Consecutive token-retransmission firings without hearing a
    /// token. Each firing doubles the retransmit interval (capped by
    /// the token-loss timeout) so a long outage does not flood a
    /// recovering peer with duplicate tokens; any received token or
    /// commit resets the backoff.
    retransmit_shift: u32,
}

fn kind_idx(kind: TimerKind) -> usize {
    match kind {
        TimerKind::TokenLoss => 0,
        TimerKind::TokenRetransmit => 1,
        TimerKind::Join => 2,
        TimerKind::ConsensusTimeout => 3,
        TimerKind::CommitTimeout => 4,
    }
}

const KINDS: [TimerKind; 5] = [
    TimerKind::TokenLoss,
    TimerKind::TokenRetransmit,
    TimerKind::Join,
    TimerKind::ConsensusTimeout,
    TimerKind::CommitTimeout,
];

impl<T: Transport> Runtime<T> {
    /// Wraps a participant and transport; call
    /// [`start`](Runtime::start) before stepping.
    pub fn new(part: Participant, transport: T) -> Runtime<T> {
        Runtime {
            part,
            transport,
            timers: [None; 5],
            events: Vec::new(),
            retransmit_shift: 0,
        }
    }

    /// The wrapped participant (for inspection).
    pub fn participant(&self) -> &Participant {
        &self.part
    }

    /// The transport (for inspection).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Begins operation (the ring representative injects the first
    /// token).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if sending fails.
    pub fn start(&mut self) -> io::Result<Vec<AppEvent>> {
        let actions = self.part.start();
        self.execute(actions)?;
        Ok(std::mem::take(&mut self.events))
    }

    /// Submits an application message for ordering.
    ///
    /// # Errors
    ///
    /// Returns the queue-full error on backpressure.
    pub fn submit(
        &mut self,
        payload: Bytes,
        service: ServiceType,
    ) -> Result<(), ar_core::QueueFull> {
        self.part.submit(payload, service)
    }

    /// Runs one iteration: waits (briefly) for a message, handles it
    /// and any expired timers, and returns application events.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the transport.
    pub fn step(&mut self) -> io::Result<Vec<AppEvent>> {
        let now = Instant::now();
        let next_deadline = self.timers.iter().flatten().min().copied();
        let wait = match next_deadline {
            Some(d) if d <= now => Duration::ZERO,
            Some(d) => (d - now).min(MAX_POLL),
            None => MAX_POLL,
        };
        let prefer_token = self.part.priority_mode() == PriorityMode::TokenHigh;
        if let Some(msg) = self.transport.recv(prefer_token, wait)? {
            if matches!(msg, Message::Token(_) | Message::Commit(_)) {
                self.retransmit_shift = 0;
            }
            let actions = self.part.handle_message(msg);
            self.execute(actions)?;
        }
        // Fire expired timers.
        let now = Instant::now();
        for kind in KINDS {
            let idx = kind_idx(kind);
            if matches!(self.timers[idx], Some(d) if d <= now) {
                self.timers[idx] = None;
                if kind == TimerKind::TokenRetransmit {
                    self.retransmit_shift = (self.retransmit_shift + 1).min(MAX_RETRANSMIT_SHIFT);
                }
                let actions = self.part.handle_timer(kind);
                self.execute(actions)?;
            }
        }
        Ok(std::mem::take(&mut self.events))
    }

    fn execute(&mut self, actions: Vec<Action>) -> io::Result<()> {
        for action in actions {
            match action {
                Action::Multicast(m) => self.transport.multicast(&Message::Data(m))?,
                Action::SendToken { to, token } => {
                    self.transport.send_to(to, &Message::Token(token))?
                }
                Action::MulticastJoin(j) => self.transport.multicast(&Message::Join(j))?,
                Action::SendCommit { to, token } => {
                    self.transport.send_to(to, &Message::Commit(token))?
                }
                Action::Deliver(d) => self.events.push(AppEvent::Delivered(d)),
                Action::DeliverConfigChange(c) => self.events.push(AppEvent::ConfigChanged(c)),
                Action::SetTimer(kind) => {
                    let dur = self.timer_duration(kind);
                    self.timers[kind_idx(kind)] = Some(Instant::now() + dur);
                }
                Action::CancelTimer(kind) => self.timers[kind_idx(kind)] = None,
            }
        }
        Ok(())
    }

    fn timer_duration(&self, kind: TimerKind) -> Duration {
        let t = self.part.timeouts();
        Duration::from_nanos(match kind {
            TimerKind::TokenLoss => t.token_loss,
            TimerKind::TokenRetransmit => t
                .token_retransmit
                .checked_shl(self.retransmit_shift)
                .unwrap_or(u64::MAX)
                .min(t.token_loss),
            TimerKind::Join => t.join,
            TimerKind::ConsensusTimeout => t.consensus,
            TimerKind::CommitTimeout => t.commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNet;
    use ar_core::{ParticipantId, ProtocolConfig, RingId};

    fn pids(n: u16) -> Vec<ParticipantId> {
        (0..n).map(ParticipantId::new).collect()
    }

    fn build_ring(n: u16) -> Vec<Runtime<crate::loopback::LoopbackTransport>> {
        let net = LoopbackNet::new();
        let members = pids(n);
        let ring_id = RingId::new(members[0], 1);
        members
            .iter()
            .map(|&p| {
                let part =
                    Participant::new(p, ProtocolConfig::accelerated(), ring_id, members.clone())
                        .unwrap();
                Runtime::new(part, net.endpoint(p))
            })
            .collect()
    }

    #[test]
    fn three_node_ring_delivers_in_total_order_single_thread() {
        let mut ring = build_ring(3);
        ring[1]
            .submit(Bytes::from_static(b"one"), ServiceType::Agreed)
            .unwrap();
        ring[2]
            .submit(Bytes::from_static(b"two"), ServiceType::Safe)
            .unwrap();
        for rt in ring.iter_mut() {
            rt.start().unwrap();
        }
        let mut logs: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 3];
        let deadline = Instant::now() + Duration::from_secs(5);
        while logs.iter().any(|l| l.len() < 2) && Instant::now() < deadline {
            for (i, rt) in ring.iter_mut().enumerate() {
                for ev in rt.step().unwrap() {
                    if let AppEvent::Delivered(d) = ev {
                        logs[i].push((d.seq.as_u64(), d.payload));
                    }
                }
            }
        }
        assert_eq!(logs[0].len(), 2, "{logs:?}");
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
    }

    #[test]
    fn retransmit_interval_backs_off_and_caps_at_token_loss() {
        let mut ring = build_ring(2);
        let rt = &mut ring[0];
        let t = rt.part.timeouts();
        let base = Duration::from_nanos(t.token_retransmit);
        let cap = Duration::from_nanos(t.token_loss);
        assert_eq!(rt.timer_duration(TimerKind::TokenRetransmit), base);
        rt.retransmit_shift = 1;
        assert_eq!(
            rt.timer_duration(TimerKind::TokenRetransmit),
            (base * 2).min(cap)
        );
        rt.retransmit_shift = MAX_RETRANSMIT_SHIFT;
        let backed_off = rt.timer_duration(TimerKind::TokenRetransmit);
        assert!(backed_off <= cap, "{backed_off:?} > {cap:?}");
        assert!(backed_off >= base * 2);
        // Other timers are unaffected by the backoff state.
        assert_eq!(
            rt.timer_duration(TimerKind::TokenLoss),
            Duration::from_nanos(t.token_loss)
        );
    }

    #[test]
    fn receiving_a_token_resets_retransmit_backoff() {
        let net = LoopbackNet::new();
        let members = pids(2);
        let ring_id = RingId::new(members[0], 1);
        let part = Participant::new(
            members[1],
            ProtocolConfig::accelerated(),
            ring_id,
            members.clone(),
        )
        .unwrap();
        let mut rt = Runtime::new(part, net.endpoint(members[1]));
        let mut peer = net.endpoint(members[0]);
        rt.retransmit_shift = 4;
        peer.send_to(
            members[1],
            &Message::Token(ar_core::Token::initial(ring_id, ar_core::Seq::ZERO)),
        )
        .unwrap();
        rt.step().unwrap();
        assert_eq!(rt.retransmit_shift, 0);
    }
}
