//! The nemesis: replays a [`NemesisPlan`] (crashes, restarts,
//! partitions, heals) against a ring while checking Extended Virtual
//! Synchrony invariants.
//!
//! Two modes share the plan format:
//!
//! * [`NemesisRunner`] — a deterministic, single-threaded harness over
//!   a **virtual clock**. It owns the [`Participant`]s directly, routes
//!   their messages through a seeded lossy network governed by the
//!   plan's [`Connectivity`], fires protocol timers at exact virtual
//!   deadlines, and feeds every delivery into an [`EvsChecker`] and
//!   every token into a [`TokenRuleMonitor`]. Given the same plan and
//!   seed, a run is **bit-identical**: the [`NemesisOutcome::digest`]
//!   can be compared across repeats.
//! * live mode — a real multi-threaded ring of daemons wrapped in
//!   [`crate::chaos::ChaosTransport`]s; [`apply_connectivity`]
//!   translates the same plan's connectivity matrix onto the
//!   transports' [`ChaosControl`]s at wall-clock offsets. Threads make
//!   bit-identical replay impossible there, so live assertions are
//!   convergence-shaped (see `tests/nemesis_e2e.rs`).
//!
//! The plan type itself is [`ar_core::fault::FaultSchedule`], shared
//! with the simulator's `ar_sim::FaultPlan` (see its
//! `to_schedule`/`from_schedule`), so one fault scenario can drive all
//! three harnesses.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ar_core::checker::{DurabilityChecker, EvsChecker, SendSplitChecker, TokenRuleMonitor};
use ar_core::fault::{Connectivity, FaultEvent};
use ar_core::{
    Action, AdaptiveConfig, AdaptiveTimeouts, ConfigChange, Delivery, Message, Participant,
    ParticipantId, ProtocolConfig, RingId, ServiceType, TimerKind,
};
use ar_log::{DeliveryRecord, FsyncPolicy, LogConfig, LogRecord, SegmentedLog};
use ar_telemetry::FlightRecorder;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaos::ChaosControl;

/// A crash/restart/partition/heal schedule, shared with the simulator.
pub use ar_core::fault::FaultSchedule as NemesisPlan;

/// Applies a [`Connectivity`] matrix onto the per-endpoint
/// [`ChaosControl`]s of a live ring: `controls[i]` belongs to the
/// endpoint whose pid is `ParticipantId::new(i)`.
///
/// Crashed hosts are blackholed; partition edges become outbound
/// blocks on the sending side (which covers destination-blind token
/// unicast as well — see [`crate::chaos`] module docs).
pub fn apply_connectivity(controls: &[ChaosControl], conn: &Connectivity) {
    for (i, control) in controls.iter().enumerate() {
        if conn.is_crashed(i) {
            control.crash();
            continue;
        }
        control.restart();
        let blocked = (0..controls.len())
            .filter(|&j| j != i && !conn.can_reach(i, j))
            .map(|j| ParticipantId::new(j as u16));
        control.set_blocked_to(blocked);
    }
}

const TIMER_KINDS: [TimerKind; 5] = [
    TimerKind::TokenLoss,
    TimerKind::TokenRetransmit,
    TimerKind::Join,
    TimerKind::ConsensusTimeout,
    TimerKind::CommitTimeout,
];

fn kind_idx(kind: TimerKind) -> usize {
    TIMER_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("known kind")
}

#[derive(Debug)]
enum EvKind {
    /// A message arrives at host `to`.
    Arrive { to: usize, msg: Message },
    /// A protocol timer fires at `host` (if `gen` is still current).
    Timer {
        host: usize,
        kind: TimerKind,
        gen: u64,
    },
    /// The `i`-th plan event takes effect.
    Fault(usize),
    /// A scheduled application submission at `host`.
    Submit {
        host: usize,
        payload: Vec<u8>,
        service: ServiceType,
    },
    /// A scheduled change of `host`'s marginal-link loss probability.
    LossChange { host: usize, prob: f64 },
}

#[derive(Debug)]
struct Ev {
    at: u64,
    id: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.id) == (other.at, other.id)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

/// What a [`NemesisRunner`] run produced.
#[derive(Debug)]
pub struct NemesisOutcome {
    /// True if every surviving host ended operational on one common
    /// ring whose members are exactly the survivors.
    pub converged: bool,
    /// The ring each surviving host ended on (`None` for crashed
    /// hosts).
    pub final_rings: Vec<Option<RingId>>,
    /// Hosts alive at the end of the run.
    pub survivors: Vec<usize>,
    /// Deliveries per host.
    pub deliveries: Vec<usize>,
    /// EVS invariant violations (empty on a correct run).
    pub evs_violations: Vec<String>,
    /// Token retransmission-bound violations (empty on a correct run).
    pub token_violations: Vec<String>,
    /// Pre/post-token send-split violations (empty on a correct run).
    pub split_violations: Vec<String>,
    /// Durability-contract violations against the recovered on-disk
    /// logs (empty when durable logs are disabled or the contract
    /// held).
    pub durability_violations: Vec<String>,
    /// Delivery records recovered from disk per host at the end of the
    /// run (empty when durable logs are disabled).
    pub recovered_records: Vec<u64>,
    /// Tokens observed on the wire.
    pub tokens_seen: u64,
    /// Messages dropped by loss or unreachability.
    pub dropped: u64,
    /// Virtual time when the run stopped.
    pub stopped_at: Duration,
    /// FNV-1a digest of every host's delivery and configuration logs
    /// plus final rings; equal for equal (plan, seed) runs.
    pub digest: u64,
    /// Per-host flight recorders holding the tail of each host's
    /// protocol-event history (current incarnation; timestamps are
    /// virtual nanoseconds).
    pub flight: Vec<Arc<FlightRecorder>>,
    /// Per-host digests of the retained flight events; equal for equal
    /// (plan, seed) runs.
    pub flight_digests: Vec<u64>,
}

impl NemesisOutcome {
    /// The tail of every host's flight recorder (up to `per_host`
    /// events each), rendered for post-mortem reports.
    pub fn flight_tail(&self, per_host: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, fr) in self.flight.iter().enumerate() {
            let dump = fr.dump();
            let skip = dump.len().saturating_sub(per_host);
            let _ = writeln!(
                out,
                "host {i}: {} events recorded, last {}:",
                fr.total(),
                dump.len() - skip
            );
            for fe in &dump[skip..] {
                let _ = writeln!(out, "  at={} {:?}", fe.at, fe.ev);
            }
        }
        out
    }

    /// Panics with a readable report — including each host's recent
    /// protocol events — unless the run converged with no violations.
    pub fn assert_clean(&self) {
        assert!(
            self.evs_violations.is_empty(),
            "EVS violations: {:#?}\n{}",
            self.evs_violations,
            self.flight_tail(10)
        );
        assert!(
            self.token_violations.is_empty(),
            "token rule violations: {:#?}\n{}",
            self.token_violations,
            self.flight_tail(10)
        );
        assert!(
            self.split_violations.is_empty(),
            "send-split violations: {:#?}\n{}",
            self.split_violations,
            self.flight_tail(10)
        );
        assert!(
            self.durability_violations.is_empty(),
            "durability violations: {:#?}\n{}",
            self.durability_violations,
            self.flight_tail(10)
        );
        assert!(
            self.converged,
            "ring did not converge: final rings {:?}, survivors {:?}\n{}",
            self.final_rings,
            self.survivors,
            self.flight_tail(10)
        );
    }
}

/// Deterministic single-threaded nemesis harness (see module docs).
#[derive(Debug)]
pub struct NemesisRunner {
    n: usize,
    protocol: ProtocolConfig,
    parts: Vec<Participant>,
    clock: u64,
    next_id: u64,
    queue: BinaryHeap<Reverse<Ev>>,
    /// Per-host, per-kind (deadline, generation); a popped timer event
    /// fires only if its generation is still current.
    timers: Vec<[Option<(u64, u64)>; 5]>,
    timer_gen: u64,
    conn: Connectivity,
    plan: NemesisPlan,
    rng: StdRng,
    drop_prob: f64,
    /// Extra per-host loss probability (a "marginal link"): a copy to or
    /// from host `i` is dropped with the max of `drop_prob` and the two
    /// endpoints' host rates.
    host_loss: Vec<f64>,
    pending_loss_changes: usize,
    /// Per-host rotation-informed timeout controllers (None = static
    /// timeouts, the default).
    adaptive: Vec<Option<AdaptiveTimeouts>>,
    /// When each host last received a token (virtual clock), for the
    /// adaptive rotation measurement.
    last_token_arrival: Vec<Option<u64>>,
    link_latency: u64,
    checker: EvsChecker,
    monitor: TokenRuleMonitor,
    split: SendSplitChecker,
    durability: DurabilityChecker,
    /// Per-host durable logs (None until
    /// [`enable_durable_logs`](NemesisRunner::enable_durable_logs)).
    durable: Vec<Option<HostDurable>>,
    /// Base directory of the per-host logs, plus the shared policy.
    durable_cfg: Option<(PathBuf, FsyncPolicy, bool)>,
    /// Delivery logs per host (survives restarts).
    pub logs: Vec<Vec<Delivery>>,
    /// Configuration-change logs per host.
    pub configs: Vec<Vec<ConfigChange>>,
    dropped: u64,
    /// Submitted payloads with their submission time and submitter.
    expected: Vec<(Vec<u8>, u64, usize)>,
    /// Virtual time each host's current incarnation started (0 unless
    /// restarted).
    incarnation: Vec<u64>,
    pending_submits: usize,
    /// Per-host flight recorders (attached as participant observers;
    /// re-attached across restarts).
    recorders: Vec<Arc<FlightRecorder>>,
}

/// Events retained per host by the harness's flight recorders.
const FLIGHT_CAPACITY: usize = 256;

/// One host's durable log inside the virtual-clock harness.
#[derive(Debug)]
struct HostDurable {
    log: SegmentedLog,
    gate_safe: bool,
    /// Deliveries appended but withheld pending durability, in order.
    held: VecDeque<Delivery>,
}

fn host_log_dir(base: &std::path::Path, host: usize) -> PathBuf {
    base.join(format!("host-{host}"))
}

impl NemesisRunner {
    /// Builds `n` hosts on an established common ring, with per-copy
    /// loss probability `drop_prob` and the given fault plan. Host `i`
    /// is `ParticipantId::new(i)`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration is invalid or `drop_prob`
    /// is outside `[0, 1)`.
    pub fn new(
        n: u16,
        protocol: ProtocolConfig,
        plan: NemesisPlan,
        drop_prob: f64,
        seed: u64,
    ) -> NemesisRunner {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0, 1)"
        );
        let members: Vec<ParticipantId> = (0..n).map(ParticipantId::new).collect();
        let ring_id = RingId::new(members[0], 1);
        let recorders: Vec<Arc<FlightRecorder>> = (0..n)
            .map(|_| FlightRecorder::shared(FLIGHT_CAPACITY))
            .collect();
        let parts: Vec<Participant> = members
            .iter()
            .zip(&recorders)
            .map(|(&p, fr)| {
                let mut part =
                    Participant::new(p, protocol, ring_id, members.clone()).expect("valid ring");
                part.set_observer(fr.clone());
                part
            })
            .collect();
        let mut runner = NemesisRunner {
            n: n as usize,
            protocol,
            parts,
            clock: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            timers: vec![[None; 5]; n as usize],
            timer_gen: 0,
            conn: Connectivity::full(n as usize),
            rng: StdRng::seed_from_u64(seed),
            drop_prob,
            host_loss: vec![0.0; n as usize],
            pending_loss_changes: 0,
            adaptive: (0..n).map(|_| None).collect(),
            last_token_arrival: vec![None; n as usize],
            // 50µs per hop: fast-datacenter-like, far below the 50ms
            // token-loss timeout so healthy rotations never time out.
            link_latency: 50_000,
            checker: EvsChecker::new(n as usize),
            monitor: TokenRuleMonitor::new(),
            split: SendSplitChecker::new(Some(protocol.accelerated_window)),
            durability: DurabilityChecker::new(),
            durable: (0..n).map(|_| None).collect(),
            durable_cfg: None,
            logs: vec![Vec::new(); n as usize],
            configs: vec![Vec::new(); n as usize],
            dropped: 0,
            expected: Vec::new(),
            incarnation: vec![0; n as usize],
            pending_submits: 0,
            recorders,
            plan,
        };
        for i in 0..runner.plan.events().len() {
            let at = runner.plan.events()[i].0.as_nanos() as u64;
            runner.push_event(at, EvKind::Fault(i));
        }
        runner
    }

    fn push_event(&mut self, at: u64, kind: EvKind) {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(Reverse(Ev { at, id, kind }));
    }

    /// Submits a payload for ordering at host `i` (tracked for the
    /// self-delivery check).
    pub fn submit(&mut self, i: usize, payload: &[u8], service: ServiceType) {
        self.checker.on_submit(i, payload);
        self.expected.push((payload.to_vec(), self.clock, i));
        self.parts[i].observe_now(self.clock);
        self.parts[i]
            .submit(Bytes::from(payload.to_vec()), service)
            .expect("nemesis workloads fit the send queue");
    }

    /// Schedules a submission at host `i` for virtual time `at` — the
    /// way to inject traffic *after* a heal or restart, which is what
    /// lets separated rings detect each other and merge.
    pub fn submit_at(&mut self, at: Duration, i: usize, payload: &[u8], service: ServiceType) {
        self.pending_submits += 1;
        self.push_event(
            at.as_nanos() as u64,
            EvKind::Submit {
                host: i,
                payload: payload.to_vec(),
                service,
            },
        );
    }

    /// Starts every participant.
    pub fn start(&mut self) {
        for i in 0..self.n {
            self.parts[i].observe_now(self.clock);
            let actions = self.parts[i].start();
            self.apply(i, actions);
        }
    }

    /// The per-host flight recorders (virtual-clock timestamps).
    pub fn flight_recorders(&self) -> &[Arc<FlightRecorder>] {
        &self.recorders
    }

    /// Host `i`'s participant (for end-of-run inspection: stats,
    /// timeouts, effective window, quarantine state).
    pub fn participant(&self, i: usize) -> &Participant {
        &self.parts[i]
    }

    /// Sets host `i`'s marginal-link loss probability immediately.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1)`.
    pub fn set_host_loss(&mut self, i: usize, prob: f64) {
        assert!(
            (0.0..1.0).contains(&prob),
            "host loss probability must be in [0, 1)"
        );
        self.host_loss[i] = prob;
    }

    /// Schedules host `i`'s marginal-link loss probability to change at
    /// virtual time `at` — the way to script a flapping or marginal
    /// link (alternating lossy and clean windows).
    pub fn schedule_host_loss(&mut self, at: Duration, i: usize, prob: f64) {
        assert!(
            (0.0..1.0).contains(&prob),
            "host loss probability must be in [0, 1)"
        );
        self.pending_loss_changes += 1;
        self.push_event(at.as_nanos() as u64, EvKind::LossChange { host: i, prob });
    }

    /// Enables rotation-informed failure detection on every host: each
    /// token arrival feeds that host's controller, and changed policies
    /// are installed via `Participant::adapt_timeouts`. Restarted hosts
    /// get a reset controller. Fully deterministic (driven by the
    /// virtual clock).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid against the hosts' current
    /// timeout base.
    pub fn enable_adaptive(&mut self, policy: AdaptiveConfig) {
        for i in 0..self.n {
            let base = *self.parts[i].timeouts();
            self.adaptive[i] =
                Some(AdaptiveTimeouts::new(base, policy).expect("valid adaptive policy"));
        }
    }

    /// Gives every host a durable segmented log under
    /// `base/host-<i>`, appended at delivery time. A [`FaultEvent::Crash`]
    /// then models `kill -9`: the host's in-memory log handle is dropped
    /// without a flush (buffered records die with the process) while
    /// the on-disk segments survive; a [`FaultEvent::Restart`] reopens
    /// the directory, truncating any torn tail. With `gate_safe` set,
    /// Safe deliveries are surfaced only once their record is fsynced.
    /// At the end of the run every host's disk is scanned and checked
    /// against the surfaced Safe deliveries by a [`DurabilityChecker`].
    ///
    /// # Panics
    ///
    /// Panics if a log directory cannot be created or opened.
    pub fn enable_durable_logs(
        &mut self,
        base: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        gate_safe: bool,
    ) {
        let base = base.into();
        for i in 0..self.n {
            let cfg = LogConfig::new(host_log_dir(&base, i)).with_fsync(fsync);
            let (log, _) = SegmentedLog::open(cfg).expect("open nemesis durable log");
            self.durable[i] = Some(HostDurable {
                log,
                gate_safe,
                held: VecDeque::new(),
            });
        }
        self.durable_cfg = Some((base, fsync, gate_safe));
    }

    /// Surfaces one delivery at `host`: feeds the checkers and appends
    /// to the in-memory delivery log.
    fn surface(&mut self, host: usize, d: Delivery) {
        self.durability.on_safe_delivered(host, &d);
        self.checker.on_delivery(host, &d);
        self.logs[host].push(d);
    }

    /// Appends `d` to `host`'s durable log (if any) and either
    /// surfaces it or withholds it pending durability.
    fn deliver(&mut self, host: usize, d: Delivery) {
        if let Some(dur) = self.durable[host].as_mut() {
            let lsn = dur
                .log
                .append(&LogRecord::Delivery(DeliveryRecord {
                    ring: d.ring_id,
                    seq: d.seq,
                    pid: d.pid,
                    service: d.service,
                    payload: d.payload.clone(),
                }))
                .expect("nemesis durable log append");
            let _ = dur.log.maybe_sync(self.clock);
            // One withheld delivery gates everything ordered after it,
            // so the surfaced order stays the total order.
            let must_hold = dur.gate_safe
                && (!dur.held.is_empty()
                    || (d.service == ServiceType::Safe && lsn > dur.log.durable_lsn()));
            if must_hold {
                dur.held.push_back(d);
                return;
            }
        }
        self.surface(host, d);
    }

    /// Forces `host`'s log to disk and surfaces everything withheld.
    fn release_held(&mut self, host: usize) {
        let drained = match self.durable[host].as_mut() {
            Some(dur) if !dur.held.is_empty() => {
                dur.log.sync().expect("nemesis durable log sync");
                dur.held.drain(..).collect::<Vec<_>>()
            }
            _ => return,
        };
        for d in drained {
            self.surface(host, d);
        }
    }

    fn route(&mut self, from: usize, to: usize, msg: Message) {
        let loss = self
            .drop_prob
            .max(self.host_loss[from])
            .max(self.host_loss[to]);
        if !self.conn.can_reach(from, to) || (loss > 0.0 && self.rng.gen::<f64>() < loss) {
            self.dropped += 1;
            return;
        }
        // Small deterministic per-copy jitter keeps arrivals from
        // different senders interleaved rather than lockstep.
        let jitter = self.rng.gen_range(0..self.link_latency / 10 + 1);
        let at = self.clock + self.link_latency + jitter;
        self.push_event(at, EvKind::Arrive { to, msg });
    }

    fn apply(&mut self, from: usize, actions: Vec<Action>) {
        self.split
            .on_actions(ParticipantId::new(from as u16), &actions);
        for action in actions {
            match action {
                Action::SendToken { to, token } => {
                    self.monitor.on_token(&token);
                    self.route(from, to.as_u16() as usize, Message::Token(token));
                }
                Action::SendCommit { to, token } => {
                    self.route(from, to.as_u16() as usize, Message::Commit(token));
                }
                Action::Multicast(m) => {
                    for to in 0..self.n {
                        if to != from {
                            self.route(from, to, Message::Data(m.clone()));
                        }
                    }
                }
                Action::MulticastJoin(j) => {
                    for to in 0..self.n {
                        if to != from {
                            self.route(from, to, Message::Join(j.clone()));
                        }
                    }
                }
                Action::Deliver(d) => self.deliver(from, d),
                Action::DeliverConfigChange(c) => {
                    // EVS: deliveries belong to the configuration they
                    // were ordered in, so anything withheld must
                    // surface before the view change does.
                    self.release_held(from);
                    if c.kind == ar_core::ConfigChangeKind::Regular {
                        if let Some(dur) = self.durable[from].as_mut() {
                            dur.log
                                .append(&LogRecord::Ring {
                                    ring: c.ring_id,
                                    members: c.members.clone(),
                                })
                                .expect("nemesis durable log append");
                        }
                    }
                    self.checker.on_config(from, &c);
                    self.configs[from].push(c);
                }
                Action::SetTimer(kind) => {
                    let nanos = self.timer_duration(from, kind);
                    let at = self.clock + nanos;
                    self.timer_gen += 1;
                    let gen = self.timer_gen;
                    self.timers[from][kind_idx(kind)] = Some((at, gen));
                    self.push_event(
                        at,
                        EvKind::Timer {
                            host: from,
                            kind,
                            gen,
                        },
                    );
                }
                Action::CancelTimer(kind) => {
                    self.timers[from][kind_idx(kind)] = None;
                }
            }
        }
        // Bounded gate latency: anything withheld in this batch is
        // forced durable and surfaced before the harness moves on (one
        // fsync per batch, whatever the policy).
        self.release_held(from);
    }

    fn timer_duration(&self, host: usize, kind: TimerKind) -> u64 {
        let t = self.parts[host].timeouts();
        match kind {
            TimerKind::TokenLoss => t.token_loss,
            TimerKind::TokenRetransmit => t.token_retransmit,
            TimerKind::Join => t.join,
            TimerKind::ConsensusTimeout => t.consensus,
            TimerKind::CommitTimeout => t.commit,
        }
    }

    fn handle_fault(&mut self, idx: usize) {
        let (_, ev) = self.plan.events()[idx].clone();
        match &ev {
            FaultEvent::Crash { host } => {
                // Dead hosts keep their logs; their pending timers are
                // invalidated so nothing fires while down.
                self.timers[*host] = [None; 5];
                // kill -9: the in-memory log handle dies with the
                // process. Buffered (never-flushed) records are lost;
                // whatever reached the OS survives on disk. Withheld
                // Safe deliveries die unsurfaced — which is exactly
                // what the gate is for.
                self.durable[*host] = None;
            }
            FaultEvent::Restart { host } => {
                // A restarted host is a fresh incarnation: empty
                // protocol state, singleton ring, rejoin via membership.
                let pid = ParticipantId::new(*host as u16);
                let mut fresh =
                    Participant::new_singleton(pid, self.protocol).expect("valid config");
                // The recorder survives the restart: its tail spans
                // incarnations, which is exactly what a post-mortem
                // wants to see.
                fresh.set_observer(self.recorders[*host].clone());
                self.parts[*host] = fresh;
                self.checker.on_restart(*host);
                self.incarnation[*host] = self.clock;
                // The new incarnation measures rotations from scratch.
                self.last_token_arrival[*host] = None;
                if let Some(ctl) = self.adaptive[*host].as_mut() {
                    ctl.reset();
                }
                // Reopen the durable log from disk: recovery truncates
                // any torn tail and removes everything past the first
                // corruption, so nothing resurrects.
                if let Some((base, fsync, gate_safe)) = &self.durable_cfg {
                    let cfg = LogConfig::new(host_log_dir(base, *host)).with_fsync(*fsync);
                    let (log, _) = SegmentedLog::open(cfg).expect("reopen nemesis durable log");
                    self.durable[*host] = Some(HostDurable {
                        log,
                        gate_safe: *gate_safe,
                        held: VecDeque::new(),
                    });
                }
            }
            FaultEvent::Partition { .. } | FaultEvent::Heal => {}
        }
        self.conn.apply(&ev);
        if let FaultEvent::Restart { host } = ev {
            self.parts[host].observe_now(self.clock);
            let actions = self.parts[host].start();
            self.apply(host, actions);
        }
    }

    /// Runs until `limit` virtual time elapses or the ring converges
    /// (whichever is first), then evaluates the checkers.
    pub fn run(&mut self, limit: Duration) -> NemesisOutcome {
        let limit = limit.as_nanos() as u64;
        // Converged-state detection is re-checked at most once per
        // virtual millisecond to keep the hot loop cheap.
        let mut next_check = 0u64;
        loop {
            // Peek, don't pop: an event beyond the limit stays queued,
            // so a later `run` with a larger limit resumes exactly where
            // this one stopped (phase-based measurements rely on it).
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= limit => {}
                _ => break,
            }
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.clock = self.clock.max(ev.at);
            match ev.kind {
                EvKind::Arrive { to, msg } => {
                    if self.conn.is_crashed(to) {
                        self.dropped += 1;
                        continue;
                    }
                    if matches!(msg, Message::Token(_)) {
                        self.feed_adaptive(to);
                    }
                    self.parts[to].observe_now(self.clock);
                    let actions = self.parts[to].handle_message(msg);
                    self.apply(to, actions);
                }
                EvKind::Timer { host, kind, gen } => {
                    if self.conn.is_crashed(host) {
                        continue;
                    }
                    match self.timers[host][kind_idx(kind)] {
                        Some((_, g)) if g == gen => {
                            self.timers[host][kind_idx(kind)] = None;
                            self.parts[host].observe_now(self.clock);
                            let actions = self.parts[host].handle_timer(kind);
                            self.apply(host, actions);
                        }
                        _ => {} // superseded or cancelled
                    }
                }
                EvKind::Fault(idx) => self.handle_fault(idx),
                EvKind::LossChange { host, prob } => {
                    self.pending_loss_changes -= 1;
                    self.host_loss[host] = prob;
                }
                EvKind::Submit {
                    host,
                    payload,
                    service,
                } => {
                    self.pending_submits -= 1;
                    if !self.conn.is_crashed(host) {
                        self.checker.on_submit(host, &payload);
                        self.expected.push((payload.clone(), self.clock, host));
                        self.parts[host].observe_now(self.clock);
                        self.parts[host]
                            .submit(Bytes::from(payload), service)
                            .expect("nemesis workloads fit the send queue");
                    }
                }
            }
            if self.clock >= next_check {
                next_check = self.clock + 1_000_000;
                if self.faults_done() && self.is_converged() {
                    break;
                }
            }
        }
        self.outcome()
    }

    /// Feeds host `to`'s adaptive controller one rotation sample (the
    /// virtual time since its previous token receipt) and installs any
    /// newly derived policy.
    fn feed_adaptive(&mut self, to: usize) {
        if let Some(ctl) = self.adaptive[to].as_mut() {
            if let Some(prev) = self.last_token_arrival[to] {
                if ctl.record_rotation(self.clock - prev) {
                    self.parts[to].observe_now(self.clock);
                    let _ = self.parts[to].adapt_timeouts(ctl.current());
                }
            }
            self.last_token_arrival[to] = Some(self.clock);
        }
    }

    fn faults_done(&self) -> bool {
        self.pending_submits == 0
            && self.pending_loss_changes == 0
            && self
                .plan
                .events()
                .last()
                .is_none_or(|(t, _)| self.clock >= t.as_nanos() as u64)
    }

    fn survivors(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| !self.conn.is_crashed(i)).collect()
    }

    fn is_converged(&self) -> bool {
        let survivors = self.survivors();
        let Some(&first) = survivors.first() else {
            return false;
        };
        let want = self.parts[first].ring().id();
        let members: Vec<ParticipantId> = survivors
            .iter()
            .map(|&i| ParticipantId::new(i as u16))
            .collect();
        let all_partitions_healed = survivors
            .iter()
            .all(|&i| survivors.iter().all(|&j| self.conn.can_reach(i, j)));
        all_partitions_healed
            && survivors.iter().all(|&i| {
                self.parts[i].is_operational()
                    && self.parts[i].ring().id() == want
                    && self.parts[i].ring().members() == members
            })
            && survivors
                .iter()
                .all(|&i| self.delivered_everything_expected(i))
    }

    /// True if host `i` has self-delivered every payload its *current
    /// incarnation* submitted. EVS confines a message to the
    /// configuration it was ordered in — a payload ordered in an
    /// intermediate merge ring is never delivered by hosts outside
    /// that ring, and submissions from a crashed incarnation die with
    /// it — so self-delivery is the strongest liveness guarantee the
    /// harness can demand. Cross-host consistency of whatever *was*
    /// delivered is enforced separately by the [`EvsChecker`].
    fn delivered_everything_expected(&self, i: usize) -> bool {
        self.expected.iter().all(|(payload, at, submitter)| {
            *submitter != i
                || *at < self.incarnation[i]
                || self.logs[i].iter().any(|d| d.payload == payload[..])
        })
    }

    fn outcome(&mut self) -> NemesisOutcome {
        let survivors = self.survivors();
        let converged = self.is_converged();
        let final_rings: Vec<Option<RingId>> = (0..self.n)
            .map(|i| {
                if self.conn.is_crashed(i) {
                    None
                } else {
                    Some(self.parts[i].ring().id())
                }
            })
            .collect();
        let evs_violations = match self.checker.check() {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        let token_violations = match self.monitor.check() {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        let split_violations = match self.split.check() {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        let mut recovered_records = vec![0u64; self.n];
        if let Some((base, _, _)) = self.durable_cfg.clone() {
            for (i, recovered) in recovered_records.iter_mut().enumerate() {
                // Live hosts flush their tail first; crashed hosts are
                // scanned as their disk was left by the "kill".
                if let Some(dur) = self.durable[i].as_mut() {
                    dur.log.sync().expect("nemesis durable log sync");
                }
                let rec = ar_log::read_log_dir(&host_log_dir(&base, i))
                    .expect("scan nemesis durable log");
                *recovered = rec.records;
                for (_, r) in &rec.deliveries {
                    self.durability.on_log_record(
                        i,
                        &Delivery {
                            ring_id: r.ring,
                            seq: r.seq,
                            pid: r.pid,
                            service: r.service,
                            payload: r.payload.clone(),
                        },
                    );
                }
            }
        }
        let durability_violations = match self.durability.check() {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        let digest = self.digest(&final_rings);
        NemesisOutcome {
            converged,
            final_rings,
            survivors,
            deliveries: self.logs.iter().map(Vec::len).collect(),
            evs_violations,
            token_violations,
            split_violations,
            durability_violations,
            recovered_records,
            tokens_seen: self.monitor.tokens_seen(),
            dropped: self.dropped,
            stopped_at: Duration::from_nanos(self.clock),
            digest,
            flight_digests: self.recorders.iter().map(|fr| fr.digest()).collect(),
            flight: self.recorders.clone(),
        }
    }

    fn digest(&self, final_rings: &[Option<RingId>]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        // Trace-level counters make the digest sensitive to the path
        // taken, not just the end state: two seeds that happen to
        // converge identically still produce distinct digests when
        // their loss patterns differed.
        eat(&self.dropped.to_le_bytes());
        eat(&self.monitor.tokens_seen().to_le_bytes());
        eat(&self.clock.to_le_bytes());
        for (i, ring) in final_rings.iter().enumerate().take(self.n) {
            eat(&(i as u64).to_le_bytes());
            if let Some(r) = ring {
                eat(&r.representative().as_u16().to_le_bytes());
                eat(&r.ring_seq().to_le_bytes());
            }
            for d in &self.logs[i] {
                eat(&d.ring_id.ring_seq().to_le_bytes());
                eat(&d.seq.as_u64().to_le_bytes());
                eat(&d.pid.as_u16().to_le_bytes());
                eat(&d.payload);
            }
            for c in &self.configs[i] {
                eat(&[matches!(c.kind, ar_core::ConfigChangeKind::Regular) as u8]);
                eat(&c.ring_id.ring_seq().to_le_bytes());
                for m in &c.members {
                    eat(&m.as_u16().to_le_bytes());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(runner: &mut NemesisRunner, n: usize, per_host: usize) -> usize {
        let mut count = 0;
        for i in 0..n {
            for k in 0..per_host {
                runner.submit(i, format!("h{i}-m{k}").as_bytes(), ServiceType::Agreed);
                count += 1;
            }
        }
        count
    }

    #[test]
    fn fault_free_run_converges_clean() {
        let mut r = NemesisRunner::new(
            4,
            ProtocolConfig::accelerated(),
            NemesisPlan::none(),
            0.0,
            1,
        );
        let count = workload(&mut r, 4, 3);
        r.start();
        let out = r.run(Duration::from_secs(10));
        out.assert_clean();
        assert!(out.deliveries.iter().all(|&d| d >= count));
        r.checker.check_self_delivery(&[0, 1, 2, 3]).unwrap();
    }

    #[test]
    fn crash_shrinks_ring_and_stays_clean() {
        let plan = NemesisPlan::none().crash(Duration::from_millis(20), 2);
        let mut r = NemesisRunner::new(4, ProtocolConfig::accelerated(), plan, 0.0, 3);
        workload(&mut r, 4, 2);
        r.start();
        let out = r.run(Duration::from_secs(20));
        out.assert_clean();
        assert_eq!(out.survivors, vec![0, 1, 3]);
        assert!(out.final_rings[2].is_none());
    }

    #[test]
    fn partition_heal_reconverges() {
        let plan = NemesisPlan::none()
            .partition(Duration::from_millis(30), vec![0, 0, 1, 1])
            .heal(Duration::from_millis(400));
        let mut r = NemesisRunner::new(4, ProtocolConfig::accelerated(), plan, 0.0, 5);
        workload(&mut r, 4, 2);
        // Post-heal traffic is what lets the two sides hear each other
        // and merge.
        r.submit_at(
            Duration::from_millis(450),
            0,
            b"post-heal-0",
            ServiceType::Agreed,
        );
        r.submit_at(
            Duration::from_millis(450),
            2,
            b"post-heal-2",
            ServiceType::Agreed,
        );
        r.start();
        let out = r.run(Duration::from_secs(30));
        out.assert_clean();
        assert_eq!(out.survivors.len(), 4);
        let rings: Vec<_> = out.final_rings.iter().flatten().collect();
        assert!(rings.windows(2).all(|w| w[0] == w[1]), "{rings:?}");
    }

    #[test]
    fn restart_rejoins_the_ring() {
        let plan = NemesisPlan::none()
            .crash(Duration::from_millis(20), 1)
            .restart(Duration::from_millis(300), 1);
        let mut r = NemesisRunner::new(3, ProtocolConfig::accelerated(), plan, 0.0, 8);
        workload(&mut r, 3, 2);
        r.submit_at(
            Duration::from_millis(350),
            0,
            b"post-restart",
            ServiceType::Agreed,
        );
        r.start();
        let out = r.run(Duration::from_secs(30));
        assert!(
            out.evs_violations.is_empty(),
            "EVS violations: {:#?}",
            out.evs_violations
        );
        assert_eq!(out.survivors.len(), 3);
        assert!(
            out.converged,
            "restarted host rejoined: {:?}",
            out.final_rings
        );
    }

    #[test]
    fn digests_are_bit_identical_across_repeats() {
        let run = |seed: u64| {
            let plan = NemesisPlan::none()
                .crash(Duration::from_millis(25), 4)
                .partition(Duration::from_millis(60), vec![0, 0, 0, 1, 1])
                .heal(Duration::from_millis(300));
            let mut r = NemesisRunner::new(5, ProtocolConfig::accelerated(), plan, 0.02, seed);
            workload(&mut r, 5, 2);
            r.submit_at(
                Duration::from_millis(350),
                0,
                b"post-heal",
                ServiceType::Agreed,
            );
            r.start();
            r.run(Duration::from_secs(30)).digest
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore different runs");
    }

    #[test]
    fn flight_recorders_capture_deterministic_event_tails() {
        let run = |seed: u64| {
            let plan = NemesisPlan::none()
                .crash(Duration::from_millis(25), 2)
                .restart(Duration::from_millis(300), 2);
            let mut r = NemesisRunner::new(3, ProtocolConfig::accelerated(), plan, 0.01, seed);
            workload(&mut r, 3, 2);
            r.submit_at(
                Duration::from_millis(350),
                0,
                b"post-restart",
                ServiceType::Agreed,
            );
            r.start();
            r.run(Duration::from_secs(30))
        };
        let a = run(11);
        let b = run(11);
        assert!(a.flight.iter().all(|fr| fr.total() > 0), "events recorded");
        assert_eq!(
            a.flight_digests, b.flight_digests,
            "same (plan, seed) => identical event histories"
        );
        let c = run(12);
        assert_ne!(a.flight_digests, c.flight_digests);
        // The tail report mentions every host.
        let tail = a.flight_tail(5);
        for host in 0..3 {
            assert!(tail.contains(&format!("host {host}:")), "{tail}");
        }
        // Timestamps are the virtual clock: monotone within each dump.
        for fr in &a.flight {
            let dump = fr.dump();
            assert!(dump.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ar-nemesis-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn durable_crash_restart_loses_no_safe_delivery() {
        let dir = temp_dir("crash");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = NemesisPlan::none()
            .crash(Duration::from_millis(40), 1)
            .restart(Duration::from_millis(300), 1);
        let mut r = NemesisRunner::new(3, ProtocolConfig::accelerated(), plan, 0.01, 21);
        r.enable_durable_logs(&dir, FsyncPolicy::EveryN(4), true);
        for i in 0..3 {
            for k in 0..4 {
                r.submit(i, format!("h{i}-m{k}").as_bytes(), ServiceType::Safe);
            }
        }
        r.submit_at(
            Duration::from_millis(350),
            0,
            b"post-restart",
            ServiceType::Safe,
        );
        r.start();
        let out = r.run(Duration::from_secs(30));
        out.assert_clean();
        assert!(
            out.recovered_records.iter().all(|&n| n > 0),
            "every disk held records: {:?}",
            out.recovered_records
        );
        // The restarted host's disk spans both incarnations.
        let rec = ar_log::read_log_dir(&host_log_dir(&dir, 1)).unwrap();
        assert!(rec
            .deliveries
            .iter()
            .any(|(_, d)| d.payload.as_ref() == b"h1-m0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_digests_match_plain_runs_and_repeats() {
        // The durable log must not perturb protocol behaviour: the
        // trace digest of a durable run equals the plain run's, and
        // repeats are bit-identical.
        let plan = || {
            NemesisPlan::none()
                .crash(Duration::from_millis(30), 2)
                .restart(Duration::from_millis(280), 2)
        };
        let run = |dir: Option<PathBuf>| {
            let mut r = NemesisRunner::new(3, ProtocolConfig::accelerated(), plan(), 0.02, 7);
            if let Some(dir) = dir {
                r.enable_durable_logs(dir, FsyncPolicy::Always, true);
            }
            workload(&mut r, 3, 2);
            r.submit_at(
                Duration::from_millis(330),
                0,
                b"post-restart",
                ServiceType::Safe,
            );
            r.start();
            r.run(Duration::from_secs(30))
        };
        let d1 = temp_dir("digest1");
        let d2 = temp_dir("digest2");
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
        let plain = run(None);
        plain.assert_clean();
        let a = run(Some(d1.clone()));
        let b = run(Some(d2.clone()));
        a.assert_clean();
        assert_eq!(a.digest, b.digest, "same (plan, seed) => same digest");
        assert_eq!(
            a.digest, plain.digest,
            "durable logging must not change the observable trace"
        );
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn apply_connectivity_maps_matrix_to_controls() {
        let controls: Vec<ChaosControl> = (0..3).map(|_| ChaosControl::new()).collect();
        let mut conn = Connectivity::full(3);
        conn.apply(&FaultEvent::Crash { host: 0 });
        conn.apply(&FaultEvent::Partition {
            component_of: vec![0, 1, 2],
        });
        apply_connectivity(&controls, &conn);
        assert!(controls[0].is_crashed());
        assert!(!controls[1].is_crashed());
        // Hosts 1 and 2 are in different components: both block each
        // other outbound.
        let s_before = controls[1].stats();
        assert_eq!(s_before.total_sent(), 0);
        conn.apply(&FaultEvent::Heal);
        conn.apply(&FaultEvent::Restart { host: 0 });
        apply_connectivity(&controls, &conn);
        assert!(!controls[0].is_crashed());
    }
}
