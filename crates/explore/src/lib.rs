//! # ar-explore — systematic testing for the sans-io protocol core
//!
//! Two complementary bug hunters over `ar-core`, both fully
//! deterministic and dependency-free (no cargo-fuzz, no network):
//!
//! * [`explorer`] — a bounded depth-first **state-space explorer**. It
//!   drives 2–4 [`ar_core::Participant`] state machines through every
//!   interleaving of the adversary's moves — message delivery, loss,
//!   duplication, and timer firing — up to a configurable depth,
//!   pruning with a visited-state hash set and DPOR-style sleep sets
//!   (commuting deliveries to distinct participants are not
//!   reordered). Every explored path is checked against the Extended
//!   Virtual Synchrony oracles from `ar-core::checker`; violations are
//!   minimized and emitted as replayable schedule files consumable by
//!   `ar_net::replay`.
//! * [`fuzz`] — a **structure-aware wire fuzzer**. It generates valid
//!   frames for every message kind, mutates them field-by-field from a
//!   fixed seed, and asserts that [`ar_core::wire::decode`] never
//!   panics (which in safe Rust also rules out over-reads) and
//!   re-encodes everything it accepts byte-for-byte (canonicality).
//!
//! The `ar-explore` binary fronts both: `cargo run -p ar-explore --
//! explore --hosts 3 --depth 12` and `cargo run -p ar-explore -- fuzz
//! --iterations 50000`. See the repository README for a quickstart and
//! DESIGN.md for the pruning soundness trade-offs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explorer;
pub mod fuzz;
pub mod model;

pub use explorer::{
    default_submissions, minimize, minimize_cached, minimize_cached_with, minimize_with,
    ExploreConfig, ExploreReport, Explorer, MinimizeStats, Violation,
};
pub use fuzz::{FuzzConfig, FuzzFailure, FuzzReport, SplitMix64};
pub use model::ModelChecker;
