//! Bounded depth-first exploration of the protocol's interleaving
//! space.
//!
//! The explorer owns nothing protocol-specific: it drives the
//! [`World`] from `ar_net::replay` — the same deterministic universe
//! the schedule replayer uses — so any path it finds is *by
//! construction* replayable from the emitted schedule file.
//!
//! ## Pruning
//!
//! Two prunes keep the bounded search tractable:
//!
//! * **Visited states.** Each world has a 64-bit fingerprint
//!   ([`World::state_hash`]) that deliberately ignores message
//!   identities, so commuting interleavings reaching the same global
//!   configuration collide. A state already explored with at least as
//!   much remaining depth is not re-expanded.
//! * **Sleep sets (DPOR-style).** After exploring transition `t` from
//!   a state, every sibling explored later carries `t` in its sleep
//!   set; descendants skip `t` while it stays independent of the path
//!   taken. Two steps are *dependent* when they touch the same
//!   in-flight message or the same destination participant — so two
//!   deliveries to distinct participants are explored in only one
//!   order.
//!
//! Combining sleep sets with state caching can, in theory, hide a
//! transition behind a cached state (the classic sleep-set/state-cache
//! interaction). The explorer is a bounded *bug finder*, not a
//! verifier, and accepts that trade for the orders-of-magnitude
//! reduction; DESIGN.md discusses the choice.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ar_net::replay::{
    replay_schedule, Expectation, Schedule, ScheduleError, Step, Submission, World, TIMER_KINDS,
};

use crate::model::ModelChecker;

/// What the explorer should enumerate and how far.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Ring size (2–4 participants is the useful range).
    pub hosts: u16,
    /// Hosts that start outside the initial ring and enter via an
    /// explored [`Step::Join`] (see
    /// [`ar_net::replay::World::new_with_joiners`]).
    pub joiners: Vec<u16>,
    /// Maximum schedule length explored.
    pub depth: usize,
    /// Protocol configuration name (`"accelerated"`, `"original"`, or
    /// `"damped"`).
    pub config: String,
    /// Workload submitted before the ring starts.
    pub submissions: Vec<Submission>,
    /// Hard cap on states visited (0 = unlimited).
    pub max_states: u64,
    /// Wall-clock budget; exploration reports `truncated` when hit.
    pub time_box: Option<Duration>,
    /// Enumerate message-loss steps.
    pub drops: bool,
    /// Enumerate message-duplication steps.
    pub dups: bool,
    /// Enumerate timer-firing steps.
    pub timers: bool,
    /// Enumerate membership faults (`Fail`/`Partition`/`Merge`) and
    /// check the [`ModelChecker`] invariants at every explored state.
    pub membership: bool,
    /// Fault budget per explored path when `membership` is on (1 =
    /// the single-fault sweep from the CI job).
    pub max_faults: u8,
    /// Stop after this many violations (0 = collect all).
    pub max_violations: usize,
    /// Record up to this many completed clean paths as corpus
    /// schedules.
    pub corpus_paths: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            hosts: 3,
            joiners: vec![],
            depth: 10,
            config: "accelerated".into(),
            submissions: default_submissions(3, 2),
            max_states: 2_000_000,
            time_box: Some(Duration::from_secs(120)),
            drops: true,
            dups: true,
            timers: true,
            membership: false,
            max_faults: 1,
            max_violations: 8,
            corpus_paths: 0,
        }
    }
}

/// The standard exploration workload: `count` agreed-service payloads
/// submitted round-robin across the first hosts, named `h{host}-m{n}`.
pub fn default_submissions(hosts: u16, count: usize) -> Vec<Submission> {
    (0..count)
        .map(|i| Submission {
            host: (i as u16) % hosts,
            payload: format!("h{}-m{}", (i as u16) % hosts, i / hosts as usize),
            service: ar_core::ServiceType::Agreed,
        })
        .collect()
}

/// A safety violation the explorer found, packaged for reproduction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The minimized, replayable schedule reaching the violation.
    pub schedule: Schedule,
    /// The oracle messages observed at the end of the schedule.
    pub messages: Vec<String>,
    /// Schedule length before minimization.
    pub original_len: usize,
}

/// Counters and findings from one exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct world states expanded.
    pub states_visited: u64,
    /// Abstract-model invariant evaluations performed (0 unless
    /// membership mode is on).
    pub model_checks: u64,
    /// Transitions (step applications) executed.
    pub transitions: u64,
    /// Children skipped because their state hash was already explored
    /// with at least as much remaining depth.
    pub pruned_visited: u64,
    /// Children skipped by the sleep-set rule (a commuting order was
    /// already covered).
    pub pruned_sleep: u64,
    /// Paths that ran to the depth bound or to quiescence without any
    /// oracle firing.
    pub completed_paths: u64,
    /// Violations found (minimized).
    pub violations: Vec<Violation>,
    /// Clean completed paths recorded as corpus schedules.
    pub corpus: Vec<Schedule>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when the state cap or time box cut the search short.
    pub truncated: bool,
}

impl ExploreReport {
    /// States expanded per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.states_visited as f64 / secs
        }
    }

    /// Fraction of generated children that were pruned rather than
    /// expanded.
    pub fn prune_ratio(&self) -> f64 {
        let pruned = self.pruned_visited + self.pruned_sleep;
        let total = pruned + self.transitions;
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// The depth-first explorer. Construct with a config, call
/// [`Explorer::run`].
#[derive(Debug)]
pub struct Explorer {
    cfg: ExploreConfig,
    visited: HashMap<u64, usize>,
    report: ExploreReport,
    start: Instant,
    stop: bool,
}

impl Explorer {
    /// Creates an explorer for `cfg`.
    pub fn new(cfg: ExploreConfig) -> Explorer {
        Explorer {
            cfg,
            visited: HashMap::new(),
            report: ExploreReport::default(),
            start: Instant::now(),
            stop: false,
        }
    }

    /// Runs the bounded search and returns the report.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ar_net::replay::ScheduleError`] only if
    /// the initial world cannot be built (unknown config name).
    pub fn run(mut self) -> Result<ExploreReport, ScheduleError> {
        let mut root = World::new_with_joiners(
            self.cfg.hosts,
            &self.cfg.joiners,
            &self.cfg.config,
            &self.cfg.submissions,
        )?;
        // The budget must be fixed before the first hash: it is part of
        // the fingerprint (different budgets, different futures).
        root.set_fault_budget(if self.cfg.membership {
            self.cfg.max_faults
        } else {
            0
        });
        let mut model = self.cfg.membership.then(|| ModelChecker::new(&root));
        if let Some(m) = model.as_mut() {
            let messages = m.observe(&root);
            self.report.model_checks += m.checks();
            if !messages.is_empty() {
                self.record_violation(Vec::new(), messages);
            }
        }
        self.start = Instant::now();
        self.visited.insert(root.state_hash(), self.cfg.depth);
        let mut path = Vec::with_capacity(self.cfg.depth);
        self.dfs(&root, model.as_ref(), &mut path, Vec::new(), self.cfg.depth);
        self.report.elapsed = self.start.elapsed();
        Ok(self.report)
    }

    fn over_budget(&mut self) -> bool {
        if self.stop {
            return true;
        }
        if self.cfg.max_states > 0 && self.report.states_visited >= self.cfg.max_states {
            self.report.truncated = true;
            self.stop = true;
            return true;
        }
        if let Some(boxed) = self.cfg.time_box {
            // Only consult the clock every 1024 states: Instant::now()
            // is cheap but not free at millions of states.
            if self.report.states_visited.is_multiple_of(1024) && self.start.elapsed() > boxed {
                self.report.truncated = true;
                self.stop = true;
                return true;
            }
        }
        false
    }

    fn wanted(&self, step: &Step) -> bool {
        match step {
            Step::Deliver { .. } | Step::Join { .. } => true,
            Step::Duplicate { .. } => self.cfg.dups,
            Step::Drop { .. } => self.cfg.drops,
            Step::Timer { .. } => self.cfg.timers,
            // The fault budget already gates these, but the filter keeps
            // the intent explicit when a caller sets a budget manually.
            Step::Fail { .. } | Step::Partition { .. } | Step::Merge => self.cfg.membership,
        }
    }

    fn schedule_for(&self, steps: Vec<Step>, expect: Expectation, note: String) -> Schedule {
        Schedule {
            hosts: self.cfg.hosts,
            joiners: self.cfg.joiners.clone(),
            config: self.cfg.config.clone(),
            submissions: self.cfg.submissions.clone(),
            steps,
            expect,
            note,
        }
    }

    fn record_path(&mut self, path: &[Step]) {
        self.report.completed_paths += 1;
        if self.report.corpus.len() < self.cfg.corpus_paths && !path.is_empty() {
            let note = format!(
                "explorer completed path #{} (hosts={}, depth={})",
                self.report.completed_paths, self.cfg.hosts, self.cfg.depth
            );
            let schedule = self.schedule_for(path.to_vec(), Expectation::Clean, note);
            self.report.corpus.push(schedule);
        }
    }

    fn record_violation(&mut self, steps: Vec<Step>, messages: Vec<String>) {
        let original_len = steps.len();
        let note = format!("explorer violation: {}", messages.join("; "));
        let raw = self.schedule_for(steps, Expectation::Violation, note);
        let (schedule, _) = minimize_cached(&raw);
        self.report.violations.push(Violation {
            schedule,
            messages,
            original_len,
        });
        if self.cfg.max_violations > 0 && self.report.violations.len() >= self.cfg.max_violations {
            self.report.truncated = true;
            self.stop = true;
        }
    }

    fn dfs(
        &mut self,
        world: &World,
        model: Option<&ModelChecker>,
        path: &mut Vec<Step>,
        sleep: Vec<Step>,
        depth_left: usize,
    ) {
        self.report.states_visited += 1;
        if self.over_budget() {
            return;
        }
        if depth_left == 0 {
            self.record_path(path);
            return;
        }
        let enabled: Vec<Step> = world
            .enabled()
            .into_iter()
            .filter(|s| self.wanted(s))
            .collect();
        if enabled.is_empty() {
            self.record_path(path);
            return;
        }
        let mut explored: Vec<Step> = Vec::new();
        for step in enabled {
            if self.stop {
                return;
            }
            if sleep.contains(&step) {
                self.report.pruned_sleep += 1;
                continue;
            }
            let mut child = world.clone();
            child.apply_step(&step).expect("enabled steps always apply");
            self.report.transitions += 1;
            let mut messages = child.violations();
            // The abstract model forks with the branch: its freshness
            // and agreement invariants depend on the history of views
            // along *this* path.
            let child_model = model.map(|m| {
                let mut fork = m.clone();
                let model_messages = fork.observe(&child);
                self.report.model_checks += fork.checks() - m.checks();
                messages.extend(model_messages);
                fork
            });
            if !messages.is_empty() {
                path.push(step);
                self.record_violation(path.clone(), messages);
                path.pop();
                // A violating state is a leaf: no point enumerating
                // what the adversary does after safety is already lost.
                explored.push(step);
                continue;
            }
            let hash = child.state_hash();
            let child_depth = depth_left - 1;
            match self.visited.get(&hash) {
                Some(&seen_depth) if seen_depth >= child_depth => {
                    self.report.pruned_visited += 1;
                    explored.push(step);
                    continue;
                }
                _ => {
                    self.visited.insert(hash, child_depth);
                }
            }
            let child_sleep: Vec<Step> = sleep
                .iter()
                .chain(explored.iter())
                .filter(|other| independent(world, other, &step))
                .copied()
                .collect();
            path.push(step);
            self.dfs(&child, child_model.as_ref(), path, child_sleep, child_depth);
            path.pop();
            explored.push(step);
        }
    }
}

/// Whether two steps enabled in the same state commute: applying them
/// in either order reaches the same global state (under the
/// id-insensitive fingerprint).
///
/// Conservative rule: steps conflict when they reference the same
/// in-flight message, or when they act on the same destination
/// participant (a `Drop` acts on no participant, so it conflicts only
/// through its message).
///
/// Fault moves get a sharper rule, because `World` treats a message
/// *blocked* by `reachable` at push time and a message *purged* right
/// after a fault identically under the id-insensitive fingerprint:
///
/// * `Fail{h}` conflicts with steps targeting `h` and with steps on a
///   message addressed to `h` (the purge disables them); it commutes
///   with everything else.
/// * `Partition{mask}` conflicts with steps on a message the cut would
///   purge; timers and joins act on one host, so it commutes with them
///   and with same-side message steps.
/// * `Merge` *re-enables* cross-component sends — a message handled
///   before the merge multicasts into a smaller reachable set than one
///   handled after — so it is dependent with everything.
/// * Faults are mutually dependent: they share the fault budget, and
///   stacked reachability changes do not commute in general.
pub fn independent(world: &World, a: &Step, b: &Step) -> bool {
    if matches!(a, Step::Merge) || matches!(b, Step::Merge) {
        return false;
    }
    let fault = |s: &Step| matches!(s, Step::Fail { .. } | Step::Partition { .. });
    if fault(a) && fault(b) {
        return false;
    }
    if fault(a) || fault(b) {
        let (f, other) = if fault(a) { (a, b) } else { (b, a) };
        return match f {
            Step::Fail { host } => !step_touches_host(world, other, *host),
            Step::Partition { mask } => !step_crosses_cut(world, other, *mask),
            _ => unreachable!("fault() admits only Fail and Partition"),
        };
    }
    // A join re-enables sends toward the joining host — a one-host
    // merge — so it cannot commute with any step that ingests actions
    // (and thus multicasts): the pushes toward the joiner are blocked
    // before the join and delivered after it. Drops and duplicates
    // never push, so the plain target rule below covers them.
    let joins = |s: &Step| matches!(s, Step::Join { .. });
    let pushes = |s: &Step| {
        matches!(
            s,
            Step::Deliver { .. } | Step::Timer { .. } | Step::Join { .. }
        )
    };
    if (joins(a) && pushes(b)) || (joins(b) && pushes(a)) {
        return false;
    }
    let msg_of = |s: &Step| match s {
        Step::Deliver { msg } | Step::Duplicate { msg } | Step::Drop { msg } => Some(*msg),
        Step::Timer { .. } | Step::Join { .. } => None,
        Step::Fail { .. } | Step::Partition { .. } | Step::Merge => None,
    };
    if let (Some(ma), Some(mb)) = (msg_of(a), msg_of(b)) {
        if ma == mb {
            return false;
        }
    }
    match (world.step_target(a), world.step_target(b)) {
        (Some(ta), Some(tb)) => ta != tb,
        _ => true,
    }
}

/// Whether `s` acts on `host`: fires its timer, joins it, or moves a
/// message addressed to it. Unknown shapes answer `true` (stay
/// conservative — dependence is always safe).
fn step_touches_host(world: &World, s: &Step, host: u16) -> bool {
    match s {
        Step::Deliver { msg } | Step::Duplicate { msg } | Step::Drop { msg } => world
            .inflight()
            .iter()
            .find(|m| m.id == *msg)
            .is_none_or(|m| m.to == host),
        Step::Timer { host: h, .. } | Step::Join { host: h } => *h == host,
        Step::Fail { .. } | Step::Partition { .. } | Step::Merge => true,
    }
}

/// Whether `s` moves a message that `Partition{mask}` would purge
/// (sender and destination on opposite sides of the cut). Timers and
/// joins act on a single host and commute with the cut.
fn step_crosses_cut(world: &World, s: &Step, mask: u8) -> bool {
    let side = |h: u16| (mask >> h) & 1;
    match s {
        Step::Deliver { msg } | Step::Duplicate { msg } | Step::Drop { msg } => world
            .inflight()
            .iter()
            .find(|m| m.id == *msg)
            .is_none_or(|m| side(m.from) != side(m.to)),
        Step::Timer { .. } | Step::Join { .. } => false,
        Step::Fail { .. } | Step::Partition { .. } | Step::Merge => true,
    }
}

/// Greedily shrinks a schedule while `still_fails` keeps returning
/// true, by repeatedly deleting single steps until a fixpoint
/// (ddmin-lite: the linear passes of delta debugging without the
/// chunked phase, which at explorer depths ≤ 16 buys nothing).
pub fn minimize_with<F: Fn(&Schedule) -> bool>(schedule: &Schedule, still_fails: F) -> Schedule {
    let mut best = schedule.clone();
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < best.steps.len() {
            let mut candidate = best.clone();
            candidate.steps.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return best;
        }
    }
}

/// Minimizes a violating schedule against the real oracles: a
/// candidate survives only if it still replays end-to-end and still
/// trips at least one oracle.
pub fn minimize(schedule: &Schedule) -> Schedule {
    minimize_with(
        schedule,
        |candidate| matches!(replay_schedule(candidate), Ok(out) if !out.violations.is_empty()),
    )
}

/// Work counters from one [`minimize_cached`] run, for asserting the
/// prefix cache actually cut replay work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Candidate deletions evaluated.
    pub probes: u64,
    /// Total steps executed across all probes (the cost the prefix
    /// cache cuts — the naive minimizer replays each candidate from
    /// step zero).
    pub steps_replayed: u64,
}

/// Like [`minimize`], but judged by `judge` over the replayed final
/// world plus any abstract-model violations observed along the way,
/// and caching the world/model state after every prefix of the current
/// best schedule: probing the deletion of step `i` replays only the
/// suffix `i+1..`, not the whole schedule.
///
/// The naive ddmin-lite pass costs O(n²) step executions per sweep;
/// with the cache the total falls to the sum of suffix lengths, which
/// halves the work even when nothing can be deleted and does far
/// better when deletions succeed early.
pub fn minimize_cached_with<F>(schedule: &Schedule, judge: F) -> (Schedule, MinimizeStats)
where
    F: Fn(&World, &[String]) -> bool,
{
    let mut stats = MinimizeStats::default();
    let mut best = schedule.clone();
    let fresh = || -> Option<(World, ModelChecker)> {
        let world = World::new_with_joiners(
            schedule.hosts,
            &schedule.joiners,
            &schedule.config,
            &schedule.submissions,
        )
        .ok()?;
        let mut model = ModelChecker::new(&world);
        model.observe(&world);
        Some((world, model))
    };
    let Some(root) = fresh() else {
        return (best, stats);
    };
    // snapshots[i] = (world, model) after best.steps[..i], model
    // observed after every step. Deleting a step invalidates only the
    // snapshots *after* it; everything before stays cached across
    // probes and across sweeps.
    let mut snapshots: Vec<(World, ModelChecker)> = vec![root];
    // Replays `steps` on top of `base`, observing the model at each
    // step; None when a step no longer applies.
    let extend = |base: &(World, ModelChecker),
                  steps: &[Step],
                  stats: &mut MinimizeStats|
     -> Option<(World, ModelChecker)> {
        let (mut world, mut model) = base.clone();
        for step in steps {
            world.apply_step(step).ok()?;
            stats.steps_replayed += 1;
            model.observe(&world);
        }
        Some((world, model))
    };
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < best.steps.len() {
            while snapshots.len() <= i {
                let done = snapshots.len();
                match extend(
                    &snapshots[done - 1],
                    &best.steps[done - 1..done],
                    &mut stats,
                ) {
                    Some(next) => snapshots.push(next),
                    // The supposedly-valid prefix no longer applies:
                    // the schedule has diverged from the code under
                    // test; give up on further shrinking.
                    None => return (best, stats),
                }
            }
            stats.probes += 1;
            let verdict = extend(&snapshots[i], &best.steps[i + 1..], &mut stats)
                .map(|(world, model)| {
                    let mut messages = world.violations();
                    messages.extend(model.violations().iter().cloned());
                    judge(&world, &messages)
                })
                .unwrap_or(false);
            if verdict {
                best.steps.remove(i);
                snapshots.truncate(i + 1);
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return (best, stats);
        }
    }
}

/// [`minimize_cached_with`] under the standard judge: the candidate
/// must still trip a concrete oracle or an abstract-model invariant.
/// This is what the explorer runs on every violation it records (model
/// violations are invisible to [`replay_schedule`], which only runs
/// the concrete oracles, so [`minimize`] alone would flatten them).
pub fn minimize_cached(schedule: &Schedule) -> (Schedule, MinimizeStats) {
    minimize_cached_with(schedule, |_, messages| !messages.is_empty())
}

/// Renders an exploration report as the JSON object the CLI and bench
/// emit.
pub fn report_to_json(cfg: &ExploreConfig, report: &ExploreReport) -> String {
    use ar_telemetry::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("hosts");
    w.num_u64(u64::from(cfg.hosts));
    w.key("depth");
    w.num_u64(cfg.depth as u64);
    w.key("config");
    w.str(&cfg.config);
    w.key("membership");
    w.bool(cfg.membership);
    w.key("joiners");
    w.num_u64(cfg.joiners.len() as u64);
    w.key("max_faults");
    w.num_u64(u64::from(cfg.max_faults));
    w.key("model_checks");
    w.num_u64(report.model_checks);
    w.key("states_visited");
    w.num_u64(report.states_visited);
    w.key("transitions");
    w.num_u64(report.transitions);
    w.key("pruned_visited");
    w.num_u64(report.pruned_visited);
    w.key("pruned_sleep");
    w.num_u64(report.pruned_sleep);
    w.key("prune_ratio");
    w.num_f64(report.prune_ratio());
    w.key("completed_paths");
    w.num_u64(report.completed_paths);
    w.key("states_per_sec");
    w.num_f64(report.states_per_sec());
    w.key("elapsed_ms");
    w.num_u64(report.elapsed.as_millis() as u64);
    w.key("truncated");
    w.bool(report.truncated);
    w.key("violations");
    w.begin_array();
    for v in &report.violations {
        w.begin_object();
        w.key("steps");
        w.num_u64(v.schedule.steps.len() as u64);
        w.key("original_steps");
        w.num_u64(v.original_len as u64);
        w.key("messages");
        w.begin_array();
        for m in &v.messages {
            w.str(m);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The timer kinds the explorer can fire, re-exported so callers need
/// not depend on `ar-net` directly for the list.
pub const EXPLORABLE_TIMERS: [ar_core::TimerKind; 5] = TIMER_KINDS;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(hosts: u16, depth: usize) -> ExploreConfig {
        ExploreConfig {
            hosts,
            depth,
            submissions: default_submissions(hosts, 2),
            max_states: 200_000,
            time_box: Some(Duration::from_secs(60)),
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn delivery_only_exploration_is_clean() {
        let cfg = ExploreConfig {
            drops: false,
            dups: false,
            timers: false,
            ..quick_cfg(2, 8)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.states_visited > 1);
        assert!(!report.truncated, "tiny search should not be truncated");
    }

    #[test]
    fn full_adversary_exploration_prunes_and_stays_clean() {
        let report = Explorer::new(quick_cfg(2, 6)).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.pruned_visited + report.pruned_sleep > 0,
            "expected some pruning: {report:?}"
        );
        assert!(report.prune_ratio() > 0.0);
        assert!(report.completed_paths > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = Explorer::new(quick_cfg(2, 5)).run().unwrap();
        let b = Explorer::new(quick_cfg(2, 5)).run().unwrap();
        assert_eq!(a.states_visited, b.states_visited);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.pruned_visited, b.pruned_visited);
        assert_eq!(a.pruned_sleep, b.pruned_sleep);
    }

    #[test]
    fn corpus_paths_are_replayable() {
        let cfg = ExploreConfig {
            corpus_paths: 3,
            ..quick_cfg(2, 5)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(!report.corpus.is_empty());
        for schedule in &report.corpus {
            let out = replay_schedule(schedule).expect("corpus schedule replays");
            assert!(out.matches(Expectation::Clean), "{:?}", out.violations);
        }
    }

    #[test]
    fn state_cap_truncates() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..quick_cfg(3, 12)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.truncated);
        assert!(report.states_visited <= 11);
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_core() {
        // Synthetic predicate: the schedule "fails" while it still
        // contains the Drop of message 7. Everything else is noise the
        // minimizer must delete.
        let noisy = Schedule {
            hosts: 3,
            joiners: vec![],
            config: "accelerated".into(),
            submissions: vec![],
            steps: vec![
                Step::Deliver { msg: 0 },
                Step::Drop { msg: 7 },
                Step::Deliver { msg: 1 },
                Step::Duplicate { msg: 2 },
                Step::Deliver { msg: 3 },
            ],
            expect: Expectation::Violation,
            note: String::new(),
        };
        let min = minimize_with(&noisy, |s| s.steps.contains(&Step::Drop { msg: 7 }));
        assert_eq!(min.steps, vec![Step::Drop { msg: 7 }]);
    }

    #[test]
    fn membership_exploration_checks_the_model_and_stays_clean() {
        let cfg = ExploreConfig {
            membership: true,
            max_faults: 1,
            submissions: vec![],
            dups: false,
            drops: false,
            ..quick_cfg(2, 6)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.model_checks > 0, "model never consulted");
        assert!(report.states_visited > 1);
    }

    #[test]
    fn membership_exploration_enumerates_fails_and_partitions() {
        // With membership off the same search must visit strictly
        // fewer states: fails and partitions add adversary moves.
        let base = ExploreConfig {
            submissions: vec![],
            dups: false,
            drops: false,
            timers: false,
            ..quick_cfg(3, 4)
        };
        let without = Explorer::new(base.clone()).run().unwrap();
        let with = Explorer::new(ExploreConfig {
            membership: true,
            max_faults: 1,
            ..base
        })
        .run()
        .unwrap();
        assert!(
            with.states_visited > without.states_visited,
            "membership alphabet added no states: {} vs {}",
            with.states_visited,
            without.states_visited
        );
        assert!(with.violations.is_empty(), "{:?}", with.violations);
    }

    #[test]
    fn joiner_exploration_reaches_join_episodes() {
        // Timers off leaves only delivers and the join itself, so the
        // first few completed DFS paths already exercise the join.
        let cfg = ExploreConfig {
            hosts: 3,
            joiners: vec![2],
            submissions: vec![],
            dups: false,
            drops: false,
            timers: false,
            max_states: 50_000,
            corpus_paths: 8,
            ..quick_cfg(3, 5)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Some explored path must include the join transition, and the
        // corpus schedules must carry the joiners list so they replay.
        let with_join = report
            .corpus
            .iter()
            .any(|s| s.steps.iter().any(|t| matches!(t, Step::Join { host: 2 })));
        assert!(with_join, "no corpus path exercised the join");
        for schedule in &report.corpus {
            assert_eq!(schedule.joiners, vec![2]);
            let out = replay_schedule(schedule).expect("corpus schedule replays");
            assert!(out.matches(Expectation::Clean), "{:?}", out.violations);
        }
    }

    #[test]
    fn cached_minimizer_matches_naive_and_replays_less() {
        use std::cell::Cell;
        // A clean schedule judged by a property of the final world
        // ("host 0 delivered something"): both minimizers must agree on
        // the shrunken core, and the cached one must execute fewer
        // steps because probes replay only suffixes.
        let mut w = World::new(2, "accelerated", &default_submissions(2, 2)).unwrap();
        let mut steps = Vec::new();
        for _ in 0..14 {
            let Some(first) = w.inflight().first().map(|m| m.id) else {
                break;
            };
            let step = Step::Deliver { msg: first };
            w.apply_step(&step).unwrap();
            steps.push(step);
        }
        assert!(w.deliveries()[0] >= 1, "workload never delivered");
        let schedule = Schedule {
            hosts: 2,
            joiners: vec![],
            config: "accelerated".into(),
            submissions: default_submissions(2, 2),
            steps,
            expect: Expectation::Clean,
            note: String::new(),
        };
        let naive_steps = Cell::new(0u64);
        let naive = minimize_with(&schedule, |c| {
            naive_steps.set(naive_steps.get() + c.steps.len() as u64);
            matches!(replay_schedule(c), Ok(out) if out.deliveries[0] >= 1)
        });
        let (cached, stats) =
            minimize_cached_with(&schedule, |world, _| world.deliveries()[0] >= 1);
        assert_eq!(naive.steps, cached.steps, "minimizers disagree");
        assert!(stats.probes > 0);
        assert!(
            stats.steps_replayed < naive_steps.get(),
            "prefix cache saved nothing: cached={} naive={}",
            stats.steps_replayed,
            naive_steps.get()
        );
    }

    #[test]
    fn independence_rules_match_commutation() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        let t0 = Step::Timer {
            host: 0,
            kind: ar_core::TimerKind::TokenLoss,
        };
        let t2 = Step::Timer {
            host: 2,
            kind: ar_core::TimerKind::TokenLoss,
        };
        assert!(independent(&w, &t0, &t2));
        assert!(!independent(&w, &t0, &t0));
        // The initial token is in flight to host 1: delivering it
        // conflicts with host 1's timer but not host 2's.
        let id = w.inflight()[0].id;
        let deliver = Step::Deliver { msg: id };
        let t1 = Step::Timer {
            host: 1,
            kind: ar_core::TimerKind::TokenLoss,
        };
        assert!(!independent(&w, &deliver, &t1));
        assert!(independent(&w, &deliver, &t2));
        assert!(!independent(&w, &deliver, &Step::Drop { msg: id }));
        // The 0→1 token rides inside component {0, 1}: isolating host 2
        // neither blocks nor purges it, so the cut commutes — but a cut
        // that separates 0 from 1 purges the token and conflicts.
        assert!(independent(&w, &deliver, &Step::Partition { mask: 0b100 }));
        assert!(!independent(&w, &deliver, &Step::Partition { mask: 0b010 }));
        // Failing the destination purges the message; failing a
        // bystander commutes. Merge commutes with nothing, and fault
        // moves conflict with each other through the shared budget.
        assert!(!independent(&w, &deliver, &Step::Fail { host: 1 }));
        assert!(independent(&w, &deliver, &Step::Fail { host: 2 }));
        assert!(!independent(
            &w,
            &Step::Drop { msg: id },
            &Step::Fail { host: 1 }
        ));
        assert!(!independent(&w, &t2, &Step::Merge));
        assert!(!independent(
            &w,
            &Step::Fail { host: 0 },
            &Step::Partition { mask: 0b100 }
        ));
        // A join re-enables sends toward the joiner, so steps that
        // multicast (timers, deliveries) do not commute with it — but
        // pushless drops do.
        assert!(!independent(&w, &t2, &Step::Join { host: 0 }));
        assert!(independent(
            &w,
            &Step::Drop { msg: id },
            &Step::Join { host: 2 }
        ));
    }

    /// Empirical soundness check for the sharper fault rules: whenever
    /// `independent` says two enabled steps commute, applying them in
    /// either order must stay legal and land on the same fingerprint.
    #[test]
    fn independent_pairs_really_commute() {
        fn check_all_pairs(w: &World) -> usize {
            let steps = w.enabled();
            let mut checked = 0;
            for a in &steps {
                for b in &steps {
                    if a == b || !independent(w, a, b) {
                        continue;
                    }
                    let mut ab = w.clone();
                    ab.apply_step(a).expect("a enabled");
                    ab.apply_step(b).unwrap_or_else(|e| {
                        panic!("{} disabled {}: {e}", a.describe(), b.describe())
                    });
                    let mut ba = w.clone();
                    ba.apply_step(b).expect("b enabled");
                    ba.apply_step(a).unwrap_or_else(|e| {
                        panic!("{} disabled {}: {e}", b.describe(), a.describe())
                    });
                    assert_eq!(
                        ab.state_hash(),
                        ba.state_hash(),
                        "{} and {} marked independent but do not commute",
                        a.describe(),
                        b.describe()
                    );
                    checked += 1;
                }
            }
            checked
        }

        // Walk a membership-enabled world a few steps along several
        // prefixes and check every independent pair at every state.
        let subs = default_submissions(3, 1);
        let mut total = 0;
        for prefix in 0..6u64 {
            let mut w = World::new_with_joiners(3, &[2], "accelerated", &subs).unwrap();
            w.set_fault_budget(1);
            for depth in 0..5 {
                total += check_all_pairs(&w);
                let steps = w.enabled();
                if steps.is_empty() {
                    break;
                }
                let pick = ((prefix * 7 + depth * 3) % steps.len() as u64) as usize;
                w.apply_step(&steps[pick]).unwrap();
            }
        }
        assert!(total > 100, "only {total} independent pairs exercised");
    }
}
