//! Bounded depth-first exploration of the protocol's interleaving
//! space.
//!
//! The explorer owns nothing protocol-specific: it drives the
//! [`World`] from `ar_net::replay` — the same deterministic universe
//! the schedule replayer uses — so any path it finds is *by
//! construction* replayable from the emitted schedule file.
//!
//! ## Pruning
//!
//! Two prunes keep the bounded search tractable:
//!
//! * **Visited states.** Each world has a 64-bit fingerprint
//!   ([`World::state_hash`]) that deliberately ignores message
//!   identities, so commuting interleavings reaching the same global
//!   configuration collide. A state already explored with at least as
//!   much remaining depth is not re-expanded.
//! * **Sleep sets (DPOR-style).** After exploring transition `t` from
//!   a state, every sibling explored later carries `t` in its sleep
//!   set; descendants skip `t` while it stays independent of the path
//!   taken. Two steps are *dependent* when they touch the same
//!   in-flight message or the same destination participant — so two
//!   deliveries to distinct participants are explored in only one
//!   order.
//!
//! Combining sleep sets with state caching can, in theory, hide a
//! transition behind a cached state (the classic sleep-set/state-cache
//! interaction). The explorer is a bounded *bug finder*, not a
//! verifier, and accepts that trade for the orders-of-magnitude
//! reduction; DESIGN.md discusses the choice.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ar_net::replay::{
    replay_schedule, Expectation, Schedule, Step, Submission, World, TIMER_KINDS,
};

/// What the explorer should enumerate and how far.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Ring size (2–4 participants is the useful range).
    pub hosts: u16,
    /// Maximum schedule length explored.
    pub depth: usize,
    /// Protocol configuration name (`"accelerated"` or `"original"`).
    pub config: String,
    /// Workload submitted before the ring starts.
    pub submissions: Vec<Submission>,
    /// Hard cap on states visited (0 = unlimited).
    pub max_states: u64,
    /// Wall-clock budget; exploration reports `truncated` when hit.
    pub time_box: Option<Duration>,
    /// Enumerate message-loss steps.
    pub drops: bool,
    /// Enumerate message-duplication steps.
    pub dups: bool,
    /// Enumerate timer-firing steps.
    pub timers: bool,
    /// Stop after this many violations (0 = collect all).
    pub max_violations: usize,
    /// Record up to this many completed clean paths as corpus
    /// schedules.
    pub corpus_paths: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            hosts: 3,
            depth: 10,
            config: "accelerated".into(),
            submissions: default_submissions(3, 2),
            max_states: 2_000_000,
            time_box: Some(Duration::from_secs(120)),
            drops: true,
            dups: true,
            timers: true,
            max_violations: 8,
            corpus_paths: 0,
        }
    }
}

/// The standard exploration workload: `count` agreed-service payloads
/// submitted round-robin across the first hosts, named `h{host}-m{n}`.
pub fn default_submissions(hosts: u16, count: usize) -> Vec<Submission> {
    (0..count)
        .map(|i| Submission {
            host: (i as u16) % hosts,
            payload: format!("h{}-m{}", (i as u16) % hosts, i / hosts as usize),
            service: ar_core::ServiceType::Agreed,
        })
        .collect()
}

/// A safety violation the explorer found, packaged for reproduction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The minimized, replayable schedule reaching the violation.
    pub schedule: Schedule,
    /// The oracle messages observed at the end of the schedule.
    pub messages: Vec<String>,
    /// Schedule length before minimization.
    pub original_len: usize,
}

/// Counters and findings from one exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct world states expanded.
    pub states_visited: u64,
    /// Transitions (step applications) executed.
    pub transitions: u64,
    /// Children skipped because their state hash was already explored
    /// with at least as much remaining depth.
    pub pruned_visited: u64,
    /// Children skipped by the sleep-set rule (a commuting order was
    /// already covered).
    pub pruned_sleep: u64,
    /// Paths that ran to the depth bound or to quiescence without any
    /// oracle firing.
    pub completed_paths: u64,
    /// Violations found (minimized).
    pub violations: Vec<Violation>,
    /// Clean completed paths recorded as corpus schedules.
    pub corpus: Vec<Schedule>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when the state cap or time box cut the search short.
    pub truncated: bool,
}

impl ExploreReport {
    /// States expanded per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.states_visited as f64 / secs
        }
    }

    /// Fraction of generated children that were pruned rather than
    /// expanded.
    pub fn prune_ratio(&self) -> f64 {
        let pruned = self.pruned_visited + self.pruned_sleep;
        let total = pruned + self.transitions;
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// The depth-first explorer. Construct with a config, call
/// [`Explorer::run`].
#[derive(Debug)]
pub struct Explorer {
    cfg: ExploreConfig,
    visited: HashMap<u64, usize>,
    report: ExploreReport,
    start: Instant,
    stop: bool,
}

impl Explorer {
    /// Creates an explorer for `cfg`.
    pub fn new(cfg: ExploreConfig) -> Explorer {
        Explorer {
            cfg,
            visited: HashMap::new(),
            report: ExploreReport::default(),
            start: Instant::now(),
            stop: false,
        }
    }

    /// Runs the bounded search and returns the report.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ar_net::replay::ScheduleError`] only if
    /// the initial world cannot be built (unknown config name).
    pub fn run(mut self) -> Result<ExploreReport, ar_net::replay::ScheduleError> {
        let root = World::new(self.cfg.hosts, &self.cfg.config, &self.cfg.submissions)?;
        self.start = Instant::now();
        self.visited.insert(root.state_hash(), self.cfg.depth);
        let mut path = Vec::with_capacity(self.cfg.depth);
        self.dfs(&root, &mut path, Vec::new(), self.cfg.depth);
        self.report.elapsed = self.start.elapsed();
        Ok(self.report)
    }

    fn over_budget(&mut self) -> bool {
        if self.stop {
            return true;
        }
        if self.cfg.max_states > 0 && self.report.states_visited >= self.cfg.max_states {
            self.report.truncated = true;
            self.stop = true;
            return true;
        }
        if let Some(boxed) = self.cfg.time_box {
            // Only consult the clock every 1024 states: Instant::now()
            // is cheap but not free at millions of states.
            if self.report.states_visited.is_multiple_of(1024) && self.start.elapsed() > boxed {
                self.report.truncated = true;
                self.stop = true;
                return true;
            }
        }
        false
    }

    fn wanted(&self, step: &Step) -> bool {
        match step {
            Step::Deliver { .. } => true,
            Step::Duplicate { .. } => self.cfg.dups,
            Step::Drop { .. } => self.cfg.drops,
            Step::Timer { .. } => self.cfg.timers,
        }
    }

    fn record_path(&mut self, path: &[Step]) {
        self.report.completed_paths += 1;
        if self.report.corpus.len() < self.cfg.corpus_paths && !path.is_empty() {
            self.report.corpus.push(Schedule {
                hosts: self.cfg.hosts,
                config: self.cfg.config.clone(),
                submissions: self.cfg.submissions.clone(),
                steps: path.to_vec(),
                expect: Expectation::Clean,
                note: format!(
                    "explorer completed path #{} (hosts={}, depth={})",
                    self.report.completed_paths, self.cfg.hosts, self.cfg.depth
                ),
            });
        }
    }

    fn record_violation(&mut self, steps: Vec<Step>, messages: Vec<String>) {
        let original_len = steps.len();
        let raw = Schedule {
            hosts: self.cfg.hosts,
            config: self.cfg.config.clone(),
            submissions: self.cfg.submissions.clone(),
            steps,
            expect: Expectation::Violation,
            note: format!("explorer violation: {}", messages.join("; ")),
        };
        let schedule = minimize(&raw);
        self.report.violations.push(Violation {
            schedule,
            messages,
            original_len,
        });
        if self.cfg.max_violations > 0 && self.report.violations.len() >= self.cfg.max_violations {
            self.report.truncated = true;
            self.stop = true;
        }
    }

    fn dfs(&mut self, world: &World, path: &mut Vec<Step>, sleep: Vec<Step>, depth_left: usize) {
        self.report.states_visited += 1;
        if self.over_budget() {
            return;
        }
        if depth_left == 0 {
            self.record_path(path);
            return;
        }
        let enabled: Vec<Step> = world
            .enabled()
            .into_iter()
            .filter(|s| self.wanted(s))
            .collect();
        if enabled.is_empty() {
            self.record_path(path);
            return;
        }
        let mut explored: Vec<Step> = Vec::new();
        for step in enabled {
            if self.stop {
                return;
            }
            if sleep.contains(&step) {
                self.report.pruned_sleep += 1;
                continue;
            }
            let mut child = world.clone();
            child.apply_step(&step).expect("enabled steps always apply");
            self.report.transitions += 1;
            let messages = child.violations();
            if !messages.is_empty() {
                path.push(step);
                self.record_violation(path.clone(), messages);
                path.pop();
                // A violating state is a leaf: no point enumerating
                // what the adversary does after safety is already lost.
                explored.push(step);
                continue;
            }
            let hash = child.state_hash();
            let child_depth = depth_left - 1;
            match self.visited.get(&hash) {
                Some(&seen_depth) if seen_depth >= child_depth => {
                    self.report.pruned_visited += 1;
                    explored.push(step);
                    continue;
                }
                _ => {
                    self.visited.insert(hash, child_depth);
                }
            }
            let child_sleep: Vec<Step> = sleep
                .iter()
                .chain(explored.iter())
                .filter(|other| independent(world, other, &step))
                .copied()
                .collect();
            path.push(step);
            self.dfs(&child, path, child_sleep, child_depth);
            path.pop();
            explored.push(step);
        }
    }
}

/// Whether two steps enabled in the same state commute: applying them
/// in either order reaches the same global state (under the
/// id-insensitive fingerprint).
///
/// Conservative rule: steps conflict when they reference the same
/// in-flight message, or when they act on the same destination
/// participant (a `Drop` acts on no participant, so it conflicts only
/// through its message).
pub fn independent(world: &World, a: &Step, b: &Step) -> bool {
    let msg_of = |s: &Step| match s {
        Step::Deliver { msg } | Step::Duplicate { msg } | Step::Drop { msg } => Some(*msg),
        Step::Timer { .. } => None,
    };
    if let (Some(ma), Some(mb)) = (msg_of(a), msg_of(b)) {
        if ma == mb {
            return false;
        }
    }
    match (world.step_target(a), world.step_target(b)) {
        (Some(ta), Some(tb)) => ta != tb,
        _ => true,
    }
}

/// Greedily shrinks a schedule while `still_fails` keeps returning
/// true, by repeatedly deleting single steps until a fixpoint
/// (ddmin-lite: the linear passes of delta debugging without the
/// chunked phase, which at explorer depths ≤ 16 buys nothing).
pub fn minimize_with<F: Fn(&Schedule) -> bool>(schedule: &Schedule, still_fails: F) -> Schedule {
    let mut best = schedule.clone();
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < best.steps.len() {
            let mut candidate = best.clone();
            candidate.steps.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return best;
        }
    }
}

/// Minimizes a violating schedule against the real oracles: a
/// candidate survives only if it still replays end-to-end and still
/// trips at least one oracle.
pub fn minimize(schedule: &Schedule) -> Schedule {
    minimize_with(
        schedule,
        |candidate| matches!(replay_schedule(candidate), Ok(out) if !out.violations.is_empty()),
    )
}

/// Renders an exploration report as the JSON object the CLI and bench
/// emit.
pub fn report_to_json(cfg: &ExploreConfig, report: &ExploreReport) -> String {
    use ar_telemetry::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("hosts");
    w.num_u64(u64::from(cfg.hosts));
    w.key("depth");
    w.num_u64(cfg.depth as u64);
    w.key("config");
    w.str(&cfg.config);
    w.key("states_visited");
    w.num_u64(report.states_visited);
    w.key("transitions");
    w.num_u64(report.transitions);
    w.key("pruned_visited");
    w.num_u64(report.pruned_visited);
    w.key("pruned_sleep");
    w.num_u64(report.pruned_sleep);
    w.key("prune_ratio");
    w.num_f64(report.prune_ratio());
    w.key("completed_paths");
    w.num_u64(report.completed_paths);
    w.key("states_per_sec");
    w.num_f64(report.states_per_sec());
    w.key("elapsed_ms");
    w.num_u64(report.elapsed.as_millis() as u64);
    w.key("truncated");
    w.bool(report.truncated);
    w.key("violations");
    w.begin_array();
    for v in &report.violations {
        w.begin_object();
        w.key("steps");
        w.num_u64(v.schedule.steps.len() as u64);
        w.key("original_steps");
        w.num_u64(v.original_len as u64);
        w.key("messages");
        w.begin_array();
        for m in &v.messages {
            w.str(m);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The timer kinds the explorer can fire, re-exported so callers need
/// not depend on `ar-net` directly for the list.
pub const EXPLORABLE_TIMERS: [ar_core::TimerKind; 5] = TIMER_KINDS;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(hosts: u16, depth: usize) -> ExploreConfig {
        ExploreConfig {
            hosts,
            depth,
            submissions: default_submissions(hosts, 2),
            max_states: 200_000,
            time_box: Some(Duration::from_secs(60)),
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn delivery_only_exploration_is_clean() {
        let cfg = ExploreConfig {
            drops: false,
            dups: false,
            timers: false,
            ..quick_cfg(2, 8)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.states_visited > 1);
        assert!(!report.truncated, "tiny search should not be truncated");
    }

    #[test]
    fn full_adversary_exploration_prunes_and_stays_clean() {
        let report = Explorer::new(quick_cfg(2, 6)).run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.pruned_visited + report.pruned_sleep > 0,
            "expected some pruning: {report:?}"
        );
        assert!(report.prune_ratio() > 0.0);
        assert!(report.completed_paths > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = Explorer::new(quick_cfg(2, 5)).run().unwrap();
        let b = Explorer::new(quick_cfg(2, 5)).run().unwrap();
        assert_eq!(a.states_visited, b.states_visited);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.pruned_visited, b.pruned_visited);
        assert_eq!(a.pruned_sleep, b.pruned_sleep);
    }

    #[test]
    fn corpus_paths_are_replayable() {
        let cfg = ExploreConfig {
            corpus_paths: 3,
            ..quick_cfg(2, 5)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(!report.corpus.is_empty());
        for schedule in &report.corpus {
            let out = replay_schedule(schedule).expect("corpus schedule replays");
            assert!(out.matches(Expectation::Clean), "{:?}", out.violations);
        }
    }

    #[test]
    fn state_cap_truncates() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..quick_cfg(3, 12)
        };
        let report = Explorer::new(cfg).run().unwrap();
        assert!(report.truncated);
        assert!(report.states_visited <= 11);
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_core() {
        // Synthetic predicate: the schedule "fails" while it still
        // contains the Drop of message 7. Everything else is noise the
        // minimizer must delete.
        let noisy = Schedule {
            hosts: 3,
            config: "accelerated".into(),
            submissions: vec![],
            steps: vec![
                Step::Deliver { msg: 0 },
                Step::Drop { msg: 7 },
                Step::Deliver { msg: 1 },
                Step::Duplicate { msg: 2 },
                Step::Deliver { msg: 3 },
            ],
            expect: Expectation::Violation,
            note: String::new(),
        };
        let min = minimize_with(&noisy, |s| s.steps.contains(&Step::Drop { msg: 7 }));
        assert_eq!(min.steps, vec![Step::Drop { msg: 7 }]);
    }

    #[test]
    fn independence_rules_match_commutation() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        let t0 = Step::Timer {
            host: 0,
            kind: ar_core::TimerKind::TokenLoss,
        };
        let t2 = Step::Timer {
            host: 2,
            kind: ar_core::TimerKind::TokenLoss,
        };
        assert!(independent(&w, &t0, &t2));
        assert!(!independent(&w, &t0, &t0));
        // The initial token is in flight to host 1: delivering it
        // conflicts with host 1's timer but not host 2's.
        let id = w.inflight()[0].id;
        let deliver = Step::Deliver { msg: id };
        let t1 = Step::Timer {
            host: 1,
            kind: ar_core::TimerKind::TokenLoss,
        };
        assert!(!independent(&w, &deliver, &t1));
        assert!(independent(&w, &deliver, &t2));
        assert!(!independent(&w, &deliver, &Step::Drop { msg: id }));
    }
}
