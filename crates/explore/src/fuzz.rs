//! Structure-aware, seeded fuzzing of the wire codec.
//!
//! Coverage-guided fuzzers need instrumentation the offline toolchain
//! does not carry; instead this fuzzer leans on *structure*: every
//! iteration starts from a **valid** frame of a random message kind
//! (so mutations explore the neighborhood of real traffic, not the
//! astronomically larger space of random bytes) and applies a few
//! field-aimed mutations — bit flips, boundary-value overwrites at
//! length/count offsets, truncation, extension, and cross-kind
//! splicing.
//!
//! Three properties are asserted for every candidate input:
//!
//! 1. [`ar_core::wire::decode`] never panics. In safe Rust a panic is
//!    also how an over-read (slice out of bounds) would manifest, so
//!    this subsumes the no-over-read check.
//! 2. Whatever `decode` accepts, `encode` reproduces **byte-exactly**.
//!    This is the canonicality property: decode is injective on its
//!    accepted set, so no two distinct byte strings alias to the same
//!    message (the non-canonical `aru_setter` encoding this fuzzer
//!    flushed out is now rejected with `WireError::NonCanonical`).
//! 3. Valid frames (zero mutations) always decode.
//!
//! Determinism: the only randomness is [`SplitMix64`] seeded from the
//! config, so a failing iteration reproduces from `(seed, iteration)`
//! alone — both are printed in every failure record.

use ar_core::wire::{self, Message};
use ar_core::{
    CommitToken, DataMessage, JoinMessage, MemberInfo, ParticipantId, RingId, Round, Seq,
    ServiceType, Token,
};
use bytes::Bytes;

/// Small, fast, well-distributed PRNG (Steele et al., the Java
/// `SplitMix64` generator). Deterministic across platforms; good
/// enough for mutation scheduling, not for cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

/// Fuzzer parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// PRNG seed; a failure reproduces from `(seed, iteration)`.
    pub seed: u64,
    /// Number of candidate inputs to run.
    pub iterations: u64,
    /// Maximum mutations applied per candidate (0..=max, chosen per
    /// iteration; zero-mutation iterations keep the valid-frame
    /// baseline honest).
    pub max_mutations: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xa11c_e5ee_d000_0001,
            iterations: 20_000,
            max_mutations: 3,
        }
    }
}

/// One property failure, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Which iteration produced the input.
    pub iteration: u64,
    /// The property that failed.
    pub kind: &'static str,
    /// The offending input, hex-encoded.
    pub input_hex: String,
    /// Details (panic payload, diff position, ...).
    pub detail: String,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Candidates executed.
    pub iterations: u64,
    /// Inputs `decode` accepted.
    pub accepted: u64,
    /// Inputs `decode` rejected with a checked error.
    pub rejected: u64,
    /// Property failures (empty on a green run).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every property held on every input.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn gen_pid(rng: &mut SplitMix64) -> ParticipantId {
    ParticipantId::new(rng.below(6) as u16)
}

fn gen_ring_id(rng: &mut SplitMix64) -> RingId {
    RingId::new(gen_pid(rng), rng.below(5))
}

fn gen_seq(rng: &mut SplitMix64) -> Seq {
    // Mix small sequence numbers (the interesting protocol range) with
    // occasional huge ones to probe arithmetic at the top of the space.
    if rng.chance(1, 8) {
        Seq::new(u64::MAX - rng.below(4))
    } else {
        Seq::new(rng.below(64))
    }
}

fn gen_service(rng: &mut SplitMix64) -> ServiceType {
    match rng.below(5) {
        0 => ServiceType::Reliable,
        1 => ServiceType::Fifo,
        2 => ServiceType::Causal,
        3 => ServiceType::Agreed,
        _ => ServiceType::Safe,
    }
}

fn gen_payload(rng: &mut SplitMix64) -> Bytes {
    let len = rng.below(33) as usize;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(rng.next_u64() as u8);
    }
    Bytes::from(v)
}

fn gen_token(rng: &mut SplitMix64) -> Token {
    let rtr_len = rng.below(5) as usize;
    Token {
        ring_id: gen_ring_id(rng),
        round: Round::new(rng.below(32)),
        seq: gen_seq(rng),
        aru: gen_seq(rng),
        aru_setter: if rng.chance(1, 2) {
            Some(gen_pid(rng))
        } else {
            None
        },
        fcc: rng.below(128) as u32,
        rtr: (0..rtr_len).map(|_| gen_seq(rng)).collect(),
    }
}

fn gen_data(rng: &mut SplitMix64) -> DataMessage {
    DataMessage {
        ring_id: gen_ring_id(rng),
        seq: gen_seq(rng),
        pid: gen_pid(rng),
        round: Round::new(rng.below(32)),
        service: gen_service(rng),
        after_token: rng.chance(1, 2),
        payload: gen_payload(rng),
    }
}

fn gen_join(rng: &mut SplitMix64) -> JoinMessage {
    let set = |rng: &mut SplitMix64| {
        let n = rng.below(4) as usize;
        (0..n).map(|_| gen_pid(rng)).collect::<Vec<_>>()
    };
    JoinMessage {
        sender: gen_pid(rng),
        proc_set: set(rng),
        fail_set: set(rng),
        ring_seq: rng.below(16),
    }
}

fn gen_commit(rng: &mut SplitMix64) -> CommitToken {
    let n = rng.below(4) as usize;
    CommitToken {
        ring_id: gen_ring_id(rng),
        memb: (0..n)
            .map(|_| MemberInfo {
                pid: gen_pid(rng),
                old_ring_id: gen_ring_id(rng),
                my_aru: gen_seq(rng),
                high_seq: gen_seq(rng),
                safe_seq: gen_seq(rng),
                filled: rng.chance(1, 2),
            })
            .collect(),
        hop: rng.below(8) as u32,
    }
}

/// Generates a valid frame of a random kind.
pub fn gen_message(rng: &mut SplitMix64) -> Message {
    match rng.below(4) {
        0 => Message::Token(gen_token(rng)),
        1 => Message::Data(gen_data(rng)),
        2 => Message::Join(gen_join(rng)),
        _ => Message::Commit(gen_commit(rng)),
    }
}

/// Boundary values worth writing into any length/count/sequence field.
const BOUNDARY_U32: [u32; 6] = [0, 1, 0x7fff_ffff, 0x8000_0000, u32::MAX - 1, u32::MAX];

/// Applies one structure-aware mutation to `bytes` in place. `spare`
/// is a second valid encoding used for splicing.
fn mutate(rng: &mut SplitMix64, bytes: &mut Vec<u8>, spare: &[u8]) {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return;
    }
    match rng.below(7) {
        // Bit flip anywhere.
        0 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
        }
        // Byte overwrite with an interesting constant.
        1 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] = [0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff][rng.below(6) as usize];
        }
        // Big-endian u32 boundary blast at a random aligned-ish offset:
        // this is what reaches length and count fields.
        2 => {
            if bytes.len() >= 4 {
                let i = rng.below((bytes.len() - 3) as u64) as usize;
                let v = BOUNDARY_U32[rng.below(6) as usize];
                bytes[i..i + 4].copy_from_slice(&v.to_be_bytes());
            }
        }
        // Truncate.
        3 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        // Extend with random trailing bytes (probes the trailing-bytes
        // rejection and count-field over-claims).
        4 => {
            let extra = 1 + rng.below(16) as usize;
            for _ in 0..extra {
                bytes.push(rng.next_u64() as u8);
            }
        }
        // Kind-byte swap: reinterpret the body as another kind.
        5 => {
            bytes[0] = rng.below(6) as u8;
        }
        // Splice: head of this frame, tail of another valid frame.
        _ => {
            let cut = rng.below(bytes.len() as u64) as usize;
            let spare_cut = rng.below(spare.len().max(1) as u64) as usize;
            bytes.truncate(cut);
            bytes.extend_from_slice(&spare[spare_cut.min(spare.len())..]);
        }
    }
}

/// Runs the fuzzer. Deterministic for a given config.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut report = FuzzReport::default();
    // catch_unwind prints each panic through the global hook before
    // unwinding; silence it for the duration so a fuzzing run's output
    // stays readable, then restore.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for iteration in 0..cfg.iterations {
        let base = gen_message(&mut rng);
        let spare = wire::encode(&gen_message(&mut rng)).to_vec();
        let mut bytes = wire::encode(&base).to_vec();
        let mutations = if cfg.max_mutations == 0 {
            0
        } else {
            rng.below(u64::from(cfg.max_mutations) + 1)
        };
        for _ in 0..mutations {
            mutate(&mut rng, &mut bytes, &spare);
        }
        report.iterations += 1;
        let input = bytes.clone();
        let outcome = std::panic::catch_unwind(move || wire::decode(&input));
        match outcome {
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                report.failures.push(FuzzFailure {
                    iteration,
                    kind: "panic",
                    input_hex: hex(&bytes),
                    detail: format!("seed={:#x}: decode panicked: {detail}", cfg.seed),
                });
            }
            Ok(Ok(msg)) => {
                report.accepted += 1;
                let re = wire::encode(&msg);
                if re.as_ref() != bytes.as_slice() {
                    let diff = re
                        .iter()
                        .zip(bytes.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| re.len().min(bytes.len()));
                    report.failures.push(FuzzFailure {
                        iteration,
                        kind: "roundtrip",
                        input_hex: hex(&bytes),
                        detail: format!(
                            "seed={:#x}: re-encode diverges at byte {diff} \
                             (in {} bytes, out {} bytes)",
                            cfg.seed,
                            bytes.len(),
                            re.len()
                        ),
                    });
                }
                if mutations == 0 {
                    // Sanity: decode(encode(m)) must equal m for valid
                    // frames — byte equality above already implies it,
                    // but assert the semantic level too.
                    debug_assert_eq!(msg, base);
                }
            }
            Ok(Err(_)) => {
                report.rejected += 1;
                if mutations == 0 {
                    report.failures.push(FuzzFailure {
                        iteration,
                        kind: "valid-rejected",
                        input_hex: hex(&bytes),
                        detail: format!("seed={:#x}: unmutated valid frame was rejected", cfg.seed),
                    });
                }
            }
        }
    }
    std::panic::set_hook(saved_hook);
    report
}

/// Renders a fuzz report as the JSON object the CLI emits.
pub fn report_to_json(cfg: &FuzzConfig, report: &FuzzReport) -> String {
    use ar_telemetry::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("seed");
    w.num_u64(cfg.seed);
    w.key("iterations");
    w.num_u64(report.iterations);
    w.key("accepted");
    w.num_u64(report.accepted);
    w.key("rejected");
    w.num_u64(report.rejected);
    w.key("green");
    w.bool(report.is_green());
    w.key("failures");
    w.begin_array();
    for f in &report.failures {
        w.begin_object();
        w.key("iteration");
        w.num_u64(f.iteration);
        w.key("kind");
        w.str(f.kind);
        w.key("detail");
        w.str(&f.detail);
        w.key("input_hex");
        w.str(&f.input_hex);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn valid_frames_always_roundtrip() {
        let cfg = FuzzConfig {
            seed: 7,
            iterations: 500,
            max_mutations: 0,
        };
        let report = run(&cfg);
        assert!(report.is_green(), "{:?}", report.failures);
        assert_eq!(report.accepted, 500);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn mutated_frames_never_panic_and_roundtrip_on_accept() {
        let report = run(&FuzzConfig {
            seed: 0xdead_beef,
            iterations: 5_000,
            max_mutations: 3,
        });
        assert!(report.is_green(), "{:?}", report.failures);
        // The mutation engine must actually exercise both outcomes.
        assert!(report.accepted > 0, "no input was ever accepted");
        assert!(report.rejected > 0, "no input was ever rejected");
    }

    #[test]
    fn fuzzing_is_reproducible() {
        let cfg = FuzzConfig {
            seed: 99,
            iterations: 300,
            max_mutations: 2,
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }
}
