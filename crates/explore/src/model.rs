//! An executable abstract model of the token ring + membership
//! consensus, in the style of a compact state-machine specification: a
//! handful of per-node state variables, and a list of inductive-style
//! invariants over them. The model is the **oracle list**; the
//! explorer is the checker — at every explored node the concrete
//! [`ar_net::replay::World`] is projected onto the model state and the
//! invariants are evaluated.
//!
//! Model state (per node `n`, all read off the concrete world):
//!
//! | variable       | meaning                                         |
//! |----------------|-------------------------------------------------|
//! | `view[n]`      | the ring id `n` currently has installed         |
//! | `members[n]`   | the member list of `view[n]`                    |
//! | `frontier[n]`  | round of the last ring token `n` handled        |
//! | `failed[n]`    | environment flag: `n` silently stopped          |
//!
//! Auxiliary (history) state the checker threads along each explored
//! path: the previous `view[n]` per node, a global map from ring id to
//! the member list it was first observed with, and each ring's highest
//! observed `frontier` (so a member leaving a ring does not make that
//! ring's stale tokens look live again).
//!
//! Invariants (checked at every explored state, over non-failed
//! nodes):
//!
//! | id | property                    | statement                                                                  |
//! |----|-----------------------------|----------------------------------------------------------------------------|
//! | I1 | self-inclusion              | `n ∈ members[n]`                                                           |
//! | I2 | ring freshness              | when `view[n]` changes, the new ring seq strictly exceeds the old          |
//! | I3 | view agreement              | `view[a] = view[b] ⇒ members[a] = members[b]` (across nodes *and* history) |
//! | I4 | at most one token per ring  | per ring, the in-flight tokens ahead of every member's frontier carry at most one distinct round |
//!
//! I3 is virtual synchrony's core agreement obligation restated over
//! instantaneous state (the delivery-ordering half lives in
//! `ar-core::checker::EvsChecker`, which the world already runs); I4
//! is the "at most one token per component" safety property — a ring
//! is exactly the consensus object a component installs, so two live
//! tokens on one ring mean two interleaved total orders. Stale
//! retransmitted copies are *not* live: a token round some member has
//! already handled can only be dropped on receipt, so only rounds
//! strictly beyond every member's frontier count. Rings no node has
//! installed are skipped — during Recovery the forming ring's token
//! legitimately circulates before anyone installs it.

use std::collections::BTreeMap;

use ar_core::{Message, ParticipantId, RingId};
use ar_net::replay::World;

/// Projects a concrete [`World`] onto the abstract model state and
/// checks every model invariant; cloneable so the explorer can fork it
/// along each DFS branch (I2/I3 need per-path history).
#[derive(Debug, Clone, Default)]
pub struct ModelChecker {
    /// Last ring id seen installed at each node.
    prev_view: Vec<Option<RingId>>,
    /// First member list observed for each ring id, across nodes and
    /// time along this path.
    ring_members: BTreeMap<RingId, Vec<ParticipantId>>,
    /// Highest token round any node was ever seen to have handled on
    /// each ring. Persistent across observations: a member that moves
    /// to a new ring (or fails) must not *lower* the old ring's
    /// frontier, or its stale retransmitted tokens would look live.
    ring_frontier: BTreeMap<RingId, u64>,
    /// Invariant evaluations performed (for throughput reporting).
    checks: u64,
    violations: Vec<String>,
}

impl ModelChecker {
    /// A checker primed with the world's initial views (so I2 catches
    /// a non-fresh ring installed by the *first* episode).
    pub fn new(world: &World) -> ModelChecker {
        let mut c = ModelChecker {
            prev_view: vec![None; world.hosts() as usize],
            ..ModelChecker::default()
        };
        for h in 0..world.hosts() {
            let ring = world.participant(h).ring();
            c.prev_view[h as usize] = Some(ring.id());
            c.ring_members
                .entry(ring.id())
                .or_insert_with(|| ring.members().to_vec());
        }
        c
    }

    /// Checks every invariant against `world`, records and returns the
    /// violations found by *this* observation (empty when green).
    pub fn observe(&mut self, world: &World) -> Vec<String> {
        let mut found = Vec::new();
        let n = world.hosts();
        // I1 + I2 + I3 per node.
        for h in 0..n {
            if world.is_failed(h) {
                continue;
            }
            self.checks += 1;
            let ring = world.participant(h).ring();
            let (view, members) = (ring.id(), ring.members());
            if !members.contains(&ParticipantId::new(h)) {
                found.push(format!(
                    "model I1 (self-inclusion): P{h} installed ring {view:?} \
                     without itself: {members:?}"
                ));
            }
            let slot = &mut self.prev_view[h as usize];
            if let Some(prev) = *slot {
                if prev != view && view.ring_seq() <= prev.ring_seq() {
                    found.push(format!(
                        "model I2 (ring freshness): P{h} moved from {prev:?} to \
                         {view:?} without a strictly larger ring seq"
                    ));
                }
            }
            *slot = Some(view);
            match self.ring_members.get(&view) {
                Some(known) if known != members => {
                    found.push(format!(
                        "model I3 (view agreement): ring {view:?} observed with \
                         members {members:?} at P{h} but {known:?} elsewhere"
                    ));
                }
                Some(_) => {}
                None => {
                    self.ring_members.insert(view, members.to_vec());
                }
            }
        }
        // I4: at most one live token per ring.
        for h in 0..n {
            if world.is_failed(h) {
                continue;
            }
            let p = world.participant(h);
            let e = self.ring_frontier.entry(p.ring().id()).or_insert(0);
            *e = (*e).max(p.current_round().as_u64());
        }
        let mut live: BTreeMap<RingId, Vec<u64>> = BTreeMap::new();
        for m in world.inflight() {
            let Message::Token(ref tok) = m.msg else {
                continue;
            };
            // Skip rings nobody has ever installed (forming rings) and
            // stale copies at or behind the ring's frontier.
            let Some(&f) = self.ring_frontier.get(&tok.ring_id) else {
                continue;
            };
            let round = tok.round.as_u64();
            if round > f {
                let rounds = live.entry(tok.ring_id).or_default();
                if !rounds.contains(&round) {
                    rounds.push(round);
                }
            }
        }
        for (ring, rounds) in live {
            self.checks += 1;
            if rounds.len() > 1 {
                found.push(format!(
                    "model I4 (one token per ring): ring {ring:?} has {} live \
                     token rounds in flight: {rounds:?}",
                    rounds.len()
                ));
            }
        }
        self.violations.extend(found.iter().cloned());
        found
    }

    /// Every violation accumulated along this path.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Invariant evaluations performed so far (throughput metric).
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_net::replay::Step;

    #[test]
    fn fresh_world_satisfies_every_invariant() {
        let w = World::new(3, "accelerated", &[]).unwrap();
        let mut m = ModelChecker::new(&w);
        assert!(m.observe(&w).is_empty());
        assert!(m.violations().is_empty());
        assert!(m.checks() > 0);
    }

    #[test]
    fn clean_circulation_stays_green() {
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        let mut m = ModelChecker::new(&w);
        for _ in 0..30 {
            let Some(first) = w.inflight().first().map(|x| x.id) else {
                break;
            };
            w.apply_step(&Step::Deliver { msg: first }).unwrap();
            assert!(m.observe(&w).is_empty(), "{:?}", m.violations());
        }
    }

    #[test]
    fn duplicated_token_is_not_a_live_second_token() {
        // A duplicate shares the original's round: I4 must not fire on
        // bounded duplication, only on genuinely distinct live rounds.
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        let mut m = ModelChecker::new(&w);
        let id = w.inflight()[0].id;
        w.apply_step(&Step::Duplicate { msg: id }).unwrap();
        assert!(m.observe(&w).is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn failed_hosts_are_exempt_from_node_invariants() {
        let mut w = World::new(3, "accelerated", &[]).unwrap();
        w.set_fault_budget(1);
        w.apply_step(&Step::Fail { host: 2 }).unwrap();
        let mut m = ModelChecker::new(&w);
        assert!(m.observe(&w).is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn join_episode_keeps_invariants_and_updates_history() {
        let mut w = World::new_with_joiners(3, &[2], "accelerated", &[]).unwrap();
        let mut m = ModelChecker::new(&w);
        assert!(m.observe(&w).is_empty());
        w.apply_step(&Step::Join { host: 2 }).unwrap();
        for _ in 0..400 {
            let next = w
                .inflight()
                .first()
                .map(|x| Step::Deliver { msg: x.id })
                .or_else(|| {
                    w.enabled().into_iter().find(|s| {
                        matches!(
                            s,
                            Step::Timer {
                                kind: ar_core::TimerKind::Join
                                    | ar_core::TimerKind::ConsensusTimeout
                                    | ar_core::TimerKind::CommitTimeout,
                                ..
                            }
                        )
                    })
                });
            let Some(step) = next else { break };
            w.apply_step(&step).unwrap();
            assert!(m.observe(&w).is_empty(), "{:?}", m.violations());
        }
        // The episode advanced at least one node past its bootstrap
        // ring, so the history map saw more than the initial views.
        assert!(m.ring_members.len() > 2, "{:?}", m.ring_members);
    }
}
