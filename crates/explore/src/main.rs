//! `ar-explore` — CLI front end for the state-space explorer and the
//! wire fuzzer.
//!
//! ```text
//! ar-explore explore [--hosts N] [--depth D] [--config NAME]
//!                    [--subs N] [--max-states N] [--time-box SECS]
//!                    [--membership] [--joiners N] [--max-faults N]
//!                    [--no-drops] [--no-dups] [--no-timers]
//!                    [--emit-corpus DIR] [--corpus-count K]
//!                    [--emit-violations DIR] [--json]
//! ar-explore fuzz    [--seed N] [--iterations N] [--max-mutations N] [--json]
//! ar-explore replay  FILE...
//! ```
//!
//! Exit status: 0 when everything is green, 1 when the explorer found
//! a violation, the fuzzer found a property failure, or a replayed
//! schedule diverged from its recorded expectation; 2 on usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use ar_explore::explorer::{self, default_submissions, ExploreConfig, Explorer};
use ar_explore::fuzz::{self, FuzzConfig};
use ar_net::replay::{regression_stub, replay_schedule, Expectation, Schedule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => cmd_explore(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("enabled") => cmd_enabled(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
ar-explore: systematic testing for the Accelerated Ring protocol core

USAGE:
  ar-explore explore [--hosts N] [--depth D] [--config NAME] [--subs N]
                     [--max-states N] [--time-box SECS]
                     [--membership]   (enable join/fail/partition/merge moves
                                       and check the abstract membership model)
                     [--joiners N]    (last N hosts start outside the ring)
                     [--max-faults N] (fail/partition budget, default 1)
                     [--no-drops] [--no-dups] [--no-timers]
                     [--emit-corpus DIR] [--corpus-count K]
                     [--emit-violations DIR] [--json]
  ar-explore fuzz    [--seed N] [--iterations N] [--max-mutations N] [--json]
  ar-explore replay  FILE...
  ar-explore enabled FILE      (replay FILE, then list the enabled steps)
";

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args }
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => parse_u64(v).ok_or_else(|| format!("{name} wants a number, got {v:?}")),
        }
    }
}

fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hexpart) = v.strip_prefix("0x") {
        u64::from_str_radix(hexpart, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let flags = Flags::new(args);
    let cfg = match build_explore_config(&flags) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let json = flags.has("--json");
    let corpus_dir = flags.value("--emit-corpus").map(PathBuf::from);
    let violations_dir = flags.value("--emit-violations").map(PathBuf::from);
    let report = match Explorer::new(cfg.clone()).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exploration failed to start: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = corpus_dir {
        if let Err(e) = emit_corpus(&dir, &report.corpus) {
            eprintln!("failed to write corpus: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &violations_dir {
        if let Err(e) = emit_violations(dir, &report.violations) {
            eprintln!("failed to write violations: {e}");
            return ExitCode::from(2);
        }
    }
    if json {
        println!("{}", explorer::report_to_json(&cfg, &report));
    } else {
        println!(
            "explored {} states / {} transitions in {:?} ({:.0} states/s{})",
            report.states_visited,
            report.transitions,
            report.elapsed,
            report.states_per_sec(),
            if report.truncated { ", TRUNCATED" } else { "" },
        );
        println!(
            "pruned: {} visited-state, {} sleep-set (prune ratio {:.2})",
            report.pruned_visited,
            report.pruned_sleep,
            report.prune_ratio()
        );
        println!("completed paths: {}", report.completed_paths);
        for (i, v) in report.violations.iter().enumerate() {
            println!(
                "VIOLATION {}: {} (schedule {} steps, minimized from {})",
                i,
                v.messages.join("; "),
                v.schedule.steps.len(),
                v.original_len
            );
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn build_explore_config(flags: &Flags<'_>) -> Result<ExploreConfig, String> {
    let hosts = flags.num("--hosts", 3)? as u16;
    if !(2..=4).contains(&hosts) {
        return Err(format!("--hosts must be 2..=4, got {hosts}"));
    }
    let depth = flags.num("--depth", 10)? as usize;
    let subs = flags.num("--subs", 2)? as usize;
    let time_box = flags.num("--time-box", 120)?;
    let joiner_count = flags.num("--joiners", 0)? as u16;
    if joiner_count >= hosts {
        return Err(format!(
            "--joiners must leave at least one seed host, got {joiner_count} of {hosts}"
        ));
    }
    // The last `--joiners N` hosts start outside the ring and join on
    // demand; submissions go to the seed members only.
    let joiners: Vec<u16> = (hosts - joiner_count..hosts).collect();
    Ok(ExploreConfig {
        hosts,
        depth,
        config: flags.value("--config").unwrap_or("accelerated").to_owned(),
        submissions: default_submissions(hosts - joiner_count, subs),
        joiners,
        membership: flags.has("--membership"),
        max_faults: flags.num("--max-faults", 1)? as u8,
        max_states: flags.num("--max-states", 2_000_000)?,
        time_box: if time_box == 0 {
            None
        } else {
            Some(Duration::from_secs(time_box))
        },
        drops: !flags.has("--no-drops"),
        dups: !flags.has("--no-dups"),
        timers: !flags.has("--no-timers"),
        max_violations: flags.num("--max-violations", 8)? as usize,
        corpus_paths: flags.num("--corpus-count", 3)? as usize,
    })
}

fn emit_corpus(dir: &Path, corpus: &[Schedule]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, schedule) in corpus.iter().enumerate() {
        let path = dir.join(format!("explore_path_{i:03}.json"));
        std::fs::write(&path, schedule.to_json())?;
        println!("wrote corpus schedule {}", path.display());
    }
    Ok(())
}

fn emit_violations(dir: &Path, violations: &[explorer::Violation]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, v) in violations.iter().enumerate() {
        let path = dir.join(format!("violation_{i:03}.json"));
        std::fs::write(&path, v.schedule.to_json())?;
        let stub = regression_stub(
            &format!("replays_violation_{i:03}"),
            &format!("tests/corpus/violation_{i:03}.json"),
            Expectation::Violation,
        );
        let stub_path = dir.join(format!("violation_{i:03}.stub.rs"));
        std::fs::write(&stub_path, stub)?;
        println!(
            "wrote violation schedule {} (+ regression stub {})",
            path.display(),
            stub_path.display()
        );
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let flags = Flags::new(args);
    let defaults = FuzzConfig::default();
    let cfg = match (|| -> Result<FuzzConfig, String> {
        Ok(FuzzConfig {
            seed: flags.num("--seed", defaults.seed)?,
            iterations: flags.num("--iterations", defaults.iterations)?,
            max_mutations: flags.num("--max-mutations", u64::from(defaults.max_mutations))? as u32,
        })
    })() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = fuzz::run(&cfg);
    if flags.has("--json") {
        println!("{}", fuzz::report_to_json(&cfg, &report));
    } else {
        println!(
            "fuzzed {} inputs (seed {:#x}): {} accepted, {} rejected, {} failures",
            report.iterations,
            cfg.seed,
            report.accepted,
            report.rejected,
            report.failures.len()
        );
        for f in &report.failures {
            println!(
                "FAILURE at iteration {} [{}]: {}\n  input: {}",
                f.iteration, f.kind, f.detail, f.input_hex
            );
        }
    }
    if report.is_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays a schedule, then prints the world's enabled steps and
/// in-flight messages — the tool for crafting corpus schedules by
/// hand.
fn cmd_enabled(files: &[String]) -> ExitCode {
    let Some(file) = files.first() else {
        eprintln!("enabled wants a schedule file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let run = || -> Result<(), String> {
        let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
        let schedule = Schedule::from_json(&text).map_err(|e| e.to_string())?;
        let mut world = ar_net::replay::World::new_with_joiners(
            schedule.hosts,
            &schedule.joiners,
            &schedule.config,
            &schedule.submissions,
        )
        .map_err(|e| e.to_string())?;
        for (i, step) in schedule.steps.iter().enumerate() {
            world
                .apply_step(step)
                .map_err(|e| format!("step {i} ({}): {e}", step.describe()))?;
        }
        println!("violations: {:?}", world.violations());
        println!("deliveries: {:?}", world.deliveries());
        for m in world.inflight() {
            println!(
                "inflight #{} -> host {} (dup budget {})",
                m.id, m.to, m.dup_left
            );
        }
        for step in world.enabled() {
            println!("enabled: {}", step.describe());
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{file}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("replay wants at least one schedule file\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut bad = 0usize;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                bad += 1;
                continue;
            }
        };
        let schedule = match Schedule::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                bad += 1;
                continue;
            }
        };
        match replay_schedule(&schedule) {
            Ok(outcome) => {
                let ok = outcome.matches(schedule.expect);
                println!(
                    "{file}: {} steps, {} violations, hash {:#018x} — {}",
                    outcome.steps_applied,
                    outcome.violations.len(),
                    outcome.final_hash,
                    if ok {
                        "matches expectation"
                    } else {
                        "DIVERGED"
                    }
                );
                if !ok {
                    for v in &outcome.violations {
                        println!("  {v}");
                    }
                    bad += 1;
                }
            }
            Err(e) => {
                eprintln!("{file}: replay failed: {e}");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
