//! Kill -9 chaos against real `ard` processes: a three-daemon ring on
//! localhost UDP with durable logs and seeded datagram loss. One
//! daemon is SIGKILLed mid-run, restarted, SIGKILLed again
//! mid-recovery, and restarted once more. The test then verifies the
//! durability contract from the outside:
//!
//! * no Safe message surfaced to a client is missing from its
//!   daemon's on-disk log — even for the daemon that never got to
//!   exit cleanly (Safe delivery is gated on durability);
//! * the surviving clients observed identical Safe streams
//!   (total order is preserved across the faults).

use std::net::{TcpListener, UdpSocket};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ar_daemon::{ClientEvent, RemoteClient};
use ar_log::read_log_dir;
use bytes::Bytes;

fn wait_for<F: FnMut() -> bool>(mut f: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Reserves `n` local UDP ports and `m` TCP ports by binding to :0.
/// The sockets are dropped before use; tests accept the small reuse
/// race in exchange for parallel-safe port picking.
fn pick_ports(udp: usize, tcp: usize) -> (Vec<u16>, Vec<u16>) {
    let us: Vec<UdpSocket> = (0..udp)
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    let ts: Vec<TcpListener> = (0..tcp)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    (
        us.iter().map(|s| s.local_addr().unwrap().port()).collect(),
        ts.iter().map(|l| l.local_addr().unwrap().port()).collect(),
    )
}

struct Ard(Child);

impl Ard {
    fn spawn(conf: &std::path::Path, id: u16, log_dir: &std::path::Path, loss: bool) -> Ard {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ard"));
        cmd.arg("--log-dir")
            .arg(log_dir)
            .arg("--fsync")
            .arg("every:4");
        if loss {
            cmd.arg("--loss").arg("0.02").arg("--loss-seed").arg("9");
        }
        cmd.arg(conf).arg(id.to_string());
        cmd.stdout(Stdio::null()).stderr(Stdio::null());
        Ard(cmd.spawn().expect("spawn ard"))
    }

    /// SIGKILL — the process gets no chance to flush or fsync.
    fn kill9(mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Ard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Connects with retries: the daemon binds its client listener a
/// moment after the process starts.
fn connect(addr: &str, name: &str) -> RemoteClient {
    let addr: std::net::SocketAddr = addr.parse().unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match RemoteClient::connect(addr, name) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {name} to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Drains `c`, appending Safe payloads to `stream` and tracking the
/// latest group size.
fn drain_into(c: &mut RemoteClient, stream: &mut Vec<Bytes>, members: &mut usize) {
    for ev in c.drain() {
        match ev {
            ClientEvent::Message { payload, .. } => stream.push(payload),
            ClientEvent::Membership { members: m, .. } => *members = m.len(),
            _ => {}
        }
    }
}

#[test]
fn kill9_mid_recovery_loses_no_safe_delivery() {
    let base = std::env::temp_dir().join(format!("ar-durable-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let (udp, tcp) = pick_ports(6, 3);
    let mut conf = String::from("protocol accelerated\n");
    for i in 0..3 {
        conf.push_str(&format!(
            "daemon {i} token=127.0.0.1:{} data=127.0.0.1:{} clients=127.0.0.1:{}\n",
            udp[2 * i],
            udp[2 * i + 1],
            tcp[i],
        ));
    }
    let conf_path = base.join("ar.conf");
    std::fs::write(&conf_path, conf).unwrap();
    let log_dir = |i: usize| base.join(format!("d{i}"));
    let client_addr = |i: usize| format!("127.0.0.1:{}", tcp[i]);

    let d0 = Ard::spawn(&conf_path, 0, &log_dir(0), false);
    let d1 = Ard::spawn(&conf_path, 1, &log_dir(1), true); // seeded loss
    let d2 = Ard::spawn(&conf_path, 2, &log_dir(2), false);

    let mut c0 = connect(&client_addr(0), "c0");
    let mut c1 = connect(&client_addr(1), "c1");
    let mut c2 = connect(&client_addr(2), "c2");
    c0.join("g").unwrap();
    c1.join("g").unwrap();
    c2.join("g").unwrap();

    let (mut s0, mut s1, mut s2) = (Vec::new(), Vec::new(), Vec::new());
    let (mut m0, mut m1, mut m2) = (0usize, 0usize, 0usize);
    assert!(
        wait_for(
            || {
                drain_into(&mut c0, &mut s0, &mut m0);
                drain_into(&mut c1, &mut s1, &mut m1);
                drain_into(&mut c2, &mut s2, &mut m2);
                m0 == 3 && m1 == 3 && m2 == 3
            },
            30
        ),
        "3-member group forms (got {m0}/{m1}/{m2})"
    );

    // Safe traffic from every corner of the ring.
    for k in 0..4 {
        for (c, who) in [(&mut c0, "c0"), (&mut c1, "c1"), (&mut c2, "c2")] {
            c.multicast(
                &["g"],
                ar_core::ServiceType::Safe,
                Bytes::from(format!("{who}-m{k}")),
            )
            .unwrap();
        }
    }
    assert!(
        wait_for(
            || {
                drain_into(&mut c0, &mut s0, &mut m0);
                drain_into(&mut c1, &mut s1, &mut m1);
                drain_into(&mut c2, &mut s2, &mut m2);
                s0.len() >= 12 && s1.len() >= 12 && s2.len() >= 12
            },
            30
        ),
        "safe traffic delivered everywhere ({}/{}/{})",
        s0.len(),
        s1.len(),
        s2.len()
    );

    // kill -9 the lossy daemon: no flush, no fsync, no goodbye.
    d1.kill9();
    drop(c1);
    assert!(
        wait_for(
            || {
                drain_into(&mut c0, &mut s0, &mut m0);
                drain_into(&mut c2, &mut s2, &mut m2);
                m0 == 2 && m2 == 2
            },
            30
        ),
        "survivors reconfigure after kill -9 (got {m0}/{m2})"
    );

    // Restart from disk, then kill -9 again while it is recovering and
    // merging back — the second incarnation may or may not have
    // rejoined yet; either way its disk must only ever grow.
    let d1b = Ard::spawn(&conf_path, 1, &log_dir(1), true);
    std::thread::sleep(Duration::from_millis(300));
    d1b.kill9();

    // Third incarnation gets to live; the ring heals around it.
    let _d1c = Ard::spawn(&conf_path, 1, &log_dir(1), true);
    let mut c1b = connect(&client_addr(1), "c1b");
    c1b.join("g").unwrap();
    let mut s1b = Vec::new();
    let mut m1b = 0usize;
    assert!(
        wait_for(
            || {
                drain_into(&mut c0, &mut s0, &mut m0);
                drain_into(&mut c1b, &mut s1b, &mut m1b);
                drain_into(&mut c2, &mut s2, &mut m2);
                m0 == 3 && m1b == 3 && m2 == 3
            },
            40
        ),
        "group re-forms after two kill -9s (got {m0}/{m1b}/{m2})"
    );

    // Post-chaos Safe traffic flows end-to-end again.
    c0.multicast(
        &["g"],
        ar_core::ServiceType::Safe,
        Bytes::from_static(b"post-chaos"),
    )
    .unwrap();
    assert!(
        wait_for(
            || {
                drain_into(&mut c0, &mut s0, &mut m0);
                drain_into(&mut c1b, &mut s1b, &mut m1b);
                drain_into(&mut c2, &mut s2, &mut m2);
                [&s0, &s1b, &s2]
                    .iter()
                    .all(|s| s.iter().any(|p| p.as_ref() == b"post-chaos"))
            },
            30
        ),
        "post-chaos safe delivery reaches every client"
    );

    // Survivor streams: c0 and c2 sat in the same component the whole
    // run, so their Safe streams must be identical — the total order
    // survived the chaos.
    assert_eq!(s0, s2, "survivor Safe streams diverged");

    // SIGKILL everything and audit the disks. Safe delivery is gated
    // on durability, so every payload a client observed must be in its
    // daemon's log even though no daemon exited cleanly.
    drop(d0);
    drop(d2);
    drop(_d1c);
    for (i, stream) in [(0usize, &s0), (2, &s2)] {
        let rec = read_log_dir(&log_dir(i)).expect("scan log dir");
        assert!(rec.records > 0, "daemon {i} journalled records");
        // Client payloads ride inside daemon envelopes, and the daemon
        // may pack several client messages into one protocol record:
        // check ordered containment of the observed stream in the
        // concatenated logged byte stream.
        let joined: Vec<u8> = rec
            .deliveries
            .iter()
            .flat_map(|(_, d)| d.payload.iter().copied())
            .collect();
        let mut pos = 0usize;
        for p in stream.iter() {
            let found = joined[pos..].windows(p.len()).position(|w| w == p.as_ref());
            match found {
                Some(at) => pos += at + p.len(),
                None => panic!(
                    "daemon {i}: Safe-delivered {:?} missing from (or out of order in) its log",
                    String::from_utf8_lossy(p)
                ),
            }
        }
    }
    // The twice-killed daemon's disk spans all three incarnations and
    // recovery never shrank it below what its clients saw.
    let rec = read_log_dir(&log_dir(1)).expect("scan killed daemon's log");
    assert!(rec.records > 0, "killed daemon journalled records");
    let joined: Vec<u8> = rec
        .deliveries
        .iter()
        .flat_map(|(_, d)| d.payload.iter().copied())
        .collect();
    for p in s1.iter() {
        assert!(
            joined.windows(p.len()).any(|w| w == p.as_ref()),
            "kill -9 lost Safe-delivered {:?}",
            String::from_utf8_lossy(p)
        );
    }

    std::fs::remove_dir_all(&base).unwrap();
}
