//! Session-resumption chaos: connections are severed (and, in the
//! process-level scenario, the whole daemon SIGKILLed and restarted
//! on its durable log) while publishers and a subscriber stream
//! cross-ring traffic, and the transcript is audited for the
//! service-tier contract:
//!
//! * **exactly-once** — no delivery appears twice within a session
//!   (including across any number of resumes);
//! * **gap-free per-publisher FIFO** — each publisher's messages
//!   arrive in publish order with nothing missing, even though the
//!   publishers alternate between groups on different ring shards and
//!   every participant loses its connection mid-stream;
//! * **resume accounting** — the server reports the resumes on its
//!   stats surface, and a server with parking disabled rejects the
//!   token and falls back to a fresh session (surfaced to the
//!   application as `Reconnected { resumed: false }`).

use std::net::TcpListener;
use std::net::UdpSocket;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ar_core::{Participant, ParticipantId, ProtocolConfig, RingId, ServiceType};
use ar_daemon::{DaemonConfig, ShardedDaemon};
use ar_net::LoopbackNet;
use ar_svc::{serve_clients_sharded, SvcClient, SvcConfig, SvcEvent, SvcListeners};
use bytes::Bytes;
use std::collections::HashMap;

const DEADLINE: Duration = Duration::from_secs(90);

fn sharded_daemon(rings: usize) -> ShardedDaemon {
    ShardedDaemon::spawn(rings, |k| {
        let pid = ParticipantId::new(0);
        let net = LoopbackNet::new();
        let part = Participant::new(
            pid,
            ProtocolConfig::accelerated(),
            RingId::new(pid, k as u64 + 1),
            vec![pid],
        )
        .expect("participant");
        (part, net.endpoint(pid), DaemonConfig::default())
    })
}

fn tcp_listeners() -> SvcListeners {
    SvcListeners {
        tcp: Some("127.0.0.1:0".parse().unwrap()),
        uds: None,
    }
}

/// Two group names the shard map places on different rings.
fn split_groups(sharded: &ShardedDaemon) -> (String, String) {
    let a = "room-0".to_string();
    let sa = sharded.shard_of(&a);
    for i in 1..1000 {
        let b = format!("room-{i}");
        if sharded.shard_of(&b) != sa {
            return (a, b);
        }
    }
    panic!("no group found on the other shard");
}

fn wait_for_members(client: &mut SvcClient, groups: &[&str], n: usize) {
    let deadline = Instant::now() + DEADLINE;
    let mut seen: HashMap<String, usize> = HashMap::new();
    while groups
        .iter()
        .any(|g| seen.get(*g).copied().unwrap_or(0) < n)
    {
        assert!(
            Instant::now() < deadline,
            "membership never hit {n} everywhere: {seen:?}"
        );
        if let Some(SvcEvent::Membership { group, members }) =
            client.recv(Duration::from_millis(100))
        {
            seen.insert(group, members.len());
        }
    }
}

/// Publishes `tag`, retrying through connection loss and session
/// resets (a reset surfaces the in-flight attempt as rejected and the
/// send as an error; the caller owns the retry decision, which is the
/// whole point of the `resumed: false` contract).
fn publish_retry(client: &mut SvcClient, groups: &[&str], service: ServiceType, tag: &str) {
    let deadline = Instant::now() + DEADLINE;
    loop {
        match client.publish(
            groups,
            service,
            Bytes::from(tag.to_string()),
            Duration::from_secs(10),
        ) {
            Ok(_) => return,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "publish {tag} never succeeded: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Asserts a transcript segment is exactly-once and per-publisher
/// FIFO: tags are `name:k` and every publisher's `k`s must be
/// strictly increasing (gap-free when `complete` lists totals).
fn audit(tags: &[String], complete: Option<&HashMap<&str, usize>>) {
    let mut next: HashMap<String, usize> = HashMap::new();
    for tag in tags {
        let (name, k) = tag.split_once(':').expect("tag format");
        let k: usize = k.parse().unwrap();
        let slot = next.entry(name.to_string()).or_insert(0);
        assert!(
            k >= *slot,
            "publisher {name}: saw {k} after expecting {slot} (duplicate or reorder)"
        );
        if let Some(want) = complete {
            assert_eq!(k, *slot, "publisher {name}: gap — saw {k}, expected {slot}");
            assert!(want.contains_key(name), "unknown publisher {name}");
        }
        *slot = k + 1;
    }
    if let Some(want) = complete {
        for (name, total) in want {
            assert_eq!(
                next.get(*name).copied().unwrap_or(0),
                *total,
                "publisher {name} transcript incomplete"
            );
        }
    }
}

/// Tentpole scenario: three publishers stream 60 cross-ring messages
/// each while every participant — publishers and the subscriber — has
/// its connection killed twice mid-stream. Every session resumes; the
/// subscriber's transcript must be byte-for-byte what a chaos-free
/// run would produce per publisher.
#[test]
fn severed_sessions_resume_with_exactly_once_delivery() {
    const PUBLISHERS: usize = 3;
    const PER_PUBLISHER: usize = 60;

    let sharded = sharded_daemon(2);
    let (ga, gb) = split_groups(&sharded);
    let mut cfg = SvcConfig::default();
    // A parked subscriber keeps accumulating deliveries: give the
    // pending budget room so chaos doesn't trip the slow-consumer
    // eviction this test is not about.
    cfg.flow.max_pending = 65_536;
    cfg.park_grace = Duration::from_secs(30);
    let svc = serve_clients_sharded(&sharded, tcp_listeners(), cfg).expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut sub = SvcClient::connect_tcp(addr, "sub").expect("connect sub");
    sub.join(&ga).expect("join a");
    sub.join(&gb).expect("join b");
    wait_for_members(&mut sub, &[&ga, &gb], 1);

    let start = Arc::new(Barrier::new(PUBLISHERS));
    let pubs: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let start = Arc::clone(&start);
            let (ga, gb) = (ga.clone(), gb.clone());
            std::thread::spawn(move || {
                let name = format!("pub{p}");
                let mut client = SvcClient::connect_tcp(addr, &name).expect("connect pub");
                start.wait();
                for k in 0..PER_PUBLISHER {
                    // Kill the connection mid-stream, twice, at
                    // staggered points per publisher.
                    if k == 15 + p || k == 40 + p {
                        client.sever();
                    }
                    let group = if k % 2 == 0 { &ga } else { &gb };
                    publish_retry(
                        &mut client,
                        &[group],
                        ServiceType::Agreed,
                        &format!("{name}:{k}"),
                    );
                }
                client
            })
        })
        .collect();

    // Receive everything, killing the subscriber's own connection at
    // two points along the way. Each sever is followed by a pump
    // until the reconnect is observed — a second shutdown on a socket
    // whose reconnect hasn't run yet would be a no-op, not more chaos.
    let want = PUBLISHERS * PER_PUBLISHER;
    let mut transcript: Vec<String> = Vec::with_capacity(want);
    let mut sub_resumes: Vec<bool> = Vec::new();
    let mut severed = [false, false];
    let deadline = Instant::now() + DEADLINE;
    while transcript.len() < want || sub.reconnects() < 2 {
        assert!(
            Instant::now() < deadline,
            "got {} of {want} deliveries, {} reconnects (resumes seen: {sub_resumes:?})",
            transcript.len(),
            sub.reconnects()
        );
        if !severed[0] && transcript.len() >= want / 3 {
            severed[0] = true;
            sub.sever();
        }
        if !severed[1] && sub.reconnects() >= 1 && transcript.len() >= 2 * want / 3 {
            severed[1] = true;
            sub.sever();
        }
        match sub.recv(Duration::from_millis(100)) {
            Some(SvcEvent::Deliver { payload, .. }) => {
                transcript.push(String::from_utf8(payload.to_vec()).unwrap());
            }
            Some(SvcEvent::Reconnected { resumed }) => sub_resumes.push(resumed),
            Some(SvcEvent::Evicted { reason }) => panic!("subscriber evicted: {reason}"),
            None if transcript.len() >= want => {
                // Stream complete but a sever's reconnect is still
                // pending (the kill landed after the tail was already
                // buffered client-side): recv's pump drives it.
            }
            _ => {}
        }
    }
    assert_eq!(transcript.len(), want, "reconnect replay redelivered");

    // Exactly-once, gap-free, per-publisher FIFO — across six
    // publisher-side and two subscriber-side connection kills.
    let totals: HashMap<&str, usize> = [
        ("pub0", PER_PUBLISHER),
        ("pub1", PER_PUBLISHER),
        ("pub2", PER_PUBLISHER),
    ]
    .into_iter()
    .collect();
    audit(&transcript, Some(&totals));

    assert_eq!(sub.reconnects(), 2, "subscriber reconnected per sever");
    assert!(
        sub_resumes.iter().all(|r| *r),
        "every subscriber reconnect resumed the session: {sub_resumes:?}"
    );
    for h in pubs {
        let client = h.join().expect("publisher thread");
        assert!(
            client.evicted_reason().is_none(),
            "publisher evicted: {:?}",
            client.evicted_reason()
        );
        assert_eq!(client.reconnects(), 2, "publisher reconnected per sever");
    }
    // 3 publishers × 2 severs + subscriber × 2 = 8 resumed sessions.
    assert!(
        svc.stats().sessions_resumed.get() >= 8,
        "server resumed {} sessions, wanted >= 8",
        svc.stats().sessions_resumed.get()
    );
    assert_eq!(svc.stats().evicted.get(), 0, "chaos must not evict anyone");

    drop(sub);
    drop(svc);
    sharded.shutdown().expect("shutdown");
}

/// Parking disabled: the resume token is rejected, the client falls
/// back to a fresh session (re-joining its groups), and the rejection
/// is counted.
#[test]
fn resume_rejected_when_parking_disabled_falls_back_to_fresh_session() {
    let sharded = sharded_daemon(1);
    let cfg = SvcConfig {
        park_grace: Duration::ZERO,
        ..SvcConfig::default()
    };
    let svc = serve_clients_sharded(&sharded, tcp_listeners(), cfg).expect("service tier");
    let addr = svc.tcp_addr().unwrap();

    let mut sub = SvcClient::connect_tcp(addr, "sub").expect("connect sub");
    sub.join("g").expect("join");
    wait_for_members(&mut sub, &["g"], 1);
    let first_session = sub.session();

    sub.sever();
    let deadline = Instant::now() + DEADLINE;
    let mut resumed_flag = None;
    while resumed_flag.is_none() {
        assert!(Instant::now() < deadline, "no Reconnected event");
        if let Some(SvcEvent::Reconnected { resumed }) = sub.recv(Duration::from_millis(100)) {
            resumed_flag = Some(resumed);
        }
    }
    assert_eq!(resumed_flag, Some(false), "token must be rejected");
    assert_ne!(sub.session(), first_session, "fresh session id assigned");
    assert!(svc.stats().resume_rejected.get() >= 1);
    assert_eq!(svc.stats().sessions_resumed.get(), 0);

    // The fresh session re-joined "g" automatically: traffic flows.
    let mut publisher = SvcClient::connect_tcp(addr, "pub").expect("connect pub");
    publish_retry(&mut publisher, &["g"], ServiceType::Agreed, "pub:0");
    let deadline = Instant::now() + DEADLINE;
    loop {
        assert!(Instant::now() < deadline, "delivery after fresh session");
        if let Some(SvcEvent::Deliver { payload, .. }) = sub.recv(Duration::from_millis(100)) {
            assert_eq!(&payload[..], b"pub:0");
            break;
        }
    }

    drop(publisher);
    drop(sub);
    drop(svc);
    sharded.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Process-level chaos: a real 2-ring `ard` with a durable log.
// ---------------------------------------------------------------------

fn pick_ports(udp: usize, tcp: usize) -> (Vec<u16>, Vec<u16>) {
    let us: Vec<UdpSocket> = (0..udp)
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    let ts: Vec<TcpListener> = (0..tcp)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    (
        us.iter().map(|s| s.local_addr().unwrap().port()).collect(),
        ts.iter().map(|l| l.local_addr().unwrap().port()).collect(),
    )
}

struct Ard(Child);

impl Ard {
    fn spawn(conf: &std::path::Path, log_dir: &std::path::Path, client_port: u16) -> Ard {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ard"));
        cmd.arg("--rings")
            .arg("2")
            .arg("--log-dir")
            .arg(log_dir)
            .arg("--fsync")
            .arg("every:4")
            .arg("--client-addr")
            .arg(format!("127.0.0.1:{client_port}"))
            .arg("--resume-grace-ms")
            .arg("60000")
            .arg(conf)
            .arg("0");
        cmd.stdout(Stdio::null()).stderr(Stdio::null());
        Ard(cmd.spawn().expect("spawn ard"))
    }

    fn kill9(mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Ard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn connect_retry(addr: std::net::SocketAddr, name: &str) -> SvcClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match SvcClient::connect_tcp(addr, name) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {name}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Kill -9 the daemon process mid-stream and restart it on its
/// durable log. Connection-level severs before the crash resume
/// seamlessly (exactly-once continues); the process death resets the
/// sessions — the clients reconnect fresh, re-join, and the
/// post-restart stream is again exactly-once and complete. The
/// subscriber's transcript is audited per session segment, split at
/// the `Reconnected { resumed: false }` seam.
#[test]
fn daemon_kill9_restart_resets_sessions_cleanly() {
    let base = std::env::temp_dir().join(format!("ar-resume-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let (udp, tcp) = pick_ports(2, 1);
    let conf = format!(
        "protocol accelerated\ndaemon 0 token=127.0.0.1:{} data=127.0.0.1:{}\n",
        udp[0], udp[1],
    );
    let conf_path = base.join("ar.conf");
    std::fs::write(&conf_path, conf).unwrap();
    let log_dir = base.join("d0");
    let addr: std::net::SocketAddr = format!("127.0.0.1:{}", tcp[0]).parse().unwrap();

    let d0 = Ard::spawn(&conf_path, &log_dir, tcp[0]);
    let mut sub = connect_retry(addr, "sub");
    sub.join("alpha").expect("join alpha");
    sub.join("beta").expect("join beta");
    wait_for_members(&mut sub, &["alpha", "beta"], 1);
    let mut publisher = connect_retry(addr, "walter");

    let mut transcript: Vec<String> = Vec::new();
    let mut seams: Vec<usize> = Vec::new(); // transcript index of each session reset
    let mut resumes: Vec<bool> = Vec::new();
    let pump_sub = |sub: &mut SvcClient,
                    transcript: &mut Vec<String>,
                    seams: &mut Vec<usize>,
                    resumes: &mut Vec<bool>| {
        match sub.recv(Duration::from_millis(100)) {
            Some(SvcEvent::Deliver { payload, .. }) => {
                transcript.push(String::from_utf8(payload.to_vec()).unwrap());
            }
            Some(SvcEvent::Reconnected { resumed }) => {
                resumes.push(resumed);
                if !resumed {
                    seams.push(transcript.len());
                }
            }
            _ => {}
        }
    };

    // Phase 1: ten Safe publishes across both groups, plain run.
    for k in 0..10 {
        let group = if k % 2 == 0 { "alpha" } else { "beta" };
        publish_retry(
            &mut publisher,
            &[group],
            ServiceType::Safe,
            &format!("w:{k}"),
        );
    }
    let deadline = Instant::now() + DEADLINE;
    while transcript.len() < 10 {
        assert!(Instant::now() < deadline, "phase 1: {transcript:?}");
        pump_sub(&mut sub, &mut transcript, &mut seams, &mut resumes);
    }

    // Phase 2: sever both connections (process stays up) — sessions
    // resume, the stream continues without loss or duplication.
    sub.sever();
    publisher.sever();
    for k in 10..20 {
        let group = if k % 2 == 0 { "alpha" } else { "beta" };
        publish_retry(
            &mut publisher,
            &[group],
            ServiceType::Safe,
            &format!("w:{k}"),
        );
    }
    let deadline = Instant::now() + DEADLINE;
    while transcript.len() < 20 {
        assert!(
            Instant::now() < deadline,
            "phase 2: got {} (resumes {resumes:?})",
            transcript.len()
        );
        pump_sub(&mut sub, &mut transcript, &mut seams, &mut resumes);
    }
    assert!(
        seams.is_empty(),
        "severs must resume, not reset: {resumes:?}"
    );
    assert_eq!(sub.reconnects(), 1, "subscriber resumed once");

    // Drain the publisher until every outcome is known, so the kill
    // leaves no unknown-outcome publish behind and the post-restart
    // audit needs no at-least-once carve-outs.
    let deadline = Instant::now() + DEADLINE;
    let mut outcomes = 0;
    while outcomes < 20 {
        assert!(Instant::now() < deadline, "outcomes: {outcomes}");
        match publisher.recv(Duration::from_millis(100)) {
            Some(SvcEvent::PublishOrdered { .. }) | Some(SvcEvent::PublishRejected { .. }) => {
                outcomes += 1;
            }
            _ => {}
        }
    }

    // Phase 3: SIGKILL the daemon — no flush, no goodbye — and
    // restart it on the same durable log.
    d0.kill9();
    let _d0b = Ard::spawn(&conf_path, &log_dir, tcp[0]);

    // The restarted daemon knows nothing of the old sessions: wait for
    // the subscriber to reconnect fresh *and* re-join both groups
    // before publishing, or the messages would be ordered into groups
    // with no members and legitimately never reach it.
    let deadline = Instant::now() + DEADLINE;
    let mut member_ok: HashMap<String, usize> = HashMap::new();
    while seams.is_empty() || member_ok.len() < 2 {
        assert!(
            Instant::now() < deadline,
            "post-restart rejoin: seams {seams:?}, members {member_ok:?}"
        );
        match sub.recv(Duration::from_millis(100)) {
            Some(SvcEvent::Deliver { payload, .. }) => {
                transcript.push(String::from_utf8(payload.to_vec()).unwrap());
            }
            Some(SvcEvent::Reconnected { resumed }) => {
                resumes.push(resumed);
                if !resumed {
                    seams.push(transcript.len());
                }
            }
            Some(SvcEvent::Membership { group, members }) if !members.is_empty() => {
                member_ok.insert(group, members.len());
            }
            _ => {}
        }
    }

    // Drive the publisher's own reconnect before resuming the stream:
    // a write to the killed daemon's half-open socket can succeed
    // locally (the RST arrives later), which would make the first
    // post-kill publish outcome-unknown — the reset contract surfaces
    // it as PublishRejected and the *application* owns the retry,
    // which here would reorder the stream. A correct client syncs its
    // session first, exactly as done here.
    let deadline = Instant::now() + DEADLINE;
    while publisher.reconnects() < 2 {
        assert!(
            Instant::now() < deadline,
            "publisher never reconnected after the restart"
        );
        if let Some(SvcEvent::Reconnected { resumed }) = publisher.recv(Duration::from_millis(100))
        {
            assert!(!resumed, "daemon restart cannot resume the session");
        }
    }

    for k in 20..30 {
        let group = if k % 2 == 0 { "alpha" } else { "beta" };
        publish_retry(
            &mut publisher,
            &[group],
            ServiceType::Safe,
            &format!("w:{k}"),
        );
    }
    let deadline = Instant::now() + DEADLINE;
    while transcript.len() < 30 {
        assert!(
            Instant::now() < deadline,
            "phase 3: got {} (resumes {resumes:?}, post-seam {:?})",
            transcript.len(),
            &transcript[seams.first().copied().unwrap_or(0)..]
        );
        pump_sub(&mut sub, &mut transcript, &mut seams, &mut resumes);
    }

    // The process death is exactly one session reset for the
    // subscriber; the pre-crash segment is the complete exactly-once
    // prefix and the post-restart segment the complete remainder —
    // nothing is redelivered across the seam (the restarted daemon
    // replays its log *before* accepting sessions) and nothing
    // granted after the restart is lost.
    assert_eq!(seams.len(), 1, "one reset seam: {resumes:?}");
    let seam = seams[0];
    let want_pre: Vec<String> = (0..20).map(|k| format!("w:{k}")).collect();
    let want_post: Vec<String> = (20..30).map(|k| format!("w:{k}")).collect();
    assert_eq!(&transcript[..seam], &want_pre[..], "pre-crash segment");
    assert_eq!(&transcript[seam..], &want_post[..], "post-restart segment");
    assert!(
        publisher.reconnects() >= 2,
        "publisher reconnected for the sever and the restart"
    );

    drop(publisher);
    drop(sub);
    std::fs::remove_dir_all(&base).unwrap();
}
