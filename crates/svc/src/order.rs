//! Cross-shard per-publisher ordering: the hold-back queue.
//!
//! A sharded daemon orders each group's traffic on its own ring, so
//! two messages from one publisher that land on different shards have
//! no relative order on the wire — shard B can deliver the later one
//! first. This module restores *per-publisher FIFO* for subscribers
//! served by the same service tier as the publisher:
//!
//! * every publish carries a per-publisher stamp (1-based, assigned by
//!   [`crate::credit::FlowState`]);
//! * the publisher's flow state tracks `ordered_through` — the highest
//!   stamp `s` such that every publish `<= s` is fully agreed on every
//!   shard it touched (the **floor**);
//! * a subscriber's stamped deliveries are held here until the
//!   publisher's floor reaches their stamp, then released in ascending
//!   stamp order.
//!
//! Correctness leans on two invariants. First, the daemon pushes every
//! recipient's `Message` event *before* the sender's `Ordered` ack for
//! the same envelope, so by the time a floor computed from observed
//! acks says `s`, every local recipient queue already holds the
//! matching messages. Second, the server drains *all* of a
//! connection's shard queues before releasing against a floor snapshot
//! taken at the start of the pass ([`HoldBack::insert`] everything,
//! then [`HoldBack::release`]) — releasing mid-drain could let shard
//! B's stamp 5 out while stamp 4 still sits undrained in shard A's
//! queue.
//!
//! Stamps a subscriber sees are a *subsequence* of the publisher's
//! (it only receives groups it joined), so release is gated on
//! `stamp <= floor`, never on contiguity. A publish spanning several
//! shards reaches a subscriber once per shard whose groups it joined;
//! duplicates are collapsed (first copy wins), mirroring the
//! single-ring multi-group delivery semantics.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Per-publisher hold-back state for one subscriber connection.
///
/// Generic over the held item so the release logic is testable without
/// dragging in socket frames.
#[derive(Debug, Default)]
pub struct HoldBack<T> {
    queues: HashMap<String, PubQueue<T>>,
}

#[derive(Debug)]
struct Held<T> {
    item: T,
    /// When the entry was inserted — drives the stall watchdog.
    since: Instant,
}

#[derive(Debug)]
struct PubQueue<T> {
    /// Stamps at or below this have been released (or were covered by
    /// an already-released floor) — later copies are duplicates.
    released_to: u64,
    held: BTreeMap<u64, Held<T>>,
}

impl<T> Default for PubQueue<T> {
    fn default() -> Self {
        PubQueue {
            released_to: 0,
            held: BTreeMap::new(),
        }
    }
}

impl<T> HoldBack<T> {
    /// Empty hold-back state.
    pub fn new() -> HoldBack<T> {
        HoldBack {
            queues: HashMap::new(),
        }
    }

    /// Holds one stamped delivery from `publisher`. Returns `false`
    /// (and drops the item) when it is a duplicate shard copy — the
    /// stamp is already held or already released.
    pub fn insert(&mut self, publisher: &str, stamp: u64, item: T) -> bool {
        self.insert_at(publisher, stamp, item, Instant::now())
    }

    /// As [`insert`](Self::insert) with an explicit insertion time, so
    /// the stall watchdog is testable without sleeping.
    pub fn insert_at(&mut self, publisher: &str, stamp: u64, item: T, now: Instant) -> bool {
        let q = self.queues.entry(publisher.to_string()).or_default();
        if stamp <= q.released_to || q.held.contains_key(&stamp) {
            return false;
        }
        q.held.insert(stamp, Held { item, since: now });
        true
    }

    /// Releases everything eligible under the given publisher floors,
    /// in ascending stamp order per publisher. `floors` returns the
    /// publisher's `ordered_through`, or `None` when the publisher is
    /// no longer a local connection — its held messages are then
    /// released unconditionally (best-effort order) rather than held
    /// forever against a floor that will never advance.
    pub fn release(&mut self, mut floors: impl FnMut(&str) -> Option<u64>) -> Vec<T> {
        let mut out = Vec::new();
        self.queues.retain(|publisher, q| match floors(publisher) {
            Some(floor) => {
                while let Some(entry) = q.held.first_entry() {
                    if *entry.key() > floor {
                        break;
                    }
                    out.push(entry.remove().item);
                }
                q.released_to = q.released_to.max(floor);
                true
            }
            None => {
                out.extend(std::mem::take(&mut q.held).into_values().map(|h| h.item));
                false
            }
        });
        out
    }

    /// Publishers whose *oldest* held delivery has waited at least
    /// `timeout` — their floor has stopped advancing (publisher parked
    /// mid-publish, shard ack lost). The caller escalates: force-release
    /// to restore liveness, count the stall, evict the culprit.
    pub fn stalled(&self, now: Instant, timeout: Duration) -> Vec<String> {
        let mut out: Vec<String> = self
            .queues
            .iter()
            .filter(|(_, q)| {
                q.held
                    .values()
                    .next()
                    .is_some_and(|h| now.duration_since(h.since) >= timeout)
            })
            .map(|(p, _)| p.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Age of the oldest held delivery across all publishers (drives
    /// the held-duration gauge). `None` when nothing is held.
    pub fn oldest_held_age(&self, now: Instant) -> Option<Duration> {
        self.queues
            .values()
            .flat_map(|q| q.held.values())
            .map(|h| now.duration_since(h.since))
            .max()
    }

    /// Gives up on `publisher`'s floor: releases everything held from
    /// it in ascending stamp order and bumps `released_to` past the
    /// highest released stamp, so late shard copies of the released
    /// stamps are dropped as duplicates. Per-publisher FIFO is traded
    /// for liveness — documented escalation, counted by the caller.
    pub fn force_release(&mut self, publisher: &str) -> Vec<T> {
        let Some(q) = self.queues.get_mut(publisher) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (stamp, held) in std::mem::take(&mut q.held) {
            q.released_to = q.released_to.max(stamp);
            out.push(held.item);
        }
        out
    }

    /// Deliveries currently held (they count against the subscriber's
    /// pending budget so a stalled publisher cannot pin unbounded
    /// memory).
    pub fn held_len(&self) -> usize {
        self.queues.values().map(|q| q.held.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_stamp_order_up_to_the_floor() {
        let mut hb = HoldBack::new();
        // Shard B's copy (stamp 5) drained before shard A's (stamp 4).
        assert!(hb.insert("alice", 5, "m5"));
        assert!(hb.insert("alice", 4, "m4"));
        assert_eq!(hb.release(|_| Some(3)), Vec::<&str>::new());
        assert_eq!(hb.held_len(), 2);
        assert_eq!(hb.release(|_| Some(5)), vec!["m4", "m5"]);
        assert_eq!(hb.held_len(), 0);
    }

    #[test]
    fn gaps_do_not_block_release() {
        // A subscriber sees a subsequence of the publisher's stamps —
        // stamp 2 went to a group it never joined.
        let mut hb = HoldBack::new();
        hb.insert("alice", 1, 1u32);
        hb.insert("alice", 3, 3u32);
        assert_eq!(hb.release(|_| Some(3)), vec![1, 3]);
    }

    #[test]
    fn duplicate_shard_copies_collapse() {
        let mut hb = HoldBack::new();
        assert!(hb.insert("alice", 7, "first"));
        assert!(!hb.insert("alice", 7, "second"), "held duplicate");
        assert_eq!(hb.release(|_| Some(7)), vec!["first"]);
        // A straggler copy below the released floor is also dropped.
        assert!(!hb.insert("alice", 7, "third"), "released duplicate");
        assert!(!hb.insert("alice", 3, "older"), "below the floor");
        assert_eq!(hb.held_len(), 0);
    }

    #[test]
    fn publishers_are_independent() {
        let mut hb = HoldBack::new();
        hb.insert("alice", 2, "a2");
        hb.insert("bob", 1, "b1");
        let released = hb.release(|p| if p == "bob" { Some(1) } else { Some(0) });
        assert_eq!(released, vec!["b1"]);
        assert_eq!(hb.held_len(), 1);
    }

    #[test]
    fn watchdog_flags_stalled_publishers_only() {
        let t0 = Instant::now();
        let timeout = Duration::from_millis(500);
        let mut hb = HoldBack::new();
        hb.insert_at("alice", 4, "a4", t0);
        hb.insert_at("bob", 1, "b1", t0 + Duration::from_millis(400));
        let now = t0 + timeout;
        assert_eq!(hb.stalled(now, timeout), vec!["alice".to_string()]);
        assert_eq!(hb.oldest_held_age(now), Some(timeout));
        // Alice's floor advances in time: no longer stalled.
        assert_eq!(
            hb.release(|p| Some(if p == "alice" { 4 } else { 0 })),
            vec!["a4"]
        );
        assert!(hb.stalled(now, timeout).is_empty());
    }

    #[test]
    fn force_release_restores_liveness_and_drops_stragglers() {
        let mut hb = HoldBack::new();
        hb.insert("alice", 4, "a4");
        hb.insert("alice", 7, "a7");
        hb.insert("bob", 1, "b1");
        assert_eq!(hb.force_release("alice"), vec!["a4", "a7"]);
        assert_eq!(hb.held_len(), 1, "bob untouched");
        // Late shard copies of the force-released stamps are duplicates.
        assert!(!hb.insert("alice", 7, "late"));
        assert!(!hb.insert("alice", 5, "later"));
        // New stamps above the bumped floor flow again.
        assert!(hb.insert("alice", 8, "a8"));
        assert_eq!(hb.force_release("nobody"), Vec::<&str>::new());
    }

    #[test]
    fn departed_publishers_release_everything() {
        let mut hb = HoldBack::new();
        hb.insert("alice", 8, "a8");
        hb.insert("alice", 9, "a9");
        let mut released = hb.release(|_| None);
        released.sort_unstable();
        assert_eq!(released, vec!["a8", "a9"]);
        assert_eq!(hb.held_len(), 0);
        // The queue is gone; fresh inserts start a new epoch.
        assert!(hb.insert("alice", 1, "new"));
    }
}
