//! Per-connection flow control: publish credits, delivery windows, and
//! the slow-consumer eviction policy.
//!
//! The state machine is pure (no sockets, no clocks) so every
//! transition is unit-testable:
//!
//! * **Publish credits** bound a client's unordered publishes. A
//!   publish consumes one credit; the credit returns (as a
//!   [`crate::wire::ServerFrame::CreditGrant`]) when the message
//!   reaches Agreed order at the daemon. Grants are *withheld* while
//!   the ring's send queue is above its high watermark, converting ring
//!   backpressure into client backpressure instead of unbounded daemon
//!   queues.
//! * **Delivery windows** bound unacked deliveries in flight to a
//!   consumer. Deliveries beyond the window buffer in a bounded pending
//!   queue; a consumer that stops acking eventually trips
//!   [`EvictReason::PendingOverflow`] and is cut loose, so one slow
//!   consumer cannot pin daemon memory or stall the rest.

use std::collections::VecDeque;

/// Flow-control tuning for one session (server side).
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Initial (and maximum outstanding) publish credits.
    pub publish_credits: u32,
    /// Maximum unacked deliveries in flight to the consumer.
    pub delivery_window: u32,
    /// Maximum deliveries buffered beyond the window before the
    /// session is evicted.
    pub max_pending: usize,
    /// Maximum bytes buffered in the socket write buffer before the
    /// session is evicted.
    pub max_write_buffer: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            publish_credits: 64,
            delivery_window: 256,
            max_pending: 1024,
            max_write_buffer: 1 << 20,
        }
    }
}

/// Why a session was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The pending-delivery queue outgrew `max_pending` (consumer
    /// stopped acking).
    PendingOverflow,
    /// The socket write buffer outgrew `max_write_buffer` (consumer
    /// stopped reading).
    WriteBufferOverflow,
}

impl EvictReason {
    /// Human-readable reason sent in the Evicted frame.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::PendingOverflow => "slow consumer: delivery backlog limit exceeded",
            EvictReason::WriteBufferOverflow => "slow consumer: write buffer limit exceeded",
        }
    }
}

/// A delivery waiting for window space, with the per-connection
/// sequence already assigned.
#[derive(Debug)]
pub struct Pending<T> {
    /// Per-connection delivery sequence.
    pub seq: u64,
    /// The deliverable (frame payload), opaque to the state machine.
    pub item: T,
}

/// One forwarded publish awaiting its Ordered acks. With a sharded
/// daemon a multi-group publish becomes one ordered message per shard
/// it touches, so the entry completes only when every copy has been
/// agreed (`copies_left` reaches zero).
#[derive(Debug)]
struct Inflight {
    /// Client-assigned publish id (echoed in the credit grant).
    id: u64,
    /// Per-publisher stamp assigned at submission (1-based,
    /// strictly increasing per connection).
    stamp: u64,
    /// Shard copies still awaiting their Ordered ack.
    copies_left: u32,
}

/// Flow-control state for one session.
#[derive(Debug)]
pub struct FlowState<T> {
    cfg: FlowConfig,
    /// Remaining publish credits (server-authoritative).
    credits: u32,
    /// Publishes forwarded to the daemon(s), in submission (= stamp)
    /// order, awaiting their Ordered acks.
    inflight: VecDeque<Inflight>,
    /// Stamp assigned to the most recent publish (0 = none yet).
    last_stamp: u64,
    /// Highest stamp `s` such that every publish stamped `<= s` has
    /// been fully agreed on every shard it touched — the publisher
    /// floor the cross-shard hold-back layer releases against.
    ordered_through: u64,
    /// Credits owed but withheld because the ring was backpressured
    /// when the ack arrived; flushed when pressure clears.
    deferred_grants: VecDeque<u64>,
    /// Next per-connection delivery sequence to assign.
    next_seq: u64,
    /// Highest delivery sequence sent to the socket.
    sent: u64,
    /// Highest delivery sequence the consumer acked.
    acked: u64,
    /// Deliveries waiting for window space.
    pending: VecDeque<Pending<T>>,
}

impl<T> FlowState<T> {
    /// Fresh state with full credits and an empty window.
    pub fn new(cfg: FlowConfig) -> FlowState<T> {
        FlowState {
            cfg,
            credits: cfg.publish_credits,
            inflight: VecDeque::new(),
            last_stamp: 0,
            ordered_through: 0,
            deferred_grants: VecDeque::new(),
            next_seq: 0,
            sent: 0,
            acked: 0,
            pending: VecDeque::new(),
        }
    }

    /// Remaining publish credits.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Publishes forwarded to the daemon and not yet ordered.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Deliveries buffered beyond the window.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Tries to consume one publish credit for client-assigned `id`,
    /// expanded to `copies` per-shard ordered messages. On success the
    /// assigned per-publisher stamp is returned; the caller must send
    /// every copy carrying it.
    ///
    /// One publish costs one credit however many shards it fans out
    /// to — credits meter client publishes, not ring messages.
    pub fn try_consume_credit(&mut self, id: u64, copies: u32) -> Option<u64> {
        if self.credits == 0 {
            return None;
        }
        self.credits -= 1;
        self.last_stamp += 1;
        self.inflight.push_back(Inflight {
            id,
            stamp: self.last_stamp,
            copies_left: copies.max(1),
        });
        Some(self.last_stamp)
    }

    /// One shard copy of the publish stamped `stamp` reached Agreed
    /// order. With several shards the acks interleave arbitrarily, so
    /// completion is matched by stamp rather than assumed FIFO; the
    /// credit returns (and [`ordered_through`](Self::ordered_through)
    /// advances) only when the *contiguous prefix* of in-flight
    /// publishes is fully agreed, which keeps grants in submission
    /// order.
    ///
    /// Returns the ids to grant now; grants are deferred instead when
    /// `ring_congested` (the grant — and thus the client's next
    /// publish — waits until the ring send queue drains below its
    /// watermark). Unknown stamps (duplicates, pre-restart stragglers)
    /// are ignored.
    pub fn on_ordered(&mut self, stamp: u64, ring_congested: bool) -> Vec<u64> {
        if let Some(entry) = self.inflight.iter_mut().find(|e| e.stamp == stamp) {
            entry.copies_left = entry.copies_left.saturating_sub(1);
        }
        let mut granted = Vec::new();
        while self.inflight.front().is_some_and(|e| e.copies_left == 0) {
            let e = self.inflight.pop_front().expect("front checked");
            self.ordered_through = e.stamp;
            if ring_congested {
                self.deferred_grants.push_back(e.id);
            } else {
                self.credits += 1;
                granted.push(e.id);
            }
        }
        granted
    }

    /// The publisher floor: every publish stamped at or below this has
    /// been fully agreed on every shard it touched.
    pub fn ordered_through(&self) -> u64 {
        self.ordered_through
    }

    /// Releases grants deferred during a congestion episode. Call when
    /// the ring send queue is back under its watermark; returns the
    /// ids to grant (credits already re-added).
    pub fn flush_deferred(&mut self) -> Vec<u64> {
        let ids: Vec<u64> = self.deferred_grants.drain(..).collect();
        self.credits += ids.len() as u32;
        ids
    }

    /// Grants currently withheld by ring backpressure.
    pub fn deferred_len(&self) -> usize {
        self.deferred_grants.len()
    }

    /// Queues a delivery, assigning its per-connection sequence.
    ///
    /// # Errors
    ///
    /// Returns the eviction reason when the pending queue is full.
    pub fn queue_delivery(&mut self, item: T) -> Result<(), EvictReason> {
        if self.pending.len() >= self.cfg.max_pending {
            return Err(EvictReason::PendingOverflow);
        }
        self.next_seq += 1;
        self.pending.push_back(Pending {
            seq: self.next_seq,
            item,
        });
        Ok(())
    }

    /// Pops the next delivery that fits in the window (unacked in
    /// flight < `delivery_window`), marking it sent.
    pub fn next_sendable(&mut self) -> Option<Pending<T>> {
        if self.sent - self.acked >= u64::from(self.cfg.delivery_window) {
            return None;
        }
        let p = self.pending.pop_front()?;
        self.sent = p.seq;
        Some(p)
    }

    /// Consumer progress. Ignores regressions (acks are cumulative).
    pub fn on_ack(&mut self, through: u64) {
        // An ack beyond what was sent is a protocol violation from a
        // confused client; clamp rather than corrupting the window.
        self.acked = self.acked.max(through.min(self.sent));
    }

    /// Highest delivery sequence sent to the socket.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Highest delivery sequence the consumer acked.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Checks the write buffer size against its limit.
    pub fn check_write_buffer(&self, buffered_bytes: usize) -> Result<(), EvictReason> {
        if buffered_bytes > self.cfg.max_write_buffer {
            return Err(EvictReason::WriteBufferOverflow);
        }
        Ok(())
    }
}

/// What [`DedupWindow::offer`] says about a publish id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Never seen: forward to the daemon normally.
    Fresh,
    /// Already forwarded, grant still pending: drop the duplicate —
    /// the grant (or rejection) for the first copy is on its way.
    InFlight,
    /// Already granted: the original `CreditGrant` was lost with the
    /// old connection. Re-send the grant without forwarding or
    /// consuming a credit.
    Granted,
}

/// Publish-id deduplication across reconnects.
///
/// A client that loses its connection after sending `Publish{id}` but
/// before seeing the matching `CreditGrant` must re-send the publish on
/// resume — but the first copy may already be ordered. The server
/// tracks recently seen publish ids per session so re-sent publishes
/// are idempotent: at most one copy of each id ever reaches the ring.
///
/// The window is bounded: once it holds `cap` ids, offering a fresh id
/// evicts the oldest *granted* entry. In-flight entries are never
/// evicted (they are separately bounded by publish credits), so the
/// window can transiently exceed `cap` by at most the credit limit.
#[derive(Debug)]
pub struct DedupWindow {
    cap: usize,
    /// id → granted? (false while the grant is still pending).
    states: std::collections::HashMap<u64, bool>,
    /// Eviction order, oldest first. In-flight ids rotate to the back
    /// when they block an eviction.
    order: VecDeque<u64>,
}

impl DedupWindow {
    /// A window remembering up to `cap` granted publish ids.
    pub fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            cap: cap.max(1),
            states: std::collections::HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Classifies `id`, recording it as in-flight when fresh.
    pub fn offer(&mut self, id: u64) -> Offer {
        match self.states.get(&id) {
            Some(true) => Offer::Granted,
            Some(false) => Offer::InFlight,
            None => {
                self.states.insert(id, false);
                self.order.push_back(id);
                if self.states.len() > self.cap {
                    self.evict_one_granted();
                }
                Offer::Fresh
            }
        }
    }

    /// Marks `id` granted (its credit came back). Unknown ids — evicted
    /// or never offered — are ignored.
    pub fn grant(&mut self, id: u64) {
        if let Some(state) = self.states.get_mut(&id) {
            *state = true;
        }
    }

    /// Forgets `id` entirely (the publish was rejected, so a re-sent
    /// copy should be re-attempted rather than treated as a duplicate).
    pub fn forget(&mut self, id: u64) {
        if self.states.remove(&id).is_some() {
            self.order.retain(|&x| x != id);
        }
    }

    /// Ids currently remembered.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    fn evict_one_granted(&mut self) {
        for _ in 0..self.order.len() {
            let id = self.order.pop_front().expect("len checked");
            if self.states.get(&id) == Some(&true) {
                self.states.remove(&id);
                return;
            }
            self.order.push_back(id);
        }
        // Everything is in-flight: keep them all (bounded by credits).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlowConfig {
        FlowConfig {
            publish_credits: 2,
            delivery_window: 3,
            max_pending: 5,
            max_write_buffer: 100,
        }
    }

    #[test]
    fn credits_deplete_and_replenish_in_fifo_order() {
        let mut fs: FlowState<()> = FlowState::new(cfg());
        assert_eq!(fs.try_consume_credit(10, 1), Some(1));
        assert_eq!(fs.try_consume_credit(11, 1), Some(2));
        assert_eq!(fs.try_consume_credit(12, 1), None);
        assert_eq!(fs.credits(), 0);
        // Acks come back oldest-first on a single ring.
        assert_eq!(fs.on_ordered(1, false), vec![10]);
        assert_eq!(fs.ordered_through(), 1);
        assert_eq!(fs.credits(), 1);
        assert_eq!(fs.try_consume_credit(12, 1), Some(3));
        assert_eq!(fs.on_ordered(2, false), vec![11]);
        assert_eq!(fs.on_ordered(3, false), vec![12]);
        assert_eq!(fs.on_ordered(99, false), Vec::<u64>::new());
        assert_eq!(fs.ordered_through(), 3);
        assert_eq!(fs.credits(), 2);
    }

    #[test]
    fn multi_shard_publishes_complete_by_stamp_not_arrival() {
        let mut fs: FlowState<()> = FlowState::new(cfg());
        let s1 = fs.try_consume_credit(10, 2).unwrap(); // spans two shards
        let s2 = fs.try_consume_credit(11, 1).unwrap();
        // The later publish agrees first: no grant, the prefix is
        // still incomplete.
        assert_eq!(fs.on_ordered(s2, false), Vec::<u64>::new());
        assert_eq!(fs.ordered_through(), 0);
        // First shard copy of the first publish: one copy remains.
        assert_eq!(fs.on_ordered(s1, false), Vec::<u64>::new());
        // Final copy completes the prefix: both grants, in submission
        // order, and the floor jumps over both stamps.
        assert_eq!(fs.on_ordered(s1, false), vec![10, 11]);
        assert_eq!(fs.ordered_through(), s2);
        assert_eq!(fs.credits(), 2);
    }

    #[test]
    fn congestion_defers_grants_until_flushed() {
        let mut fs: FlowState<()> = FlowState::new(cfg());
        fs.try_consume_credit(1, 1).unwrap();
        fs.try_consume_credit(2, 1).unwrap();
        assert!(fs.on_ordered(1, true).is_empty());
        assert!(fs.on_ordered(2, true).is_empty());
        assert_eq!(fs.credits(), 0, "no credits while the ring is congested");
        assert_eq!(fs.deferred_len(), 2);
        assert_eq!(
            fs.ordered_through(),
            2,
            "the publisher floor advances even while grants are deferred"
        );
        assert_eq!(fs.flush_deferred(), vec![1, 2]);
        assert_eq!(fs.credits(), 2);
        assert_eq!(fs.deferred_len(), 0);
    }

    #[test]
    fn window_gates_deliveries_until_acked() {
        let mut fs: FlowState<u32> = FlowState::new(cfg());
        for k in 0..5 {
            fs.queue_delivery(k).unwrap();
        }
        // Window of 3: exactly three pop.
        let sent: Vec<u64> = std::iter::from_fn(|| fs.next_sendable().map(|p| p.seq)).collect();
        assert_eq!(sent, vec![1, 2, 3]);
        assert_eq!(fs.pending_len(), 2);
        // Acking through 2 opens two more slots.
        fs.on_ack(2);
        let sent: Vec<u64> = std::iter::from_fn(|| fs.next_sendable().map(|p| p.seq)).collect();
        assert_eq!(sent, vec![4, 5]);
    }

    #[test]
    fn ack_regression_and_overrun_are_clamped() {
        let mut fs: FlowState<u32> = FlowState::new(cfg());
        for k in 0..3 {
            fs.queue_delivery(k).unwrap();
        }
        while fs.next_sendable().is_some() {}
        fs.on_ack(3);
        fs.on_ack(1); // regression: ignored
        fs.queue_delivery(9).unwrap();
        assert_eq!(fs.next_sendable().unwrap().seq, 4);
        fs.on_ack(1000); // beyond sent: clamped to sent
        fs.queue_delivery(10).unwrap();
        assert_eq!(fs.next_sendable().unwrap().seq, 5);
    }

    #[test]
    fn pending_overflow_evicts() {
        let mut fs: FlowState<u32> = FlowState::new(cfg());
        for k in 0..5 {
            fs.queue_delivery(k).unwrap();
        }
        assert_eq!(
            fs.queue_delivery(99).unwrap_err(),
            EvictReason::PendingOverflow
        );
    }

    #[test]
    fn write_buffer_overflow_evicts() {
        let fs: FlowState<u32> = FlowState::new(cfg());
        assert!(fs.check_write_buffer(100).is_ok());
        assert_eq!(
            fs.check_write_buffer(101).unwrap_err(),
            EvictReason::WriteBufferOverflow
        );
    }

    #[test]
    fn dedup_classifies_fresh_inflight_granted() {
        let mut w = DedupWindow::new(8);
        assert_eq!(w.offer(1), Offer::Fresh);
        assert_eq!(w.offer(1), Offer::InFlight, "resend before the grant");
        w.grant(1);
        assert_eq!(w.offer(1), Offer::Granted, "resend after the grant");
        assert_eq!(w.offer(2), Offer::Fresh);
    }

    #[test]
    fn dedup_forget_reopens_rejected_ids() {
        let mut w = DedupWindow::new(8);
        assert_eq!(w.offer(5), Offer::Fresh);
        w.forget(5);
        assert_eq!(w.offer(5), Offer::Fresh, "rejected publish retries");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn dedup_evicts_oldest_granted_not_inflight() {
        let mut w = DedupWindow::new(3);
        for id in 1..=3 {
            assert_eq!(w.offer(id), Offer::Fresh);
        }
        w.grant(1);
        w.grant(3);
        // Window full: a fresh id evicts the *oldest granted* (1),
        // skipping the still-in-flight 2.
        assert_eq!(w.offer(4), Offer::Fresh);
        assert_eq!(w.len(), 3);
        assert_eq!(w.offer(2), Offer::InFlight, "in-flight survived");
        assert_eq!(w.offer(3), Offer::Granted, "younger grant survived");
        assert_eq!(w.offer(1), Offer::Fresh, "oldest grant was evicted");
    }

    #[test]
    fn dedup_tolerates_all_inflight_overflow() {
        let mut w = DedupWindow::new(2);
        for id in 1..=5 {
            assert_eq!(w.offer(id), Offer::Fresh);
        }
        // Nothing granted, nothing evictable: all five retained.
        assert_eq!(w.len(), 5);
        for id in 1..=5 {
            assert_eq!(w.offer(id), Offer::InFlight);
        }
    }
}
