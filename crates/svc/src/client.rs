//! The service-tier client library: connect over TCP or a Unix
//! socket, speak the versioned credit-controlled protocol.
//!
//! The socket is non-blocking; [`SvcClient::pump`] drains it into an
//! internal event queue. [`recv`](SvcClient::recv) wraps pump in a
//! bounded wait for convenience. Publishing is credit-limited:
//! [`try_publish`](SvcClient::try_publish) fails fast when the window
//! is exhausted, [`publish`](SvcClient::publish) waits for a credit.
//!
//! Delivery acking is automatic by default (every pumped Deliver is
//! acked on the next pump); turn it off with
//! [`set_auto_ack`](SvcClient::set_auto_ack) to exercise the server's
//! delivery window and eviction policy (as the load generator's
//! deliberately slow consumers do).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use ar_core::ServiceType;
use ar_daemon::MemberId;
use bytes::Bytes;

use crate::wire::{
    decode_server, encode_client, frame, ClientFrame, FrameBuf, ServerFrame, MAX_PUBLISH_BODY,
    PROTOCOL_VERSION,
};

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcEvent {
    /// A totally ordered message.
    Deliver {
        /// Per-connection delivery sequence.
        seq: u64,
        /// Ring sequence: the total-order position within `shard`.
        ring_seq: u64,
        /// The ring shard that ordered the message.
        shard: u16,
        /// Delivery service level.
        service: ServiceType,
        /// The sending client.
        sender: MemberId,
        /// Target groups.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// Group membership changed.
    Membership {
        /// The group.
        group: String,
        /// Complete new membership.
        members: Vec<MemberId>,
    },
    /// Ring configuration changed.
    NetworkChange {
        /// Daemon ids in the new configuration.
        daemons: Vec<u16>,
    },
    /// A publish completed (reached Agreed order); a credit returned.
    PublishOrdered {
        /// The client-assigned publish id.
        id: u64,
    },
    /// A publish was rejected; its id and the server's reason.
    PublishRejected {
        /// The client-assigned publish id.
        id: u64,
        /// Server's reason.
        reason: String,
    },
    /// The server closed this session.
    Evicted {
        /// Server's reason.
        reason: String,
    },
    /// A join or leave request failed; the session stays open.
    GroupRejected {
        /// True for a failed join, false for a failed leave.
        join: bool,
        /// The group the request named.
        group: String,
        /// Server's reason.
        reason: String,
    },
}

/// Why [`SvcClient::try_publish`] declined.
#[derive(Debug)]
pub enum PublishError {
    /// No credits available; pump until a
    /// [`SvcEvent::PublishOrdered`] arrives.
    NoCredits,
    /// The encoded publish exceeds
    /// [`MAX_PUBLISH_BODY`](crate::wire::MAX_PUBLISH_BODY); it was not
    /// sent (a frame that size would be rejected by the server and
    /// its delivery would overflow the frame cap).
    TooLarge,
    /// Socket error.
    Io(io::Error),
}

impl core::fmt::Display for PublishError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PublishError::NoCredits => f.write_str("no publish credits available"),
            PublishError::TooLarge => f.write_str("publish exceeds the maximum frame size"),
            PublishError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<io::Error> for PublishError {
    fn from(e: io::Error) -> Self {
        PublishError::Io(e)
    }
}

#[derive(Debug)]
enum Sock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.write_all(buf),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Sock::Uds(s) => s.set_nonblocking(on),
        }
    }
}

/// A connected service-tier client.
#[derive(Debug)]
pub struct SvcClient {
    sock: Sock,
    rbuf: FrameBuf,
    queue: VecDeque<SvcEvent>,
    daemon: u16,
    rings: u16,
    credits: u32,
    initial_credits: u32,
    delivery_window: u32,
    next_publish_id: u64,
    /// Highest delivery seq seen and not yet acked.
    unacked: u64,
    /// Highest delivery seq acked to the server.
    acked: u64,
    auto_ack: bool,
    evicted: Option<String>,
}

impl SvcClient {
    /// Connects over TCP and performs the versioned handshake.
    ///
    /// # Errors
    ///
    /// Connection errors; `ConnectionRefused` with the server's reason
    /// when the handshake is refused.
    pub fn connect_tcp(addr: SocketAddr, name: &str) -> io::Result<SvcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Sock::Tcp(stream), name)
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// As for [`connect_tcp`](Self::connect_tcp).
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>, name: &str) -> io::Result<SvcClient> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Sock::Uds(stream), name)
    }

    fn handshake(mut sock: Sock, name: &str) -> io::Result<SvcClient> {
        // Blocking for the handshake, non-blocking after.
        sock.set_nonblocking(false)?;
        sock.write_all(&frame(&encode_client(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            name: name.to_string(),
        })))?;
        let mut rbuf = FrameBuf::new();
        let reply = loop {
            let mut chunk = [0u8; 4096];
            let n = sock.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed during handshake",
                ));
            }
            rbuf.extend(&chunk[..n]);
            if let Some(f) = rbuf.next_frame()? {
                break decode_server(&f)?;
            }
        };
        match reply {
            ServerFrame::Welcome {
                daemon,
                rings,
                publish_credits,
                delivery_window,
                ..
            } => {
                sock.set_nonblocking(true)?;
                Ok(SvcClient {
                    sock,
                    rbuf,
                    queue: VecDeque::new(),
                    daemon,
                    rings,
                    credits: publish_credits,
                    initial_credits: publish_credits,
                    delivery_window,
                    next_publish_id: 0,
                    unacked: 0,
                    acked: 0,
                    auto_ack: true,
                    evicted: None,
                })
            }
            ServerFrame::Refused { reason } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected frame before welcome",
            )),
        }
    }

    /// The daemon id this client is attached to.
    pub fn daemon(&self) -> u16 {
        self.daemon
    }

    /// Ring shards the daemon drives (from Welcome; 1 = unsharded).
    pub fn rings(&self) -> u16 {
        self.rings
    }

    /// Remaining publish credits.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The session's initial credit allocation (from Welcome).
    pub fn initial_credits(&self) -> u32 {
        self.initial_credits
    }

    /// The session's delivery window (from Welcome).
    pub fn delivery_window(&self) -> u32 {
        self.delivery_window
    }

    /// The server's eviction reason, once evicted.
    pub fn evicted_reason(&self) -> Option<&str> {
        self.evicted.as_deref()
    }

    /// Enables or disables automatic delivery acking (on by default).
    /// With auto-ack off the caller must call [`ack`](Self::ack) to
    /// open delivery-window space — not doing so emulates a slow
    /// consumer.
    pub fn set_auto_ack(&mut self, on: bool) {
        self.auto_ack = on;
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn join(&mut self, group: &str) -> io::Result<()> {
        self.send(&ClientFrame::JoinGroup {
            group: group.to_string(),
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn leave(&mut self, group: &str) -> io::Result<()> {
        self.send(&ClientFrame::LeaveGroup {
            group: group.to_string(),
        })
    }

    /// Publishes if a credit is available, consuming it. Returns the
    /// assigned publish id (echoed in [`SvcEvent::PublishOrdered`]).
    ///
    /// # Errors
    ///
    /// [`PublishError::NoCredits`] when the credit window is
    /// exhausted; [`PublishError::Io`] on socket errors.
    pub fn try_publish(
        &mut self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
    ) -> Result<u64, PublishError> {
        if self.credits == 0 {
            return Err(PublishError::NoCredits);
        }
        let req = ClientFrame::Publish {
            id: self.next_publish_id + 1,
            service,
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
        };
        let body = encode_client(&req);
        if body.len() > MAX_PUBLISH_BODY {
            return Err(PublishError::TooLarge);
        }
        self.next_publish_id += 1;
        let id = self.next_publish_id;
        self.send_raw(&frame(&body))?;
        self.credits -= 1;
        Ok(id)
    }

    /// Publishes, waiting up to `timeout` for a credit.
    ///
    /// # Errors
    ///
    /// [`PublishError::NoCredits`] when no credit arrived in time;
    /// [`PublishError::Io`] on socket errors.
    pub fn publish(
        &mut self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<u64, PublishError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_publish(groups, service, payload.clone()) {
                Err(PublishError::NoCredits) => {
                    if Instant::now() >= deadline {
                        return Err(PublishError::NoCredits);
                    }
                    self.pump()?;
                    if self.credits == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                other => return other,
            }
        }
    }

    /// Acks consumed deliveries through `seq` (manual-ack mode).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn ack(&mut self, seq: u64) -> io::Result<()> {
        if seq <= self.acked {
            return Ok(());
        }
        self.acked = seq;
        self.send(&ClientFrame::Ack { through: seq })
    }

    /// Drains the socket into the event queue without blocking.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (not `WouldBlock`).
    pub fn pump(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.sock.read(&mut chunk) {
                Ok(0) => {
                    if self.evicted.is_none() {
                        self.evicted = Some("connection closed".into());
                        self.queue.push_back(SvcEvent::Evicted {
                            reason: "connection closed".into(),
                        });
                    }
                    break;
                }
                Ok(n) => self.rbuf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        while let Some(f) = self.rbuf.next_frame()? {
            if let Some(ev) = self.on_frame(&f)? {
                self.queue.push_back(ev);
            }
        }
        if self.auto_ack && self.unacked > self.acked && self.evicted.is_none() {
            let through = self.unacked;
            self.acked = through;
            self.send(&ClientFrame::Ack { through })?;
        }
        Ok(())
    }

    fn on_frame(&mut self, bytes: &[u8]) -> io::Result<Option<SvcEvent>> {
        Ok(Some(match decode_server(bytes)? {
            ServerFrame::Deliver {
                seq,
                ring_seq,
                shard,
                service,
                sender,
                groups,
                payload,
            } => {
                self.unacked = self.unacked.max(seq);
                SvcEvent::Deliver {
                    seq,
                    ring_seq,
                    shard,
                    service,
                    sender,
                    groups,
                    payload,
                }
            }
            ServerFrame::Membership { group, members } => SvcEvent::Membership { group, members },
            ServerFrame::NetworkChange { daemons } => SvcEvent::NetworkChange { daemons },
            ServerFrame::CreditGrant { acked_id, credits } => {
                self.credits += credits;
                SvcEvent::PublishOrdered { id: acked_id }
            }
            ServerFrame::PublishReject { id, reason } => {
                // The rejected publish consumed no server-side credit;
                // restore the local count so the client can retry.
                self.credits += 1;
                SvcEvent::PublishRejected { id, reason }
            }
            ServerFrame::Evicted { reason } => {
                self.evicted = Some(reason.clone());
                SvcEvent::Evicted { reason }
            }
            ServerFrame::GroupRejected {
                join,
                group,
                reason,
            } => SvcEvent::GroupRejected {
                join,
                group,
                reason,
            },
            ServerFrame::Welcome { .. } | ServerFrame::Refused { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "handshake frame after welcome",
                ))
            }
        }))
    }

    /// Pops an already-pumped event without touching the socket.
    pub fn poll_event(&mut self) -> Option<SvcEvent> {
        self.queue.pop_front()
    }

    /// Receives the next event, pumping the socket up to `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> Option<SvcEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.queue.pop_front() {
                return Some(ev);
            }
            if self.pump().is_err() || Instant::now() >= deadline {
                return self.queue.pop_front();
            }
            if self.queue.is_empty() {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    /// Drains already-received events (pumps once, never sleeps).
    pub fn drain(&mut self) -> Vec<SvcEvent> {
        let _ = self.pump();
        self.queue.drain(..).collect()
    }

    /// Writes raw bytes to the socket, bypassing client-side credit
    /// accounting — for exercising the server's protocol handling
    /// (malformed frames, credit violations) from tests.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sock.set_nonblocking(false)?;
        let result = self.sock.write_all(bytes);
        let _ = self.sock.set_nonblocking(true);
        result
    }

    fn send(&mut self, f: &ClientFrame) -> io::Result<()> {
        // Client-side frames are small; a blocking write keeps the API
        // simple (the kernel buffer absorbs them).
        self.sock.set_nonblocking(false)?;
        let result = self.sock.write_all(&frame(&encode_client(f)));
        let _ = self.sock.set_nonblocking(true);
        result
    }
}
