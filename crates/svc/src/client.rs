//! The service-tier client library: connect over TCP or a Unix
//! socket, speak the versioned credit-controlled protocol.
//!
//! The socket is non-blocking; [`SvcClient::pump`] drains it into an
//! internal event queue. [`recv`](SvcClient::recv) wraps pump in a
//! bounded wait for convenience. Publishing is credit-limited:
//! [`try_publish`](SvcClient::try_publish) fails fast when the window
//! is exhausted, [`publish`](SvcClient::publish) waits for a credit.
//!
//! Delivery acking is automatic by default (every pumped Deliver is
//! acked on the next pump); turn it off with
//! [`set_auto_ack`](SvcClient::set_auto_ack) to exercise the server's
//! delivery window and eviction policy (as the load generator's
//! deliberately slow consumers do).
//!
//! ## Automatic session resumption
//!
//! When the connection drops without a server-initiated eviction, the
//! client redials with capped exponential backoff (decorrelated
//! jitter, seeded from the client name so a reconnecting fleet fans
//! out) and presents its [`ResumeToken`]. On a successful resume the
//! delivery stream continues exactly where it left off — the server
//! replays retained deliveries above the client's cursor — and every
//! publish whose grant never arrived is re-sent (the server's dedup
//! window makes that idempotent). If the server no longer has the
//! session, the client falls back to a fresh session: it re-joins its
//! groups and reports every outcome-unknown publish as rejected so
//! the application decides their fate (a restarted daemon replays its
//! durable log *before* accepting sessions, so a fresh session never
//! sees old traffic again). Either way the
//! application sees one [`SvcEvent::Reconnected`] marking the seam —
//! deliveries remain exactly-once and gap-free per publisher across
//! any number of reconnects. Disable with
//! [`ResumePolicy::disabled`] to get the old fail-fast behavior.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ar_core::backoff::{Backoff, BackoffConfig};
use ar_core::ServiceType;
use ar_daemon::MemberId;
use bytes::Bytes;

use crate::wire::{
    decode_server, encode_client, frame, ClientFrame, FrameBuf, ResumeToken, ServerFrame,
    MAX_PUBLISH_BODY, PROTOCOL_VERSION,
};

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcEvent {
    /// A totally ordered message.
    Deliver {
        /// Per-connection delivery sequence.
        seq: u64,
        /// Ring sequence: the total-order position within `shard`.
        ring_seq: u64,
        /// The ring shard that ordered the message.
        shard: u16,
        /// Delivery service level.
        service: ServiceType,
        /// The sending client.
        sender: MemberId,
        /// Target groups.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// Group membership changed.
    Membership {
        /// The group.
        group: String,
        /// Complete new membership.
        members: Vec<MemberId>,
    },
    /// Ring configuration changed.
    NetworkChange {
        /// Daemon ids in the new configuration.
        daemons: Vec<u16>,
    },
    /// A publish completed (reached Agreed order); a credit returned.
    PublishOrdered {
        /// The client-assigned publish id.
        id: u64,
    },
    /// A publish was rejected; its id and the server's reason.
    PublishRejected {
        /// The client-assigned publish id.
        id: u64,
        /// Server's reason.
        reason: String,
    },
    /// The server closed this session.
    Evicted {
        /// Server's reason.
        reason: String,
    },
    /// A join or leave request failed; the session stays open.
    GroupRejected {
        /// True for a failed join, false for a failed leave.
        join: bool,
        /// The group the request named.
        group: String,
        /// Server's reason.
        reason: String,
    },
    /// The connection dropped and was re-established.
    Reconnected {
        /// True when the session was resumed (delivery stream
        /// continues seamlessly). False when the server no longer had
        /// the session and a fresh one was started: groups were
        /// re-joined, and every outcome-unknown publish was reported
        /// via [`SvcEvent::PublishRejected`] just before this event.
        resumed: bool,
    },
}

/// Why [`SvcClient::try_publish`] declined.
#[derive(Debug)]
pub enum PublishError {
    /// No credits available; pump until a
    /// [`SvcEvent::PublishOrdered`] arrives.
    NoCredits,
    /// The encoded publish exceeds
    /// [`MAX_PUBLISH_BODY`](crate::wire::MAX_PUBLISH_BODY); it was not
    /// sent (a frame that size would be rejected by the server and
    /// its delivery would overflow the frame cap).
    TooLarge,
    /// Socket error.
    Io(io::Error),
}

impl core::fmt::Display for PublishError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PublishError::NoCredits => f.write_str("no publish credits available"),
            PublishError::TooLarge => f.write_str("publish exceeds the maximum frame size"),
            PublishError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

impl From<io::Error> for PublishError {
    fn from(e: io::Error) -> Self {
        PublishError::Io(e)
    }
}

/// Reconnect-and-resume tuning. The backoff's `max_attempts` is the
/// redial budget per disconnect; zero disables reconnecting entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePolicy {
    /// Redial schedule (decorrelated jitter; see
    /// [`ar_core::backoff::Backoff`]).
    pub backoff: BackoffConfig,
}

impl Default for ResumePolicy {
    fn default() -> Self {
        ResumePolicy {
            backoff: BackoffConfig {
                base: Duration::from_millis(25),
                cap: Duration::from_secs(1),
                max_attempts: 10,
            },
        }
    }
}

impl ResumePolicy {
    /// Never reconnect: the first disconnect surfaces as
    /// [`SvcEvent::Evicted`] (the pre-resumption behavior).
    pub fn disabled() -> ResumePolicy {
        ResumePolicy {
            backoff: BackoffConfig {
                max_attempts: 0,
                ..BackoffConfig::default()
            },
        }
    }

    fn is_enabled(&self) -> bool {
        self.backoff.max_attempts > 0
    }
}

#[derive(Debug, Clone)]
enum Target {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Uds(PathBuf),
}

#[derive(Debug)]
enum Sock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.write_all(buf),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Sock::Uds(s) => s.set_nonblocking(on),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Sock::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Sock::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        match self {
            Sock::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Sock::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Handshake result: the connected socket plus the Welcome fields.
struct Handshake {
    sock: Sock,
    rbuf: FrameBuf,
    daemon: u16,
    rings: u16,
    publish_credits: u32,
    delivery_window: u32,
    session: u64,
    epoch: u64,
    resumed: bool,
}

/// A connected service-tier client.
#[derive(Debug)]
pub struct SvcClient {
    sock: Sock,
    rbuf: FrameBuf,
    queue: VecDeque<SvcEvent>,
    target: Target,
    name: String,
    policy: ResumePolicy,
    daemon: u16,
    rings: u16,
    credits: u32,
    initial_credits: u32,
    delivery_window: u32,
    next_publish_id: u64,
    /// Highest delivery seq seen and not yet acked.
    unacked: u64,
    /// Highest delivery seq acked to the server.
    acked: u64,
    auto_ack: bool,
    evicted: Option<String>,
    /// Resume-token identity from the last Welcome.
    session: u64,
    epoch: u64,
    /// Groups joined (and not left) — re-joined after a session reset.
    joined: BTreeSet<String>,
    /// Framed Publish bytes awaiting their grant or rejection, by id —
    /// re-sent verbatim after a resume (the server deduplicates).
    unacked_pubs: BTreeMap<u64, Bytes>,
    /// Successful reconnects over this client's lifetime.
    reconnects: u64,
    /// Deliveries suppressed as duplicates.
    duplicates_suppressed: u64,
}

impl SvcClient {
    /// Connects over TCP and performs the versioned handshake.
    /// Automatic reconnect-and-resume is on by default; see
    /// [`set_resume_policy`](Self::set_resume_policy).
    ///
    /// # Errors
    ///
    /// Connection errors; `ConnectionRefused` with the server's reason
    /// when the handshake is refused.
    pub fn connect_tcp(addr: SocketAddr, name: &str) -> io::Result<SvcClient> {
        Self::connect(Target::Tcp(addr), name)
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// As for [`connect_tcp`](Self::connect_tcp).
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>, name: &str) -> io::Result<SvcClient> {
        Self::connect(Target::Uds(path.as_ref().to_path_buf()), name)
    }

    fn connect(target: Target, name: &str) -> io::Result<SvcClient> {
        let sock = dial(&target)?;
        let h = handshake(sock, name, None)?;
        Ok(SvcClient {
            sock: h.sock,
            rbuf: h.rbuf,
            queue: VecDeque::new(),
            target,
            name: name.to_string(),
            policy: ResumePolicy::default(),
            daemon: h.daemon,
            rings: h.rings,
            credits: h.publish_credits,
            initial_credits: h.publish_credits,
            delivery_window: h.delivery_window,
            next_publish_id: 0,
            unacked: 0,
            acked: 0,
            auto_ack: true,
            evicted: None,
            session: h.session,
            epoch: h.epoch,
            joined: BTreeSet::new(),
            unacked_pubs: BTreeMap::new(),
            reconnects: 0,
            duplicates_suppressed: 0,
        })
    }

    /// The daemon id this client is attached to.
    pub fn daemon(&self) -> u16 {
        self.daemon
    }

    /// Ring shards the daemon drives (from Welcome; 1 = unsharded).
    pub fn rings(&self) -> u16 {
        self.rings
    }

    /// Remaining publish credits.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The session's initial credit allocation (from Welcome).
    pub fn initial_credits(&self) -> u32 {
        self.initial_credits
    }

    /// The session's delivery window (from Welcome).
    pub fn delivery_window(&self) -> u32 {
        self.delivery_window
    }

    /// The server-assigned session id (half of the resume token).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The session's attach generation (bumped per resume).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Successful reconnects over this client's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Deliveries suppressed as resume-replay overlap (the retained
    /// range the server replayed reached at or below our cursor).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// The server's eviction reason, once evicted.
    pub fn evicted_reason(&self) -> Option<&str> {
        self.evicted.as_deref()
    }

    /// Replaces the reconnect-and-resume policy
    /// ([`ResumePolicy::disabled`] restores fail-fast).
    pub fn set_resume_policy(&mut self, policy: ResumePolicy) {
        self.policy = policy;
    }

    /// Enables or disables automatic delivery acking (on by default).
    /// With auto-ack off the caller must call [`ack`](Self::ack) to
    /// open delivery-window space — not doing so emulates a slow
    /// consumer.
    pub fn set_auto_ack(&mut self, on: bool) {
        self.auto_ack = on;
    }

    /// Test hook: kills the transport underneath the session without a
    /// Goodbye, as a crashed link would. The next [`pump`](Self::pump)
    /// or send notices and reconnects per policy.
    pub fn sever(&mut self) {
        self.sock.shutdown();
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn join(&mut self, group: &str) -> io::Result<()> {
        self.joined.insert(group.to_string());
        self.send(&ClientFrame::JoinGroup {
            group: group.to_string(),
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn leave(&mut self, group: &str) -> io::Result<()> {
        self.joined.remove(group);
        self.send(&ClientFrame::LeaveGroup {
            group: group.to_string(),
        })
    }

    /// Publishes if a credit is available, consuming it. Returns the
    /// assigned publish id (echoed in [`SvcEvent::PublishOrdered`]).
    ///
    /// # Errors
    ///
    /// [`PublishError::NoCredits`] when the credit window is
    /// exhausted; [`PublishError::Io`] on socket errors.
    pub fn try_publish(
        &mut self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
    ) -> Result<u64, PublishError> {
        if self.credits == 0 {
            return Err(PublishError::NoCredits);
        }
        let req = ClientFrame::Publish {
            id: self.next_publish_id + 1,
            service,
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
        };
        let body = encode_client(&req);
        if body.len() > MAX_PUBLISH_BODY {
            return Err(PublishError::TooLarge);
        }
        self.next_publish_id += 1;
        let id = self.next_publish_id;
        let framed = frame(&body);
        // Track before sending: if the connection dies mid-flight the
        // publish is re-sent on resume (the server deduplicates).
        self.unacked_pubs.insert(id, framed.clone());
        self.send_raw(&framed)?;
        self.credits -= 1;
        Ok(id)
    }

    /// Publishes, waiting up to `timeout` for a credit.
    ///
    /// # Errors
    ///
    /// [`PublishError::NoCredits`] when no credit arrived in time;
    /// [`PublishError::Io`] on socket errors.
    pub fn publish(
        &mut self,
        groups: &[&str],
        service: ServiceType,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<u64, PublishError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_publish(groups, service, payload.clone()) {
                Err(PublishError::NoCredits) => {
                    if Instant::now() >= deadline {
                        return Err(PublishError::NoCredits);
                    }
                    self.pump()?;
                    if self.credits == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                other => return other,
            }
        }
    }

    /// Acks consumed deliveries through `seq` (manual-ack mode).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn ack(&mut self, seq: u64) -> io::Result<()> {
        if seq <= self.acked {
            return Ok(());
        }
        self.acked = seq;
        self.send(&ClientFrame::Ack { through: seq })
    }

    /// Drains the socket into the event queue without blocking,
    /// transparently reconnecting (per policy) when the connection has
    /// dropped.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (not `WouldBlock`).
    pub fn pump(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let mut lost = false;
            loop {
                match self.sock.read(&mut chunk) {
                    Ok(0) => {
                        lost = true;
                        break;
                    }
                    Ok(n) => self.rbuf.extend(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        lost = true;
                        break;
                    }
                }
            }
            // Process buffered frames before reacting to the EOF: an
            // Evicted frame just before the close is terminal and must
            // not trigger a reconnect.
            while let Some(f) = self.rbuf.next_frame()? {
                if let Some(ev) = self.on_frame(&f)? {
                    self.queue.push_back(ev);
                }
            }
            if !lost {
                break;
            }
            if self.evicted.is_some() {
                break;
            }
            if !self.policy.is_enabled() {
                self.mark_lost("connection closed");
                break;
            }
            match self.reconnect() {
                // Loop: drain the fresh socket (resume replay).
                Ok(_) => continue,
                Err(e) => {
                    self.mark_lost(&format!("connection lost: {e}"));
                    break;
                }
            }
        }
        if self.auto_ack && self.unacked > self.acked && self.evicted.is_none() {
            let through = self.unacked;
            self.acked = through;
            self.send(&ClientFrame::Ack { through })?;
        }
        Ok(())
    }

    fn mark_lost(&mut self, reason: &str) {
        if self.evicted.is_none() {
            self.evicted = Some(reason.to_string());
            self.queue.push_back(SvcEvent::Evicted {
                reason: reason.to_string(),
            });
        }
    }

    /// Redials with backoff and resumes (or restarts) the session.
    fn reconnect(&mut self) -> io::Result<bool> {
        let seed = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut backoff = Backoff::new(self.policy.backoff, seed);
        let mut last_err = io::Error::new(io::ErrorKind::NotConnected, "reconnect disabled");
        for attempt in 0..self.policy.backoff.max_attempts {
            if attempt > 0 {
                match backoff.next_delay() {
                    Some(d) => std::thread::sleep(d),
                    None => break,
                }
            }
            match self.try_reconnect_once() {
                Ok(resumed) => {
                    self.reconnects += 1;
                    self.queue.push_back(SvcEvent::Reconnected { resumed });
                    return Ok(resumed);
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn try_reconnect_once(&mut self) -> io::Result<bool> {
        let token = ResumeToken {
            session: self.session,
            epoch: self.epoch,
            // The cursor is everything *consumed*, not merely acked:
            // replaying a consumed-but-unacked delivery would duplicate
            // it at the application.
            acked_through: self.unacked,
        };
        let sock = dial(&self.target)?;
        let h = handshake(sock, &self.name, Some(token))?;
        self.sock = h.sock;
        // Partial frame bytes from the dead socket are garbage;
        // complete frames were already processed.
        self.rbuf = h.rbuf;
        self.daemon = h.daemon;
        self.rings = h.rings;
        self.session = h.session;
        self.epoch = h.epoch;
        if h.resumed {
            // Continuity holds: the server accepted our cursor and
            // replays everything above it. Re-send every publish whose
            // grant never arrived — the server's dedup window drops
            // already-forwarded copies and re-grants already-ordered
            // ones.
            self.acked = self.unacked;
            let frames: Vec<Bytes> = self.unacked_pubs.values().cloned().collect();
            for framed in frames {
                self.write_now(&framed)?;
            }
        } else {
            // The session is gone (grace expired, server restarted, or
            // parking disabled): start over. Outcome of in-flight
            // publishes is unknowable — surface each as rejected so
            // the application decides, then restore the invariants a
            // fresh session expects.
            let lost: Vec<u64> = self.unacked_pubs.keys().copied().collect();
            self.unacked_pubs.clear();
            for id in lost {
                self.queue.push_back(SvcEvent::PublishRejected {
                    id,
                    reason: "session lost on reconnect; publish outcome unknown".into(),
                });
            }
            self.credits = h.publish_credits;
            self.initial_credits = h.publish_credits;
            self.delivery_window = h.delivery_window;
            self.unacked = 0;
            self.acked = 0;
            let groups: Vec<String> = self.joined.iter().cloned().collect();
            for group in groups {
                let body = encode_client(&ClientFrame::JoinGroup { group });
                self.write_now(&frame(&body))?;
            }
        }
        Ok(h.resumed)
    }

    fn on_frame(&mut self, bytes: &[u8]) -> io::Result<Option<SvcEvent>> {
        Ok(match decode_server(bytes)? {
            ServerFrame::Deliver {
                seq,
                ring_seq,
                shard,
                service,
                sender,
                groups,
                payload,
            } => {
                // The delivery seq is per-session monotone; a frame at
                // or below our consume cursor is resume-replay overlap.
                // Suppressed frames still occupy delivery-window space
                // server-side: always advance the ack cursor.
                let dup = seq <= self.unacked && seq != 0;
                self.unacked = self.unacked.max(seq);
                if dup {
                    self.duplicates_suppressed += 1;
                    None
                } else {
                    Some(SvcEvent::Deliver {
                        seq,
                        ring_seq,
                        shard,
                        service,
                        sender,
                        groups,
                        payload,
                    })
                }
            }
            ServerFrame::Membership { group, members } => {
                Some(SvcEvent::Membership { group, members })
            }
            ServerFrame::NetworkChange { daemons } => Some(SvcEvent::NetworkChange { daemons }),
            ServerFrame::CreditGrant { acked_id, credits } => {
                self.credits += credits;
                self.unacked_pubs.remove(&acked_id);
                Some(SvcEvent::PublishOrdered { id: acked_id })
            }
            ServerFrame::PublishReject { id, reason } => {
                // The rejected publish consumed no server-side credit;
                // restore the local count so the client can retry.
                self.credits += 1;
                self.unacked_pubs.remove(&id);
                Some(SvcEvent::PublishRejected { id, reason })
            }
            ServerFrame::Evicted { reason } => {
                self.evicted = Some(reason.clone());
                Some(SvcEvent::Evicted { reason })
            }
            ServerFrame::GroupRejected {
                join,
                group,
                reason,
            } => {
                if join {
                    self.joined.remove(&group);
                }
                Some(SvcEvent::GroupRejected {
                    join,
                    group,
                    reason,
                })
            }
            ServerFrame::Welcome { .. } | ServerFrame::Refused { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "handshake frame after welcome",
                ))
            }
        })
    }

    /// Pops an already-pumped event without touching the socket.
    pub fn poll_event(&mut self) -> Option<SvcEvent> {
        self.queue.pop_front()
    }

    /// Receives the next event, pumping the socket up to `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> Option<SvcEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.queue.pop_front() {
                return Some(ev);
            }
            if self.pump().is_err() || Instant::now() >= deadline {
                return self.queue.pop_front();
            }
            if self.queue.is_empty() {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    /// Drains already-received events (pumps once, never sleeps).
    pub fn drain(&mut self) -> Vec<SvcEvent> {
        let _ = self.pump();
        self.queue.drain(..).collect()
    }

    /// Writes raw bytes to the socket, bypassing client-side credit
    /// accounting — for exercising the server's protocol handling
    /// (malformed frames, credit violations) from tests. Reconnects
    /// (per policy) when the connection has dropped; the write is
    /// retried only if the session was *resumed* — after a session
    /// reset the bytes may reference stale state, so the caller gets
    /// `ConnectionReset` instead.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.write_now(bytes) {
            Ok(()) => Ok(()),
            Err(_) if self.policy.is_enabled() && self.evicted.is_none() => {
                let resumed = self.reconnect()?;
                if resumed {
                    self.write_now(bytes)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "session was reset during reconnect",
                    ))
                }
            }
            Err(e) => Err(e),
        }
    }

    fn send(&mut self, f: &ClientFrame) -> io::Result<()> {
        self.send_raw(&frame(&encode_client(f)))
    }

    fn write_now(&mut self, bytes: &[u8]) -> io::Result<()> {
        // Client-side frames are small; a blocking write keeps the API
        // simple (the kernel buffer absorbs them).
        self.sock.set_nonblocking(false)?;
        let result = self.sock.write_all(bytes);
        let _ = self.sock.set_nonblocking(true);
        result
    }
}

impl Drop for SvcClient {
    fn drop(&mut self) {
        // A deliberate close must not leave a parked session pinning
        // group memberships for the grace period.
        if self.evicted.is_none() {
            let _ = self.write_now(&frame(&encode_client(&ClientFrame::Goodbye)));
        }
    }
}

fn dial(target: &Target) -> io::Result<Sock> {
    match target {
        Target::Tcp(addr) => {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(Sock::Tcp(s))
        }
        #[cfg(unix)]
        Target::Uds(path) => Ok(Sock::Uds(UnixStream::connect(path)?)),
    }
}

fn handshake(mut sock: Sock, name: &str, resume: Option<ResumeToken>) -> io::Result<Handshake> {
    // Blocking for the handshake (with a bounded wait for the
    // Welcome), non-blocking after.
    sock.set_nonblocking(false)?;
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    sock.write_all(&frame(&encode_client(&ClientFrame::Hello {
        version: PROTOCOL_VERSION,
        name: name.to_string(),
        resume,
    })))?;
    let mut rbuf = FrameBuf::new();
    let reply = loop {
        let mut chunk = [0u8; 4096];
        let n = sock.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed during handshake",
            ));
        }
        rbuf.extend(&chunk[..n]);
        if let Some(f) = rbuf.next_frame()? {
            break decode_server(&f)?;
        }
    };
    match reply {
        ServerFrame::Welcome {
            daemon,
            rings,
            publish_credits,
            delivery_window,
            session,
            epoch,
            resumed,
            ..
        } => {
            sock.set_read_timeout(None)?;
            sock.set_nonblocking(true)?;
            Ok(Handshake {
                sock,
                rbuf,
                daemon,
                rings,
                publish_credits,
                delivery_window,
                session,
                epoch,
                resumed,
            })
        }
        ServerFrame::Refused { reason } => {
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
        }
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected frame before welcome",
        )),
    }
}
