//! The service-tier server: one thread multiplexing thousands of
//! client sockets onto one daemon — or onto the N ring shards of a
//! [`ShardedDaemon`].
//!
//! Each accepted connection (TCP or Unix-domain) is set non-blocking
//! and registered with an [`ar_net::PollSet`] — the same ppoll loop
//! the batched UDP datapath uses, at client-count scale. The loop:
//!
//! 1. polls listeners + client sockets for readability (short
//!    timeout, since daemon events arrive on channels, not fds);
//! 2. accepts new connections (refusing past `max_clients`);
//! 3. reads frames, handling Hello/Join/Leave/Publish/Ack/Goodbye;
//! 4. drains each session's daemon events into window-gated delivery
//!    queues and credit grants;
//! 5. flushes write buffers and evicts slow consumers per policy.
//!
//! Backpressure is end-to-end: each daemon loop publishes its ring
//! send-queue depth into [`ar_daemon::RingPressure`]; while *any*
//! shard is above the configured watermark, credit grants are
//! withheld ([`FlowState::on_ordered`]), so offered load backs off at
//! the clients instead of queueing in the daemon.
//!
//! ## Sessions outlive connections
//!
//! A *session* (name, daemon registrations, flow state, hold-back
//! queue) is decoupled from the socket that carries it. When a socket
//! dies without a [`ClientFrame::Goodbye`], the session is **parked**
//! for a grace period instead of torn down: group memberships stay,
//! deliveries keep queueing behind the frozen window, and sent-but-
//! unacked Deliver frames are retained. A client reconnecting with the
//! session's [`ResumeToken`] (and the matching epoch) reattaches:
//! the server replays cached memberships and every retained delivery
//! above the client's cursor, and a per-session publish-id dedup
//! window ([`DedupWindow`]) makes re-sent `Publish` frames idempotent
//! — at most one copy of each publish ever reaches the ring, and a
//! lost `CreditGrant` is re-sent instead of re-ordering the message.
//! Parked sessions that exceed the grace period or the retained-bytes
//! budget are evicted (ordered leaves, like a clean close). Policy
//! evictions — slow consumer, protocol error — never park: the
//! session dies with the connection, exactly as before.
//!
//! ## Sharded mode
//!
//! With [`serve_clients_sharded`], each session registers on every
//! ring shard; joins route to the shard that owns the group
//! ([`ar_daemon::ShardMap`]), publishes are stamped with a
//! per-publisher sequence and split into one ordered message per
//! shard touched, and stamped deliveries from local publishers pass
//! through a per-connection hold-back queue ([`crate::order`]) so
//! subscribers observe each publisher's messages in publish order even
//! when consecutive publishes were ordered on different rings. A
//! watchdog force-releases hold-back queues whose publisher floor has
//! stopped advancing (trading per-publisher FIFO for liveness) and
//! evicts the stalled publisher's session if it is parked.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ar_core::ParticipantId;
use ar_daemon::daemon::RingPressure;
use ar_daemon::{
    ClientEvent, DaemonClient, DaemonConnector, DaemonHandle, MemberId, ShardMap, ShardedDaemon,
    TelemetryHub,
};
use ar_net::PollSet;
use ar_telemetry::{Counter, Gauge};
use bytes::Bytes;

use crate::credit::{DedupWindow, EvictReason, FlowConfig, FlowState, Offer};
use crate::order::HoldBack;
use crate::wire::{
    decode_client, encode_server, frame, try_frame, ClientFrame, FrameBuf, ResumeToken,
    ServerFrame, PROTOCOL_VERSION,
};

/// Service-tier tuning.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Maximum concurrent client connections; further connects are
    /// refused at handshake.
    pub max_clients: usize,
    /// Per-session flow control (credits, windows, eviction limits).
    pub flow: FlowConfig,
    /// Withhold credit grants while the ring send queue is above this
    /// many bundles.
    pub ring_high_watermark: usize,
    /// Capacity of each session's daemon event queue.
    pub event_capacity: usize,
    /// How long a session whose socket died stays parked awaiting a
    /// resume before it is evicted. Zero disables parking entirely
    /// (every disconnect tears the session down immediately).
    pub park_grace: Duration,
    /// Eviction budget for a parked session's retained (sent but
    /// unacked) delivery frames.
    pub park_max_bytes: usize,
    /// Hold-back stall watchdog: a publisher whose oldest held
    /// delivery has waited this long is force-released.
    pub holdback_stall_timeout: Duration,
    /// Publish-id dedup window per session (granted ids remembered
    /// across reconnects).
    pub dedup_window: usize,
    /// When set, per-tier counters and gauges are registered here
    /// (exported via `/metrics` and `/snapshot`).
    pub telemetry: Option<Arc<TelemetryHub>>,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            max_clients: 2048,
            flow: FlowConfig::default(),
            ring_high_watermark: 512,
            event_capacity: ar_daemon::DEFAULT_EVENT_CAPACITY,
            park_grace: Duration::from_secs(30),
            park_max_bytes: 4 << 20,
            holdback_stall_timeout: Duration::from_secs(10),
            dedup_window: 1024,
            telemetry: None,
        }
    }
}

/// Shared per-tier statistics (registry-backed when telemetry is on).
#[derive(Debug, Clone, Default)]
pub struct SvcStats {
    /// Currently connected clients.
    pub connected: Gauge,
    /// Sessions evicted as slow consumers.
    pub evicted: Counter,
    /// Publishes rejected for lack of credits.
    pub publish_rejects: Counter,
    /// Credit grants sent.
    pub credit_grants: Counter,
    /// Grants currently withheld by ring backpressure.
    pub deferred_grants: Gauge,
    /// Publishes accepted and forwarded to the daemon.
    pub publishes: Counter,
    /// Deliveries written to client sockets.
    pub deliveries: Counter,
    /// Handshakes refused (capacity, bad name, version mismatch).
    pub refused: Counter,
    /// Join/leave requests rejected (reported via GroupRejected).
    pub join_rejected: Counter,
    /// Stamped deliveries currently held back awaiting their
    /// publisher's cross-shard floor.
    pub holdback_held: Gauge,
    /// Sessions successfully resumed after a connection drop.
    pub sessions_resumed: Counter,
    /// Sessions currently parked (disconnected, awaiting resume).
    pub sessions_parked: Gauge,
    /// Resume attempts rejected (bad token, stale epoch, cursor out of
    /// range); the client fell back to a fresh session.
    pub resume_rejected: Counter,
    /// Bytes of sent-but-unacked Deliver frames retained for replay.
    pub retained_bytes: Gauge,
    /// Hold-back stalls: publishers force-released by the watchdog.
    pub holdback_stalled: Counter,
    /// Age of the oldest held-back delivery, milliseconds.
    pub holdback_held_ms: Gauge,
    /// Publishes dropped as duplicates of an in-flight or granted id
    /// (re-sent across a reconnect).
    pub dedup_hits: Counter,
}

impl SvcStats {
    fn register(hub: &TelemetryHub) -> SvcStats {
        SvcStats {
            connected: hub.registry.gauge(
                "ar_svc_clients_connected",
                "Client connections currently served by the service tier",
            ),
            evicted: hub.registry.counter(
                "ar_svc_clients_evicted_total",
                "Sessions evicted as slow consumers (pending or write-buffer overflow)",
            ),
            publish_rejects: hub.registry.counter(
                "ar_svc_publish_rejects_total",
                "Publishes rejected because the session had no credits",
            ),
            credit_grants: hub.registry.counter(
                "ar_svc_credit_grants_total",
                "Publish credits granted back to clients",
            ),
            deferred_grants: hub.registry.gauge(
                "ar_svc_credits_deferred",
                "Credit grants currently withheld by ring send-queue backpressure",
            ),
            publishes: hub.registry.counter(
                "ar_svc_publishes_total",
                "Publishes accepted and forwarded to the daemon",
            ),
            deliveries: hub.registry.counter(
                "ar_svc_deliveries_total",
                "Ordered deliveries written to client sockets",
            ),
            refused: hub.registry.counter(
                "ar_svc_refused_total",
                "Handshakes refused (capacity, duplicate or invalid name, version mismatch)",
            ),
            join_rejected: hub.registry.counter(
                "ar_svc_join_rejected_total",
                "Join/leave requests rejected (GroupRejected frames sent)",
            ),
            holdback_held: hub.registry.gauge(
                "ar_svc_holdback_held",
                "Deliveries held back awaiting a publisher's cross-shard floor",
            ),
            sessions_resumed: hub.registry.counter(
                "ar_svc_sessions_resumed_total",
                "Sessions successfully resumed after a connection drop",
            ),
            sessions_parked: hub.registry.gauge(
                "ar_svc_sessions_parked",
                "Sessions currently parked (disconnected, awaiting resume)",
            ),
            resume_rejected: hub.registry.counter(
                "ar_svc_resume_rejected_total",
                "Resume attempts rejected; the client fell back to a fresh session",
            ),
            retained_bytes: hub.registry.gauge(
                "ar_svc_retained_bytes",
                "Bytes of sent-but-unacked Deliver frames retained for resume replay",
            ),
            holdback_stalled: hub.registry.counter(
                "ar_svc_holdback_stalled_total",
                "Publishers force-released by the hold-back stall watchdog",
            ),
            holdback_held_ms: hub.registry.gauge(
                "ar_svc_holdback_held_ms",
                "Age of the oldest held-back delivery, milliseconds",
            ),
            dedup_hits: hub.registry.counter(
                "ar_svc_publish_dedup_total",
                "Publishes dropped as duplicates of an in-flight or granted id",
            ),
        }
    }
}

/// Where to listen.
#[derive(Debug, Clone, Default)]
pub struct SvcListeners {
    /// TCP listen address (port 0 for ephemeral).
    pub tcp: Option<SocketAddr>,
    /// Unix-domain socket path (removed and rebound at startup,
    /// unlinked on shutdown). Ignored on non-Unix targets.
    pub uds: Option<PathBuf>,
}

/// Handle to a running service tier; dropping it stops the thread,
/// closes every session, and unlinks the Unix socket.
#[derive(Debug)]
pub struct SvcHandle {
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
    stop: Arc<AtomicBool>,
    stats: SvcStats,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl SvcHandle {
    /// The bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// Live per-tier statistics.
    pub fn stats(&self) -> &SvcStats {
        &self.stats
    }

    /// Stops the server and returns its loop result.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the server loop hit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_now()
    }

    fn shutdown_now(&mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        let result = match self.join.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("service-tier thread panicked"))),
            None => Ok(()),
        };
        #[cfg(unix)]
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

impl Drop for SvcHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_now();
    }
}

/// Starts the service tier for a single (unsharded) `daemon` on the
/// given listeners.
///
/// # Errors
///
/// Returns binding errors. Requires at least one listener.
pub fn serve_clients(
    daemon: &DaemonHandle,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    serve_shards(
        vec![daemon.connector()],
        vec![daemon.ring_pressure()],
        listeners,
        config,
    )
}

/// Starts the service tier for every ring shard of a
/// [`ShardedDaemon`]: sessions register on all shards, joins and
/// publishes route by the shard map, and the cross-shard hold-back
/// layer preserves per-publisher FIFO for locally connected
/// publishers.
///
/// # Errors
///
/// Returns binding errors. Requires at least one listener.
pub fn serve_clients_sharded(
    sharded: &ShardedDaemon,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    serve_shards(
        sharded.connectors(),
        sharded
            .shards()
            .iter()
            .map(DaemonHandle::ring_pressure)
            .collect(),
        listeners,
        config,
    )
}

fn serve_shards(
    connectors: Vec<DaemonConnector>,
    pressures: Vec<Arc<RingPressure>>,
    listeners: SvcListeners,
    config: SvcConfig,
) -> io::Result<SvcHandle> {
    assert_eq!(connectors.len(), pressures.len());
    let tcp = match listeners.tcp {
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    #[cfg(unix)]
    let uds = match &listeners.uds {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    #[cfg(not(unix))]
    let uds: Option<()> = None;
    if tcp.is_none() && uds.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "service tier needs at least one listener (tcp or uds)",
        ));
    }
    let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
    let stats = match &config.telemetry {
        Some(hub) => SvcStats::register(hub),
        None => SvcStats::default(),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let mut server = Server {
        pid: connectors[0].pid(),
        map: ShardMap::new(connectors.len()),
        connectors,
        pressures,
        config,
        tcp,
        #[cfg(unix)]
        uds,
        stop: Arc::clone(&stop),
        stats: stats.clone(),
        conns: HashMap::new(),
        next_conn: 0,
        sessions: HashMap::new(),
        by_name: HashMap::new(),
        session_seed: session_salt(),
        poll: PollSet::new(),
    };
    let join = std::thread::spawn(move || server.run());
    Ok(SvcHandle {
        tcp_addr,
        #[cfg(unix)]
        uds_path: listeners.uds,
        #[cfg(not(unix))]
        uds_path: None,
        stop,
        stats,
        join: Some(join),
    })
}

/// Seeds the session-id stream from wall clock and pid so tokens from
/// a previous server incarnation never validate against this one.
fn session_salt() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ (u64::from(std::process::id()) << 32)
}

// ---- connection state -----------------------------------------------------

/// Either kind of client socket, unified behind non-blocking reads and
/// writes.
#[derive(Debug)]
enum Sock {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Sock {
    fn fd(&self) -> i32 {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            match self {
                Sock::Tcp(s) => s.as_raw_fd(),
                Sock::Uds(s) => s.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Sock::Uds(s) => s.write(buf),
        }
    }

    fn shutdown(&self) {
        match self {
            Sock::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Sock::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// Bounded outgoing byte queue with partial-write tracking.
#[derive(Debug, Default)]
struct WriteBuf {
    queue: VecDeque<Bytes>,
    /// Bytes of the front chunk already written.
    offset: usize,
    total: usize,
}

impl WriteBuf {
    fn push(&mut self, bytes: Bytes) {
        self.total += bytes.len();
        self.queue.push_back(bytes);
    }

    fn len(&self) -> usize {
        self.total
    }

    /// Writes as much as the socket accepts. Returns `Ok(true)` when
    /// drained, `Ok(false)` on WouldBlock.
    fn flush(&mut self, sock: &mut Sock) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            match sock.write(&front[self.offset..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.offset += n;
                    self.total -= n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// A delivery body queued behind the window (the per-connection seq is
/// assigned by [`FlowState`]).
#[derive(Debug)]
struct DeliverBody {
    ring_seq: u64,
    shard: u16,
    service: ar_core::ServiceType,
    sender: MemberId,
    groups: Vec<String>,
    payload: Bytes,
}

/// One registered client identity: daemon registrations, flow state,
/// ordering state, and the resume machinery. Outlives the socket that
/// carries it (see the module docs).
struct Session {
    /// Resume-token identity (returned in Welcome).
    id: u64,
    /// Attach generation; bumped on every successful resume so a stale
    /// token cannot hijack a re-attached session.
    epoch: u64,
    /// The session's private name (hold-back floors are looked up by
    /// publisher name).
    name: String,
    /// One registered client per ring shard, index = shard.
    clients: Vec<DaemonClient>,
    flow: Box<FlowState<DeliverBody>>,
    /// Cross-shard per-publisher reorder queue.
    hold: HoldBack<DeliverBody>,
    /// Publish-id dedup across reconnects.
    dedup: DedupWindow,
    /// Last membership snapshot per joined group, replayed on resume.
    memberships: HashMap<String, Vec<MemberId>>,
    /// Sent-but-unacked Deliver frames, `(seq, framed bytes)`, oldest
    /// first — replayed above the client's cursor on resume.
    retained: VecDeque<(u64, Bytes)>,
    retained_bytes: usize,
    /// The attached connection, `None` while parked.
    conn: Option<u64>,
    /// When the session was parked (socket died without Goodbye).
    parked_since: Option<Instant>,
    /// Condemned: torn down at the next reap, never parked.
    dead: bool,
}

impl Session {
    /// Drops retained frames the client has acked.
    fn drop_retained(&mut self, through: u64) {
        while self
            .retained
            .front()
            .is_some_and(|(seq, _)| *seq <= through)
        {
            let (_, bytes) = self.retained.pop_front().expect("front checked");
            self.retained_bytes -= bytes.len();
        }
    }
}

struct Conn {
    sock: Sock,
    rbuf: FrameBuf,
    wbuf: WriteBuf,
    /// The session this socket carries (`None` while handshaking).
    session: Option<u64>,
    /// Set when the socket must close (after flushing `wbuf` best
    /// effort).
    dead: bool,
}

/// Queues a frame on a write buffer (free function so callers holding
/// other borrows can still reach the disjoint `wbuf` field).
fn push_frame(wbuf: &mut WriteBuf, frame_body: &ServerFrame) {
    wbuf.push(frame(&encode_server(frame_body)));
}

// ---- server loop ----------------------------------------------------------

struct Server {
    /// The participant id all shards present (locality test for
    /// hold-back: only locally connected publishers have floors).
    pid: ParticipantId,
    /// Group → shard placement.
    map: ShardMap,
    /// One connector per ring shard, index = shard.
    connectors: Vec<DaemonConnector>,
    /// One backpressure gauge per shard.
    pressures: Vec<Arc<RingPressure>>,
    config: SvcConfig,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    stop: Arc<AtomicBool>,
    stats: SvcStats,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    sessions: HashMap<u64, Session>,
    /// Name → session id (names are unique across the tier).
    by_name: HashMap<String, u64>,
    /// SplitMix64 state for session-id generation.
    session_seed: u64,
    poll: PollSet,
}

impl Server {
    fn run(&mut self) -> io::Result<()> {
        while !self.stop.load(Ordering::Acquire) {
            self.poll_sockets()?;
            self.accept_new();
            self.read_all();
            self.pump_daemon_events();
            self.watchdog();
            self.fill_windows();
            self.flush_all();
            self.park_and_reap();
            self.refresh_gauges();
        }
        // Graceful stop: tell every client and close.
        for (_, conn) in self.conns.iter_mut() {
            push_frame(
                &mut conn.wbuf,
                &ServerFrame::Evicted {
                    reason: "server shutting down".into(),
                },
            );
            let _ = conn.wbuf.flush(&mut conn.sock);
            conn.sock.shutdown();
        }
        self.stats.connected.set(0);
        self.stats.sessions_parked.set(0);
        self.stats.retained_bytes.set(0);
        Ok(())
    }

    /// One ppoll over listeners + every client socket. Readability
    /// results are consumed immediately by the accept/read passes; a
    /// short timeout keeps daemon-event pumping responsive (those
    /// arrive on channels the poll cannot watch).
    fn poll_sockets(&mut self) -> io::Result<()> {
        self.poll.clear();
        if let Some(l) = &self.tcp {
            use std::os::fd::AsRawFd;
            self.poll.register(l.as_raw_fd());
        }
        #[cfg(unix)]
        if let Some(l) = &self.uds {
            use std::os::fd::AsRawFd;
            self.poll.register(l.as_raw_fd());
        }
        for conn in self.conns.values() {
            self.poll.register(conn.sock.fd());
        }
        self.poll.wait(Duration::from_millis(2))?;
        Ok(())
    }

    fn accept_new(&mut self) {
        loop {
            let sock = if let Some(l) = &self.tcp {
                match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_nonblocking(true);
                        Some(Sock::Tcp(s))
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            #[cfg(unix)]
            let sock = sock.or_else(|| {
                self.uds.as_ref().and_then(|l| match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(true);
                        Some(Sock::Uds(s))
                    }
                    Err(_) => None,
                })
            });
            let Some(mut sock) = sock else { return };
            if self.conns.len() >= self.config.max_clients {
                // Best-effort refusal; the socket closes either way.
                let body = encode_server(&ServerFrame::Refused {
                    reason: "server at capacity".into(),
                });
                let _ = sock.write(&frame(&body));
                sock.shutdown();
                self.stats.refused.add(1);
                continue;
            }
            let id = self.next_conn;
            self.next_conn += 1;
            self.conns.insert(
                id,
                Conn {
                    sock,
                    rbuf: FrameBuf::new(),
                    wbuf: WriteBuf::default(),
                    session: None,
                    dead: false,
                },
            );
        }
    }

    fn read_all(&mut self) {
        let mut chunk = [0u8; 64 * 1024];
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut frames = Vec::new();
            {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead {
                    continue;
                }
                loop {
                    match conn.sock.read(&mut chunk) {
                        Ok(0) => {
                            conn.dead = true; // peer closed
                            break;
                        }
                        Ok(n) => conn.rbuf.extend(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.rbuf.next_frame() {
                        Ok(Some(f)) => frames.push(f),
                        Ok(None) => break,
                        Err(_) => {
                            // Oversized frame: protocol error, the
                            // session dies with the socket.
                            conn.dead = true;
                            if let Some(sid) = conn.session {
                                if let Some(sess) = self.sessions.get_mut(&sid) {
                                    sess.dead = true;
                                }
                            }
                            break;
                        }
                    }
                }
            }
            for f in frames {
                self.handle_frame(id, &f);
            }
        }
    }

    /// Condemns a connection *and its session* — used for protocol
    /// errors, where parking would reward a corrupt peer.
    fn kill_conn(&mut self, id: u64, reason: &str) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        push_frame(
            &mut conn.wbuf,
            &ServerFrame::Evicted {
                reason: reason.into(),
            },
        );
        conn.dead = true;
        if let Some(sid) = conn.session {
            if let Some(sess) = self.sessions.get_mut(&sid) {
                sess.dead = true;
            }
        }
    }

    fn handle_frame(&mut self, id: u64, bytes: &[u8]) {
        let Ok(req) = decode_client(bytes) else {
            self.kill_conn(id, "protocol error");
            return;
        };
        let sid = match self.conns.get(&id) {
            Some(conn) => conn.session,
            None => return,
        };
        match sid {
            None => self.handle_hello(id, req),
            Some(sid) => self.handle_active(id, sid, req),
        }
    }

    // ---- handshake --------------------------------------------------------

    fn handle_hello(&mut self, id: u64, req: ClientFrame) {
        let ClientFrame::Hello {
            version,
            name,
            resume,
        } = req
        else {
            if let Some(conn) = self.conns.get_mut(&id) {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Refused {
                        reason: "expected hello".into(),
                    },
                );
                conn.dead = true;
            }
            self.stats.refused.add(1);
            return;
        };
        if version != PROTOCOL_VERSION {
            if let Some(conn) = self.conns.get_mut(&id) {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Refused {
                        reason: format!(
                            "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                        ),
                    },
                );
                conn.dead = true;
            }
            self.stats.refused.add(1);
            return;
        }
        if let Some(token) = resume {
            if self.try_resume(id, &name, token) {
                return;
            }
            // Invalid token (unknown session, stale epoch, cursor out
            // of range, or parking disabled): fall back to a fresh
            // session. `resumed: false` in the Welcome tells the
            // client its delivery continuity is lost.
            self.stats.resume_rejected.add(1);
        }
        self.fresh_session(id, name);
    }

    /// Validates a resume token and reattaches the parked session.
    /// Returns false when the token does not check out.
    fn try_resume(&mut self, conn_id: u64, name: &str, token: ResumeToken) -> bool {
        if self.config.park_grace.is_zero() {
            return false;
        }
        let valid = self.sessions.get(&token.session).is_some_and(|sess| {
            !sess.dead
                && sess.name == name
                && sess.epoch == token.epoch
                // The cursor must lie in the retained range: at or
                // above what was already acked, at or below what was
                // actually sent.
                && token.acked_through >= sess.flow.acked()
                && token.acked_through <= sess.flow.sent()
        });
        if !valid {
            return false;
        }
        // Supersede a half-dead socket still nominally attached: the
        // client holding the live token wins.
        let old_conn = self
            .sessions
            .get(&token.session)
            .and_then(|s| s.conn)
            .filter(|old| *old != conn_id);
        if let Some(old) = old_conn {
            if let Some(conn) = self.conns.get_mut(&old) {
                conn.session = None;
                conn.dead = true;
            }
            self.stats.connected.add(-1);
        }
        let sess = self.sessions.get_mut(&token.session).expect("validated");
        sess.epoch += 1;
        sess.conn = Some(conn_id);
        sess.parked_since = None;
        sess.flow.on_ack(token.acked_through);
        sess.drop_retained(token.acked_through);
        let conn = self.conns.get_mut(&conn_id).expect("caller held it");
        conn.session = Some(token.session);
        push_frame(
            &mut conn.wbuf,
            &ServerFrame::Welcome {
                version: PROTOCOL_VERSION,
                daemon: self.pid.as_u16(),
                rings: self.connectors.len() as u16,
                publish_credits: self.config.flow.publish_credits,
                delivery_window: self.config.flow.delivery_window,
                session: sess.id,
                epoch: sess.epoch,
                resumed: true,
                retained_lo: sess.flow.acked() + 1,
                retained_hi: sess.flow.sent(),
            },
        );
        // Replay: memberships first (so the application's view of who
        // is in each group is restored before deliveries resume), then
        // every retained delivery above the cursor.
        for (group, members) in &sess.memberships {
            push_frame(
                &mut conn.wbuf,
                &ServerFrame::Membership {
                    group: group.clone(),
                    members: members.clone(),
                },
            );
        }
        let replayed = sess.retained.len() as u64;
        for (_, framed) in &sess.retained {
            conn.wbuf.push(framed.clone());
        }
        if replayed > 0 {
            self.stats.deliveries.add(replayed);
        }
        self.stats.connected.add(1);
        self.stats.sessions_resumed.add(1);
        true
    }

    fn fresh_session(&mut self, conn_id: u64, name: String) {
        // The name may be held by a *parked* session (the client lost
        // its token, or chose not to resume): evict it first. The
        // daemon Unregister (from dropping the old DaemonClients) and
        // the Register below share one command channel, so ordering is
        // FIFO — no duplicate-name race. A name held by a live
        // attached connection refuses as before.
        if let Some(&sid) = self.by_name.get(&name) {
            let attached = self
                .sessions
                .get(&sid)
                .is_some_and(|s| !s.dead && s.conn.is_some());
            if attached {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::Refused {
                            reason: format!("name '{name}' is already connected"),
                        },
                    );
                    conn.dead = true;
                }
                self.stats.refused.add(1);
                return;
            }
            self.remove_session(sid);
        }
        let mut clients = Vec::with_capacity(self.connectors.len());
        let mut refuse = None;
        for connector in &self.connectors {
            match connector.connect_service(&name, self.config.event_capacity) {
                Ok(client) => clients.push(client),
                Err(e) => {
                    refuse = Some(e.to_string());
                    break;
                }
            }
        }
        if let Some(reason) = refuse {
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                push_frame(&mut conn.wbuf, &ServerFrame::Refused { reason });
                conn.dead = true;
            }
            self.stats.refused.add(1);
            return;
        }
        let sid = self.fresh_session_id();
        let sess = Session {
            id: sid,
            epoch: 1,
            name: name.clone(),
            clients,
            flow: Box::new(FlowState::new(self.config.flow)),
            hold: HoldBack::new(),
            dedup: DedupWindow::new(self.config.dedup_window),
            memberships: HashMap::new(),
            retained: VecDeque::new(),
            retained_bytes: 0,
            conn: Some(conn_id),
            parked_since: None,
            dead: false,
        };
        let conn = self.conns.get_mut(&conn_id).expect("caller held it");
        conn.session = Some(sid);
        push_frame(
            &mut conn.wbuf,
            &ServerFrame::Welcome {
                version: PROTOCOL_VERSION,
                daemon: self.pid.as_u16(),
                rings: self.connectors.len() as u16,
                publish_credits: self.config.flow.publish_credits,
                delivery_window: self.config.flow.delivery_window,
                session: sid,
                epoch: 1,
                resumed: false,
                retained_lo: 1,
                retained_hi: 0,
            },
        );
        self.sessions.insert(sid, sess);
        self.by_name.insert(name, sid);
        self.stats.connected.add(1);
    }

    fn fresh_session_id(&mut self) -> u64 {
        loop {
            self.session_seed = self.session_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.session_seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if z != 0 && !self.sessions.contains_key(&z) {
                return z;
            }
        }
    }

    // ---- active sessions --------------------------------------------------

    fn handle_active(&mut self, conn_id: u64, sid: u64, req: ClientFrame) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        match req {
            ClientFrame::Hello { .. } => {
                push_frame(
                    &mut conn.wbuf,
                    &ServerFrame::Evicted {
                        reason: "duplicate hello".into(),
                    },
                );
                conn.dead = true;
                sess.dead = true;
            }
            ClientFrame::Goodbye => {
                // Clean close: tear the session down now (ordered
                // leaves for every joined group) instead of parking.
                conn.dead = true;
                sess.dead = true;
            }
            ClientFrame::JoinGroup { group } => {
                let shard = self.map.shard_of(&group);
                if let Err(e) = sess.clients[shard].join(&group) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::GroupRejected {
                            join: true,
                            group,
                            reason: e.to_string(),
                        },
                    );
                    self.stats.join_rejected.add(1);
                }
            }
            ClientFrame::LeaveGroup { group } => {
                let shard = self.map.shard_of(&group);
                if let Err(e) = sess.clients[shard].leave(&group) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::GroupRejected {
                            join: false,
                            group,
                            reason: e.to_string(),
                        },
                    );
                    self.stats.join_rejected.add(1);
                } else {
                    // No further Membership event will arrive for this
                    // group; don't replay a stale snapshot on resume.
                    sess.memberships.remove(&group);
                }
            }
            ClientFrame::Publish {
                id: pub_id,
                service,
                groups,
                payload,
            } => {
                match sess.dedup.offer(pub_id) {
                    Offer::InFlight => {
                        // Re-sent across a reconnect; the first copy is
                        // still working through the ring. Its grant (or
                        // rejection) will answer this copy too.
                        self.stats.dedup_hits.add(1);
                        return;
                    }
                    Offer::Granted => {
                        // The first copy was ordered but its grant died
                        // with the old connection: re-send the grant,
                        // don't re-order the message.
                        self.stats.dedup_hits.add(1);
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::CreditGrant {
                                acked_id: pub_id,
                                credits: 1,
                            },
                        );
                        self.stats.credit_grants.add(1);
                        return;
                    }
                    Offer::Fresh => {}
                }
                // One ordered message per shard the group list touches;
                // one credit and one stamp per publish regardless.
                let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                let parts = self.map.partition(&refs);
                match sess.flow.try_consume_credit(pub_id, parts.len() as u32) {
                    Some(stamp) => {
                        let mut failed = None;
                        for (shard, part) in &parts {
                            if let Err(e) = sess.clients[*shard].multicast_stamped(
                                part,
                                service,
                                stamp,
                                payload.clone(),
                            ) {
                                failed = Some(e.to_string());
                                break;
                            }
                        }
                        match failed {
                            None => self.stats.publishes.add(1),
                            Some(reason) => {
                                push_frame(&mut conn.wbuf, &ServerFrame::Evicted { reason });
                                conn.dead = true;
                                sess.dead = true;
                            }
                        }
                    }
                    None => {
                        // No credit consumed, nothing forwarded: a
                        // retry of this id must be treated as fresh.
                        sess.dedup.forget(pub_id);
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::PublishReject {
                                id: pub_id,
                                reason: "no publish credits; wait for CreditGrant".into(),
                            },
                        );
                        self.stats.publish_rejects.add(1);
                    }
                }
            }
            ClientFrame::Ack { through } => {
                sess.flow.on_ack(through);
                sess.drop_retained(sess.flow.acked());
            }
        }
    }

    /// Converts queued daemon events into frames: deliveries into the
    /// window-gated pending queue, membership/network changes straight
    /// to the write buffer, Ordered acks into credit grants (deferred
    /// while the ring is congested). Runs for parked sessions too —
    /// their queues keep filling and their grants are recorded in the
    /// dedup window for recovery via republish.
    fn pump_daemon_events(&mut self) {
        let congested = self
            .pressures
            .iter()
            .any(|p| p.send_queue_depth() > self.config.ring_high_watermark);
        // Publisher floors are snapshotted BEFORE the drain pass: a
        // floor observed now is only safe to release against once all
        // shard queues that could hold earlier stamps are drained (see
        // `crate::order` for the invariant). Parked sessions keep
        // their floors — their in-flight publishes still complete.
        let mut floors: HashMap<String, u64> = HashMap::new();
        for sess in self.sessions.values() {
            if !sess.dead {
                floors.insert(sess.name.clone(), sess.flow.ordered_through());
            }
        }
        let single_ring = self.connectors.len() == 1;
        let pid = self.pid;
        let max_pending = self.config.flow.max_pending;
        let mut deferred_delta: i64 = 0;
        let Server {
            sessions,
            conns,
            stats,
            ..
        } = self;
        for sess in sessions.values_mut() {
            if sess.dead {
                continue;
            }
            let mut wbuf = sess
                .conn
                .and_then(|cid| conns.get_mut(&cid))
                .filter(|c| !c.dead)
                .map(|c| &mut c.wbuf);
            let mut evict_reason = None;
            'shards: for (shard, client) in sess.clients.iter_mut().enumerate() {
                for ev in client.drain() {
                    match ev {
                        ClientEvent::Message {
                            sender,
                            groups,
                            service,
                            ring_seq,
                            stamp,
                            payload,
                        } => {
                            let body = DeliverBody {
                                shard: shard as u16,
                                ring_seq,
                                service,
                                sender,
                                groups,
                                payload,
                            };
                            // Hold back only stamped traffic from
                            // publishers connected to this tier: only
                            // they have a floor that will advance.
                            // Single-ring mode needs no hold-back at
                            // all — one ring is already an order.
                            let local = body.sender.daemon == pid
                                && floors.contains_key(&body.sender.client);
                            if single_ring || stamp == 0 || !local {
                                if let Err(reason) = sess.flow.queue_delivery(body) {
                                    evict_reason = Some(reason);
                                    break 'shards;
                                }
                            } else {
                                let publisher = body.sender.client.clone();
                                if sess.hold.insert(&publisher, stamp, body)
                                    && sess.hold.held_len() + sess.flow.pending_len() > max_pending
                                {
                                    evict_reason = Some(EvictReason::PendingOverflow);
                                    break 'shards;
                                }
                            }
                        }
                        ClientEvent::Ordered { stamp, .. } => {
                            let before = sess.flow.deferred_len() as i64;
                            for acked_id in sess.flow.on_ordered(stamp, congested) {
                                sess.dedup.grant(acked_id);
                                if let Some(w) = wbuf.as_deref_mut() {
                                    push_frame(
                                        w,
                                        &ServerFrame::CreditGrant {
                                            acked_id,
                                            credits: 1,
                                        },
                                    );
                                    stats.credit_grants.add(1);
                                }
                                // Parked: the grant frame is lost with
                                // the socket; the dedup window re-sends
                                // it when the client republishes.
                            }
                            deferred_delta += sess.flow.deferred_len() as i64 - before;
                        }
                        ClientEvent::Membership { group, members } => {
                            sess.memberships.insert(group.clone(), members.clone());
                            if let Some(w) = wbuf.as_deref_mut() {
                                push_frame(w, &ServerFrame::Membership { group, members });
                            }
                        }
                        ClientEvent::NetworkChange { daemons } => {
                            if let Some(w) = wbuf.as_deref_mut() {
                                push_frame(
                                    w,
                                    &ServerFrame::NetworkChange {
                                        daemons: daemons.iter().map(|d| d.as_u16()).collect(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            // Every shard queue drained: release what the snapshotted
            // floors cover, in per-publisher stamp order.
            if evict_reason.is_none() && !single_ring {
                for body in sess
                    .hold
                    .release(|publisher| floors.get(publisher).copied())
                {
                    if let Err(reason) = sess.flow.queue_delivery(body) {
                        evict_reason = Some(reason);
                        break;
                    }
                }
            }
            // Congestion cleared: release withheld credits.
            if !congested && sess.flow.deferred_len() > 0 {
                let ids = sess.flow.flush_deferred();
                deferred_delta -= ids.len() as i64;
                for acked_id in ids {
                    sess.dedup.grant(acked_id);
                    if let Some(w) = wbuf.as_deref_mut() {
                        push_frame(
                            w,
                            &ServerFrame::CreditGrant {
                                acked_id,
                                credits: 1,
                            },
                        );
                        stats.credit_grants.add(1);
                    }
                }
            }
            if let Some(reason) = evict_reason {
                if let Some(w) = wbuf {
                    push_frame(
                        w,
                        &ServerFrame::Evicted {
                            reason: reason.as_str().into(),
                        },
                    );
                }
                sess.dead = true;
                if let Some(cid) = sess.conn {
                    if let Some(conn) = conns.get_mut(&cid) {
                        conn.dead = true;
                    }
                }
                stats.evicted.add(1);
            }
        }
        if deferred_delta != 0 {
            self.stats.deferred_grants.add(deferred_delta);
        }
    }

    /// The hold-back stall watchdog: a publisher whose floor has
    /// stopped advancing (evicted mid-publish with a shard copy lost,
    /// or any ack path failure) would otherwise hold its subscribers'
    /// deliveries forever. Force-release trades that publisher's FIFO
    /// for liveness; if the stalled publisher's own session is parked,
    /// it is evicted — its floor can no longer be trusted to advance.
    fn watchdog(&mut self) {
        let timeout = self.config.holdback_stall_timeout;
        if timeout.is_zero() {
            return;
        }
        let now = Instant::now();
        let mut stalled_publishers: Vec<String> = Vec::new();
        let Server {
            sessions,
            conns,
            stats,
            ..
        } = self;
        for sess in sessions.values_mut() {
            if sess.dead {
                continue;
            }
            let stalled = sess.hold.stalled(now, timeout);
            if stalled.is_empty() {
                continue;
            }
            let mut evict_reason = None;
            for publisher in stalled {
                stats.holdback_stalled.add(1);
                for body in sess.hold.force_release(&publisher) {
                    if let Err(reason) = sess.flow.queue_delivery(body) {
                        evict_reason = Some(reason);
                        break;
                    }
                }
                stalled_publishers.push(publisher);
            }
            if let Some(reason) = evict_reason {
                if let Some(conn) = sess.conn.and_then(|cid| conns.get_mut(&cid)) {
                    push_frame(
                        &mut conn.wbuf,
                        &ServerFrame::Evicted {
                            reason: reason.as_str().into(),
                        },
                    );
                    conn.dead = true;
                }
                sess.dead = true;
                stats.evicted.add(1);
            }
        }
        stalled_publishers.sort_unstable();
        stalled_publishers.dedup();
        for name in stalled_publishers {
            if let Some(&sid) = self.by_name.get(&name) {
                if let Some(sess) = self.sessions.get_mut(&sid) {
                    if sess.conn.is_none() {
                        sess.dead = true;
                    }
                }
            }
        }
    }

    /// Moves window-eligible deliveries into write buffers, retaining
    /// a copy of every sent frame until the client acks it.
    fn fill_windows(&mut self) {
        let Server {
            sessions,
            conns,
            stats,
            ..
        } = self;
        for sess in sessions.values_mut() {
            if sess.dead {
                continue;
            }
            // Parked: the window is frozen (nothing to send a frame
            // to); deliveries keep queueing in `flow.pending`.
            let Some(conn) = sess.conn.and_then(|cid| conns.get_mut(&cid)) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            let mut sent = 0u64;
            while let Some(p) = sess.flow.next_sendable() {
                let b = p.item;
                let body = encode_server(&ServerFrame::Deliver {
                    seq: p.seq,
                    ring_seq: b.ring_seq,
                    shard: b.shard,
                    service: b.service,
                    sender: b.sender,
                    groups: b.groups,
                    payload: b.payload,
                });
                match try_frame(&body) {
                    Ok(framed) => {
                        conn.wbuf.push(framed.clone());
                        sess.retained_bytes += framed.len();
                        sess.retained.push_back((p.seq, framed));
                        sent += 1;
                    }
                    Err(e) => {
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::Evicted {
                                reason: e.to_string(),
                            },
                        );
                        conn.dead = true;
                        sess.dead = true;
                        stats.evicted.add(1);
                        break;
                    }
                }
            }
            if sent > 0 {
                stats.deliveries.add(sent);
            }
        }
    }

    fn flush_all(&mut self) {
        let Server {
            sessions,
            conns,
            stats,
            ..
        } = self;
        for conn in conns.values_mut() {
            if conn.wbuf.len() == 0 {
                continue;
            }
            match conn.wbuf.flush(&mut conn.sock) {
                Ok(_) => {
                    if conn.dead {
                        continue;
                    }
                    let sess = conn.session.and_then(|sid| sessions.get_mut(&sid));
                    let overflow = sess
                        .as_ref()
                        .and_then(|s| s.flow.check_write_buffer(conn.wbuf.len()).err());
                    if let Some(reason) = overflow {
                        push_frame(
                            &mut conn.wbuf,
                            &ServerFrame::Evicted {
                                reason: reason.as_str().into(),
                            },
                        );
                        conn.dead = true;
                        if let Some(s) = sess {
                            s.dead = true;
                        }
                        stats.evicted.add(1);
                    }
                }
                Err(_) => conn.dead = true,
            }
        }
    }

    /// Closes dead connections — parking their sessions unless the
    /// session is condemned — then evicts parked sessions past the
    /// grace period or the retained-bytes budget, and finally tears
    /// down condemned sessions. Dropping a session's [`DaemonClient`]s
    /// unregisters at the daemon, which submits ordered leaves for
    /// every group the client was in — other members see a clean
    /// membership change.
    fn park_and_reap(&mut self) {
        let now = Instant::now();
        let dead_conns: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead)
            .map(|(id, _)| *id)
            .collect();
        for id in dead_conns {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            // Last chance for the Evicted frame to reach the peer.
            let _ = conn.wbuf.flush(&mut conn.sock);
            conn.sock.shutdown();
            let Some(sid) = conn.session else { continue };
            let Some(sess) = self.sessions.get_mut(&sid) else {
                continue;
            };
            if sess.conn != Some(id) {
                // Superseded during resume; the gauge was already
                // adjusted there.
                continue;
            }
            sess.conn = None;
            self.stats.connected.add(-1);
            if !sess.dead {
                if self.config.park_grace.is_zero() {
                    sess.dead = true;
                } else {
                    sess.parked_since = Some(now);
                }
            }
        }
        // Parked sessions past the grace period or over the retained
        // budget are done waiting.
        for sess in self.sessions.values_mut() {
            if sess.dead || sess.conn.is_some() {
                continue;
            }
            let expired = sess
                .parked_since
                .is_some_and(|t| now.duration_since(t) > self.config.park_grace);
            if expired || sess.retained_bytes > self.config.park_max_bytes {
                sess.dead = true;
            }
        }
        let dead_sessions: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.dead && s.conn.is_none())
            .map(|(id, _)| *id)
            .collect();
        for sid in dead_sessions {
            self.remove_session(sid);
        }
    }

    /// Removes a session outright; dropping its [`DaemonClient`]s
    /// queues the daemon Unregisters (ordered leaves).
    fn remove_session(&mut self, sid: u64) {
        if let Some(sess) = self.sessions.remove(&sid) {
            if self.by_name.get(&sess.name) == Some(&sid) {
                self.by_name.remove(&sess.name);
            }
        }
    }

    /// Recomputes the absolute gauges each tick — cheaper to re-derive
    /// than to thread deltas through every park/resume/evict path.
    fn refresh_gauges(&mut self) {
        let now = Instant::now();
        let mut parked = 0i64;
        let mut retained = 0i64;
        let mut held = 0i64;
        let mut oldest_ms = 0i64;
        for sess in self.sessions.values() {
            if sess.dead {
                continue;
            }
            if sess.conn.is_none() {
                parked += 1;
            }
            retained += sess.retained_bytes as i64;
            held += sess.hold.held_len() as i64;
            if let Some(age) = sess.hold.oldest_held_age(now) {
                oldest_ms = oldest_ms.max(age.as_millis() as i64);
            }
        }
        self.stats.sessions_parked.set(parked);
        self.stats.retained_bytes.set(retained);
        self.stats.holdback_held.set(held);
        self.stats.holdback_held_ms.set(oldest_ms);
    }
}
